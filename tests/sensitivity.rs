//! Placement sensitivity: the reproduction's conclusions must not hinge
//! on the default synthetic sensor bases (DESIGN.md §2's promise).
//!
//! Each case study reruns over several randomized IMS-like deployments
//! (same block sizes; random disjoint routable bases; M structurally
//! inside 192/8).

use hotspots::scenarios::{blaster, codered, slammer, totals_by_block, CoverageRow};
use hotspots_ipspace::{random_ims_deployment, AddressBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn per_slash24_rates(
    rows: &[CoverageRow],
    blocks: &[AddressBlock],
) -> std::collections::HashMap<String, f64> {
    totals_by_block(rows)
        .into_iter()
        .map(|(label, total)| {
            let block = blocks.iter().find(|b| b.label() == label).expect("label");
            let slash24s = (block.size() / 256).max(1) as f64;
            (label, total as f64 / slash24s)
        })
        .collect()
}

#[test]
fn codered_m_spike_survives_random_placement() {
    // The NAT hotspot is a topology fact: wherever the M-labelled /22
    // lands inside public 192/8, it must spike relative to the other
    // small blocks.
    let mut rng = StdRng::seed_from_u64(0x5e15);
    let mut spikes = 0;
    let trials = 4;
    for trial in 0..trials {
        let blocks = random_ims_deployment(&mut rng);
        let study = codered::CodeRedStudy {
            hosts: 1_200,
            nat_fraction: 0.15,
            probes_per_host: 8_000,
            rng_seed: 100 + trial,
        };
        let rows = codered::sources_by_block_with(&study, &blocks);
        let rates = per_slash24_rates(&rows, &blocks);
        let background: f64 = ["A", "B", "C", "D", "E", "F", "H", "I"]
            .iter()
            .map(|l| rates[*l])
            .sum::<f64>()
            / 8.0;
        if rates["M"] > 3.0 * background.max(0.05) {
            spikes += 1;
        }
    }
    assert!(
        spikes >= trials - 1,
        "M spiked in only {spikes}/{trials} random placements"
    );
}

#[test]
fn slammer_nonuniformity_survives_random_placement() {
    // The cycle structure guarantees *some* blocks see far fewer unique
    // sources per /24 than others, whatever the placement: the spread
    // (max/min rate across same-deployment blocks) stays large.
    let mut rng = StdRng::seed_from_u64(0x5e16);
    for trial in 0..3 {
        let blocks = random_ims_deployment(&mut rng);
        let study = slammer::SlammerStudy {
            hosts: 10_000,
            rng_seed: 200 + trial,
            ..slammer::SlammerStudy::default()
        };
        let rows = slammer::sources_by_block_with(&study, &blocks);
        let rates = per_slash24_rates(&rows, &blocks);
        // compare the small (non-Z) blocks on equal footing
        let small: Vec<f64> = rates
            .iter()
            .filter(|(l, _)| l.as_str() != "Z")
            .map(|(_, &r)| r)
            .collect();
        let max = small.iter().cloned().fold(f64::MIN, f64::max);
        let min = small.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
        assert!(
            max / min >= 1.5,
            "trial {trial}: Slammer per-/24 rates suspiciously even \
             (max {max}, min {min}) — the cycle structure should spread them"
        );
    }
}

#[test]
fn blaster_seed_correlation_survives_random_placement() {
    // Whatever /24s the sensors monitor, the hottest rows must be
    // explained by boot-band seeds more than the coldest rows.
    let mut rng = StdRng::seed_from_u64(0x5e17);
    let blocks = random_ims_deployment(&mut rng);
    let study = blaster::BlasterStudy {
        hosts: 6_000,
        window_secs: 7.0 * 24.0 * 3600.0,
        scan_rate: 11.0,
        reboot_fraction: 0.5,
        rng_seed: 300,
    };
    let rows = blaster::sources_by_block_with(&study, &blocks);
    let hosts = blaster::draw_hosts(&study);
    let mut sorted: Vec<&CoverageRow> = rows.iter().filter(|r| r.prefix.len() == 24).collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.unique_sources));
    let boot_band_share = |row: &CoverageRow| -> f64 {
        let covering: Vec<u32> = hosts
            .iter()
            .filter(|h| {
                hotspots::seed_inference::scan_covers(h.start, study.scan_len(), row.prefix)
            })
            .map(|h| h.tick)
            .collect();
        if covering.is_empty() {
            return 0.0;
        }
        covering
            .iter()
            .filter(|&&t| (25_000..=35_000).contains(&t))
            .count() as f64
            / covering.len() as f64
    };
    let hot = boot_band_share(sorted[0]);
    let cold = boot_band_share(sorted.last().expect("rows exist"));
    assert!(
        hot > cold + 0.1,
        "hot rows not better explained by boot-band seeds: hot {hot} vs cold {cold}"
    );
}
