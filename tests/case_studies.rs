//! End-to-end integration tests: each paper case study at reduced scale,
//! exercised through the public APIs of every crate in the stack.

use hotspots::scenarios::{blaster, codered, detection, filtering, slammer, totals_by_block};
use hotspots::HotspotReport;
use hotspots_botnet::corpus;
use hotspots_ipspace::{ims_deployment, Ip};
use hotspots_netmodel::OrgKind;
use hotspots_prng::SqlsortDll;

fn per_slash24_rates(rows: &[hotspots::scenarios::CoverageRow]) -> Vec<(String, f64)> {
    let blocks = ims_deployment();
    totals_by_block(rows)
        .into_iter()
        .map(|(label, total)| {
            let block = blocks.iter().find(|b| b.label() == label).expect("label");
            let slash24s = (block.size() / 256).max(1) as f64;
            (label, total as f64 / slash24s)
        })
        .collect()
}

#[test]
fn table1_bot_commands_restrict_ranges() {
    let commands = corpus::table1();
    let report = corpus::hit_list_report(&commands, Ip::from_octets(141, 20, 9, 9));
    assert_eq!(report.len(), 16);
    let restricted = report
        .iter()
        .filter(|(_, _, size)| *size < (1u64 << 32))
        .count();
    assert!(restricted >= 8, "most bot commands carry hit-lists");
}

#[test]
fn fig1_blaster_pipeline_produces_hotspots_with_plausible_seeds() {
    let study = blaster::BlasterStudy {
        hosts: 4_000,
        window_secs: 7.0 * 24.0 * 3600.0,
        scan_rate: 11.0,
        reboot_fraction: 0.5,
        rng_seed: 2024,
    };
    let rows = blaster::sources_by_block(&study);
    // equal-size /24 rows only: interval coverage does not scale with
    // cell size, so the /16 Z rows follow a different null
    let counts: Vec<u64> = rows
        .iter()
        .filter(|r| r.prefix.len() == 24)
        .map(|r| r.unique_sources)
        .collect();
    assert!(HotspotReport::from_counts(&counts).is_hotspot());

    // forensics: take the hottest /24 row and check that candidate seeds
    // exist and imply plausible boot times (the paper's correlation)
    let hottest = rows
        .iter()
        .max_by_key(|r| r.unique_sources)
        .expect("rows are non-empty");
    let summary = hotspots::seed_inference::summarize_block(
        60_000..1_200_000, // 1..20 minutes of uptime
        Ip::from_octets(7, 7, 7, 7),
        study.scan_len(),
        hottest.prefix,
    );
    assert!(summary.candidates > 0, "no seeds explain the hottest row");
    assert!(
        summary.plausible_fraction > 0.9,
        "hot-row seeds imply implausible boot times"
    );
}

#[test]
fn fig2_slammer_pipeline_h_deficit_and_m_dark() {
    let study = slammer::SlammerStudy {
        hosts: 12_000,
        rng_seed: 5,
        ..slammer::SlammerStudy::default()
    }
    .with_m_block_filter();
    let rows = slammer::sources_by_block(&study);
    let rates: std::collections::HashMap<String, f64> =
        per_slash24_rates(&rows).into_iter().collect();
    assert_eq!(rates["M"], 0.0, "upstream-filtered M must be dark");
    assert!(rates["H"] < 0.8 * rates["D"]);
    assert!(rates["H"] < 0.8 * rates["I"]);
}

#[test]
fn fig3_per_host_slammer_variance() {
    // Host A: a seed whose cycle misses most of the telescope.
    // Host B: a seed on the Z-block cycle, hammering it.
    let blocks = ims_deployment();
    let z_seed = Ip::from_octets(96, 1, 2, 3).to_le_state();
    let host_b = slammer::host_histogram(SqlsortDll::Gold, z_seed, 100_000, &blocks);
    assert!(
        host_b.total() > 30_000,
        "Z-cycle host should pour probes into the telescope, saw {}",
        host_b.total()
    );
    // a short-cycle host: nearly nothing reaches the telescope
    let map = hotspots_prng::cycles::AffineMap::slammer(SqlsortDll::Gold);
    let short_seed = map
        .fixed_point()
        .expect("fixed point exists")
        .wrapping_add(1 << 28);
    let host_a = slammer::host_histogram(SqlsortDll::Gold, short_seed, 100_000, &blocks);
    assert!(
        host_a.total() < host_b.total() / 100,
        "short-cycle host ({}) should see orders of magnitude less than \
         the Z-cycle host ({})",
        host_a.total(),
        host_b.total()
    );
}

#[test]
fn fig4_codered_nat_hotspot_at_m() {
    let study = codered::CodeRedStudy {
        hosts: 1_200,
        nat_fraction: 0.15,
        probes_per_host: 8_000,
        rng_seed: 31,
    };
    let rows = codered::sources_by_block(&study);
    let rates: std::collections::HashMap<String, f64> =
        per_slash24_rates(&rows).into_iter().collect();
    let background: f64 = ["A", "C", "D", "E", "F", "H", "I"]
        .iter()
        .map(|l| rates[*l])
        .sum::<f64>()
        / 7.0;
    assert!(
        rates["M"] > 5.0 * background.max(0.05),
        "M rate {} vs background {}",
        rates["M"],
        background
    );
}

#[test]
fn fig5_detection_gap_and_placement() {
    let study = detection::DetectionStudy {
        population: 2_000,
        slash8s: 10,
        paper_profile: false,
        seeds: 10,
        scan_rate: 25.0,
        alert_threshold: 5,
        max_time: 2_000.0,
        stop_at_fraction: 0.9,
        rng_seed: 12,
    };
    // (a)+(b): a narrow hit-list infects its coverage but leaves most
    // sensors silent
    let runs = detection::hitlist_runs(&study, &[Some(2)]);
    let run = &runs[0];
    assert!(run.final_infected >= 0.8 * run.coverage);
    assert!(
        (run.sensors_alerted as f64) < 0.5 * run.sensors as f64,
        "{}/{} sensors alerted",
        run.sensors_alerted,
        run.sensors
    );
    // (c): hotspot-aware placement dominates random placement
    let random = detection::nat_run(&study, 0.25, detection::Placement::Random { sensors: 250 });
    let inside = detection::nat_run(&study, 0.25, detection::Placement::Inside192);
    assert!(inside.alerted_at_20pct_infected > random.alerted_at_20pct_infected);
}

#[test]
fn table2_filtering_asymmetry() {
    let study = filtering::FilteringStudy {
        infected_per_enterprise: 40,
        infected_per_isp: 150,
        probes_per_host: 2_500,
        blaster_scan_len: (30.0 * 24.0 * 3600.0 * 11.0) as u64,
        rng_seed: 9,
    };
    let rows = filtering::table2(&study);
    for row in rows {
        match row.kind {
            OrgKind::Enterprise => {
                assert_eq!(
                    row.crii_observed + row.slammer_observed + row.blaster_observed,
                    0
                );
            }
            _ => {
                assert!(
                    row.crii_observed + row.slammer_observed + row.blaster_observed > 0,
                    "{} shows no infections at all",
                    row.org
                );
            }
        }
    }
}

#[test]
fn uniform_worm_is_the_null_model() {
    // The baseline sanity check behind every claim above: uniform
    // scanning observed at figure granularity stays consistent with the
    // weighted uniform null.
    use hotspots_prng::SplitMix;
    use hotspots_targeting::{TargetGenerator, UniformScanner};
    use hotspots_telescope::BlockIndex;

    let cells = hotspots::scenarios::figure_buckets(&ims_deployment());
    let index = BlockIndex::new(cells.iter().map(|(_, p)| *p).collect());
    let mut counts = vec![0u64; cells.len()];
    let mut worm = UniformScanner::new(SplitMix::new(2));
    for _ in 0..2_000_000 {
        if let Some(i) = index.find(worm.next_target()) {
            counts[i] += 1;
        }
    }
    let weights: Vec<f64> = cells.iter().map(|(_, p)| p.size() as f64).collect();
    let report = HotspotReport::from_weighted_counts(&counts, &weights);
    assert!(!report.is_hotspot(), "{report}");
}
