//! Failure injection: the environment's degradations behave sanely
//! end-to-end (loss slows outbreaks, misconfigured filters create or
//! destroy visibility, sensor gaps degrade gracefully).

use hotspots_ipspace::{Ip, Prefix};
use hotspots_netmodel::{DropReason, Environment, FilterRule, LossModel, Service};
use hotspots_sim::{
    DropTally, Engine, FieldObserver, HitListWorm, NullObserver, Population, SimConfig,
};
use hotspots_targeting::HitList;
use hotspots_telescope::DetectorField;

fn dense_population(n: u32) -> Population {
    Population::from_public((0..n).map(|i| Ip::new(0x2121_0000 + i)))
}

fn config() -> SimConfig {
    SimConfig {
        scan_rate: 20.0,
        seeds: 5,
        dt: 1.0,
        max_time: 3_000.0,
        stop_at_fraction: Some(0.9),
        rng_seed: 4,
        ..SimConfig::default()
    }
}

fn hitlist() -> HitList {
    HitList::new(vec!["33.33.0.0/16".parse().unwrap()]).unwrap()
}

#[test]
fn packet_loss_slows_but_does_not_stop_an_outbreak() {
    let time_to_half = |loss: f64| -> f64 {
        let mut env = Environment::new();
        env.set_loss(LossModel::new(loss).unwrap());
        let mut engine = Engine::new(
            config(),
            dense_population(400),
            env,
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        result.time_to_fraction(0.5).unwrap_or(f64::INFINITY)
    };
    let clean = time_to_half(0.0);
    let mild = time_to_half(0.3);
    let severe = time_to_half(0.9);
    assert!(clean.is_finite());
    assert!(mild >= clean, "mild loss sped the worm up?");
    assert!(severe > mild, "severe loss not worse than mild");
    assert!(severe.is_finite(), "90% loss should delay, not stop");
}

#[test]
fn total_loss_stops_everything_but_seeds() {
    let mut env = Environment::new();
    env.set_loss(LossModel::new(1.0).unwrap());
    let mut engine = Engine::new(
        SimConfig {
            max_time: 200.0,
            ..config()
        },
        dense_population(100),
        env,
        Box::new(HitListWorm::new(hitlist())),
    );
    let mut tally = DropTally::new();
    let result = engine.run(&mut tally);
    assert_eq!(result.infected, 5, "only the seeds stay infected");
    assert_eq!(tally.delivered(), 0);
    assert_eq!(tally.dropped(DropReason::PacketLoss), result.probes_sent);
}

#[test]
fn misconfigured_egress_filter_quarantines_the_population() {
    // A (mis)configured deny-everything egress rule at the population's
    // network: the worm cannot spread beyond hosts reachable... in this
    // in-prefix topology nothing is deliverable at all.
    let mut env = Environment::new();
    env.filters_mut()
        .push(FilterRule::egress("33.33.0.0/16".parse().unwrap(), None));
    let mut engine = Engine::new(
        SimConfig {
            max_time: 300.0,
            ..config()
        },
        dense_population(200),
        env,
        Box::new(HitListWorm::new(hitlist())),
    );
    let mut tally = DropTally::new();
    let result = engine.run(&mut tally);
    assert_eq!(result.infected, 5);
    assert!(tally.dropped(DropReason::EgressFiltered) > 0);
}

#[test]
fn service_scoped_filter_spares_other_worms() {
    // An upstream block for the wrong service must not affect this worm.
    let mut env = Environment::new();
    env.filters_mut().push(FilterRule::ingress(
        "33.33.0.0/16".parse().unwrap(),
        Some(Service::SLAMMER_SQL), // hit-list worm probes CODERED_HTTP
    ));
    let mut engine = Engine::new(
        config(),
        dense_population(300),
        env,
        Box::new(HitListWorm::new(hitlist())),
    );
    let result = engine.run(&mut NullObserver);
    assert!(
        result.infected_fraction() >= 0.9,
        "service-scoped filter wrongly blocked the outbreak"
    );
}

#[test]
fn sensor_gaps_degrade_detection_gracefully() {
    // Remove sensors one /24 at a time: alert counts can only go down,
    // and the remaining field still works.
    let run_with_sensors = |sensors: Vec<Prefix>| -> (usize, usize) {
        let field = DetectorField::new(sensors, 3);
        let mut observer = FieldObserver::new(field);
        let mut engine = Engine::new(
            config(),
            dense_population(300),
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        engine.run(&mut observer);
        let field = observer.into_field();
        (field.alerted(), field.len())
    };
    let full: Vec<Prefix> = (0..8u32)
        .map(|i| format!("33.33.{}.0/24", 40 + i * 3).parse().unwrap())
        .collect();
    let (alerted_full, n_full) = run_with_sensors(full.clone());
    let (alerted_half, n_half) = run_with_sensors(full[..4].to_vec());
    assert_eq!(n_full, 8);
    assert_eq!(n_half, 4);
    assert!(alerted_full >= alerted_half);
    assert!(alerted_half > 0, "remaining sensors must still alert");
}

#[test]
fn self_induced_congestion_ablation() {
    // The paper notes Slammer's outbreak congested its own links. Model:
    // re-run with loss rates standing in for congestion levels and check
    // the monotone response of time-to-half-infection.
    let mut previous = 0.0;
    for loss in [0.0, 0.5, 0.95] {
        let mut env = Environment::new();
        env.set_loss(LossModel::new(loss).unwrap());
        let mut engine = Engine::new(
            SimConfig {
                max_time: 20_000.0,
                ..config()
            },
            dense_population(300),
            env,
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        let t = result.time_to_fraction(0.5).expect("still spreads");
        assert!(
            t >= previous,
            "loss {loss} gave time {t} < previous {previous}"
        );
        previous = t;
    }
}
