//! Cross-crate telemetry integration: observer composition ordering,
//! `TelemetryObserver` accounting against the engine's own ledger, and
//! the JSONL event path end to end.

use std::cell::RefCell;
use std::rc::Rc;

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, Environment, Locus, LossModel};
use hotspots_sim::{apply_nat, Engine, Population, SimConfig, SimObserver, TelemetryObserver};
use hotspots_telemetry::{json, JsonlSink, ReportBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Appends `(label, event)` rows to a shared log — for asserting the
/// order in which composed observers see the stream.
struct LogObserver {
    label: &'static str,
    log: Rc<RefCell<Vec<(&'static str, &'static str)>>>,
}

impl SimObserver for LogObserver {
    fn on_probe(&mut self, _time: f64, _public_src: Ip, _delivery: Delivery) {
        self.log.borrow_mut().push((self.label, "probe"));
    }

    fn on_infection(&mut self, _time: f64, _host: usize, _locus: Locus) {
        self.log.borrow_mut().push((self.label, "infection"));
    }
}

/// A small deterministic outbreak: half the hosts NATed (local
/// deliveries + unroutable private scans), 20% packet loss, CodeRedII
/// locality so both public and private infections occur.
fn lossy_nat_engine() -> Engine {
    let mut env = Environment::new();
    env.set_loss(LossModel::new(0.2).unwrap());
    let mut nat_rng = StdRng::seed_from_u64(11);
    let publics: Vec<Ip> = (0..200u32).map(|i| Ip::new(0x0d0d_0000 + i)).collect();
    let loci = apply_nat(&mut env, &publics, 0.5, &mut nat_rng);
    let config = SimConfig {
        scan_rate: 20.0,
        seeds: 4,
        dt: 1.0,
        max_time: 150.0,
        stop_at_fraction: None,
        rng_seed: 17,
        ..SimConfig::default()
    };
    Engine::new(
        config,
        Population::from_loci(loci),
        env,
        Box::new(hotspots_sim::CodeRed2Worm),
    )
}

#[test]
fn tuple_observers_see_every_event_in_declaration_order() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let first = LogObserver {
        label: "first",
        log: Rc::clone(&log),
    };
    let second = LogObserver {
        label: "second",
        log: Rc::clone(&log),
    };

    let pop = Population::from_public((0..60u32).map(|i| Ip::new(0x0a0a_0000 + i)));
    let config = SimConfig {
        scan_rate: 5.0,
        seeds: 2,
        dt: 1.0,
        max_time: 20.0,
        stop_at_fraction: None,
        rng_seed: 9,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(
        config,
        pop,
        Environment::new(),
        Box::new(hotspots_sim::UniformWorm),
    );
    let mut pair = (first, second);
    let result = engine.run(&mut pair);

    let log = log.borrow();
    let events = result.probes_sent as usize + result.infected;
    assert_eq!(log.len(), 2 * events, "both observers see every event");
    // strict interleaving: first always immediately precedes second
    for window in log.chunks(2) {
        assert_eq!(window[0].0, "first");
        assert_eq!(window[1].0, "second");
        assert_eq!(window[0].1, window[1].1, "same event reaches both");
    }
}

#[test]
fn telemetry_observer_matches_engine_verdicts_exactly() {
    let mut engine = lossy_nat_engine();
    let mut telemetry = TelemetryObserver::disabled();
    let result = engine.run(&mut telemetry);

    // the observer's ledger is byte-for-byte the engine's own accounting
    assert_eq!(*telemetry.ledger(), result.ledger);
    assert_eq!(telemetry.ledger().probes(), result.probes_sent);
    assert_eq!(
        telemetry.ledger().delivered() + telemetry.ledger().dropped_total(),
        result.probes_sent,
        "delivered + dropped covers every probe"
    );
    // the scenario exercises both delivery kinds and real drops
    assert!(
        telemetry.ledger().delivered_local() > 0,
        "NAT-local deliveries"
    );
    assert!(
        telemetry.ledger().dropped_total() > 0,
        "loss + unroutable drops"
    );
    // per-/8 hotspot surface sums to exactly the delivered probes
    assert_eq!(
        telemetry.slash8_counts().iter().sum::<u64>(),
        telemetry.ledger().delivered()
    );
    // every infection the engine recorded reached the observer
    assert_eq!(telemetry.infections(), result.infected as u64);
    assert!(
        telemetry.infections_private() > 0,
        "CodeRedII spreads inside NATs"
    );

    // and the folded run report balances
    let mut builder = ReportBuilder::new("integration", "telemetry");
    telemetry.fold_into(&mut builder);
    let report = builder.build();
    assert_eq!(report.accounting_error(), None);
    assert_eq!(report.probes_sent, result.probes_sent);
}

#[test]
fn telemetry_runs_are_reproducible() {
    let run = || {
        let mut engine = lossy_nat_engine();
        let mut telemetry = TelemetryObserver::disabled();
        engine.run(&mut telemetry);
        (
            *telemetry.ledger(),
            telemetry.infections(),
            telemetry.top_slash8s(3),
        )
    };
    assert_eq!(run(), run(), "fixed seeds replay bit-identically");
}

#[test]
fn jsonl_sink_round_trips_infection_events() {
    let mut engine = lossy_nat_engine();
    let mut telemetry = TelemetryObserver::new(JsonlSink::new(Vec::new()));
    let result = engine.run(&mut telemetry);
    assert!(result.infected > 0);

    let infections = telemetry.infections();
    let sink = telemetry.into_sink();
    assert_eq!(sink.lines(), infections);
    assert_eq!(sink.errors(), 0);

    let bytes = sink.into_inner().expect("flush");
    let text = String::from_utf8(bytes).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), infections as usize, "one line per infection");

    let mut public = 0u64;
    let mut private = 0u64;
    for line in lines {
        let doc = json::parse(line).expect("each line parses as JSON");
        assert_eq!(
            doc.get("kind").and_then(json::Json::as_str),
            Some("infection")
        );
        assert!(doc.get("t").and_then(json::Json::as_f64).is_some());
        assert!(doc.get("host").and_then(json::Json::as_u64).is_some());
        match doc.get("locus").and_then(json::Json::as_str) {
            Some("public") => public += 1,
            Some("private") => private += 1,
            other => panic!("bad locus field: {other:?} in {line}"),
        }
    }
    assert_eq!(public + private, result.infected as u64);
    assert!(private > 0, "NATed infections appear in the event stream");
}
