//! Reproducibility: every pipeline in the stack replays bit-for-bit from
//! its seed, and distinct seeds genuinely change outcomes.

use hotspots::scenarios::{blaster, codered, detection, slammer};
use hotspots_ipspace::Ip;
use hotspots_netmodel::Environment;
use hotspots_sim::{
    synthetic_codered_population, Engine, NullObserver, Population, SimConfig, SlammerWorm,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn population_synthesis_replays() {
    let a = synthetic_codered_population(5_000, 20, &mut StdRng::seed_from_u64(1));
    let b = synthetic_codered_population(5_000, 20, &mut StdRng::seed_from_u64(1));
    let c = synthetic_codered_population(5_000, 20, &mut StdRng::seed_from_u64(2));
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn engine_runs_replay_across_constructions() {
    let run = |seed: u64| {
        let pop = synthetic_codered_population(1_000, 8, &mut StdRng::seed_from_u64(3));
        let config = SimConfig {
            scan_rate: 10.0,
            seeds: 5,
            dt: 1.0,
            max_time: 300.0,
            stop_at_fraction: None,
            rng_seed: seed,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(
            config,
            Population::from_public(pop),
            Environment::new(),
            Box::new(SlammerWorm),
        );
        let result = engine.run(&mut NullObserver);
        (result.probes_sent, result.infected, result.infection_times)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).2, run(8).2);
}

#[test]
fn scenario_outputs_replay() {
    let blaster_study = blaster::BlasterStudy {
        hosts: 1_000,
        window_secs: 86_400.0,
        scan_rate: 11.0,
        reboot_fraction: 0.5,
        rng_seed: 5,
    };
    assert_eq!(
        blaster::sources_by_block(&blaster_study),
        blaster::sources_by_block(&blaster_study)
    );

    let slammer_study = slammer::SlammerStudy {
        hosts: 2_000,
        rng_seed: 5,
        ..slammer::SlammerStudy::default()
    };
    assert_eq!(
        slammer::sources_by_block(&slammer_study),
        slammer::sources_by_block(&slammer_study)
    );

    let codered_study = codered::CodeRedStudy {
        hosts: 300,
        nat_fraction: 0.2,
        probes_per_host: 2_000,
        rng_seed: 5,
    };
    assert_eq!(
        codered::sources_by_block(&codered_study),
        codered::sources_by_block(&codered_study)
    );
}

#[test]
fn detection_runs_replay() {
    let study = detection::DetectionStudy {
        population: 1_000,
        slash8s: 8,
        paper_profile: false,
        seeds: 5,
        scan_rate: 20.0,
        alert_threshold: 3,
        max_time: 800.0,
        stop_at_fraction: 0.8,
        rng_seed: 13,
    };
    let a = detection::nat_run(&study, 0.2, detection::Placement::Inside192);
    let b = detection::nat_run(&study, 0.2, detection::Placement::Inside192);
    assert_eq!(a.sensors_alerted, b.sensors_alerted);
    assert_eq!(
        a.alert_curve.iter().collect::<Vec<_>>(),
        b.alert_curve.iter().collect::<Vec<_>>()
    );
}

#[test]
fn engine_invariants_hold_across_configurations() {
    // ever-infected monotone; removed ≤ infected; infection times sorted
    // consistently with the curve; holds with removal, latency, and
    // dispersion all enabled at once.
    let pop = synthetic_codered_population(800, 6, &mut StdRng::seed_from_u64(44));
    let mut env = Environment::new();
    env.set_latency(hotspots_netmodel::LatencyModel::new(0.5, 2.0).unwrap());
    env.set_loss(hotspots_netmodel::LossModel::new(0.1).unwrap());
    let config = SimConfig {
        scan_rate: 30.0,
        scan_rate_sigma: 0.8,
        seeds: 8,
        dt: 1.0,
        max_time: 1_500.0,
        stop_at_fraction: None,
        removal_rate: 0.002,
        rng_seed: 45,
        threads: 1,
        trace: false,
    };
    let list = hotspots_targeting::HitList::top_k_slash16(&pop, 3);
    let mut engine = Engine::new(
        config,
        Population::from_public(pop),
        env,
        Box::new(hotspots_sim::HitListWorm::new(list)),
    );
    let result = engine.run(&mut NullObserver);
    assert!(result.removed <= result.infected);
    let pts: Vec<(f64, f64)> = result.infection_curve.iter().collect();
    for w in pts.windows(2) {
        assert!(w[1].1 >= w[0].1, "ever-infected must be monotone");
        assert!(w[1].0 >= w[0].0);
    }
    let times: Vec<f64> = result.infection_times.iter().flatten().copied().collect();
    assert_eq!(times.len(), result.infected);
    assert!(times
        .iter()
        .all(|&t| t >= 0.0 && t <= result.elapsed + 1e-9));
}

#[test]
fn quarantine_runs_replay() {
    let blocks = hotspots_ipspace::ims_deployment();
    let a = codered::quarantine_run(Ip::from_octets(192, 168, 0, 100), 100_000, &blocks, 6);
    let b = codered::quarantine_run(Ip::from_octets(192, 168, 0, 100), 100_000, &blocks, 6);
    assert_eq!(a, b);
}
