//! Engine validation against the classical epidemic model: on a uniform
//! worm the per-probe simulator must track the logistic closed form
//! (DESIGN.md ablation #3).

use hotspots::epidemic::{relative_error, SiModel};
use hotspots_ipspace::Ip;
use hotspots_netmodel::Environment;
use hotspots_sim::{Engine, HitListWorm, NullObserver, Population, SimConfig};
use hotspots_targeting::HitList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform scanning over a /16 hit-list whose population is randomly
/// spread inside it — the exact setting of the SI logistic model with
/// Ω = 65536.
fn run_uniform_outbreak(
    n_hosts: usize,
    scan_rate: f64,
    seeds: usize,
    rng_seed: u64,
) -> hotspots_sim::SimResult {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut addrs = std::collections::BTreeSet::new();
    while addrs.len() < n_hosts {
        addrs.insert(Ip::new(0x2c2c_0000 | rng.gen::<u32>() & 0xffff));
    }
    let list = HitList::new(vec!["44.44.0.0/16".parse().unwrap()]).unwrap();
    let config = SimConfig {
        scan_rate,
        seeds,
        dt: 0.5,
        max_time: 5_000.0,
        stop_at_fraction: Some(0.99),
        rng_seed,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(
        config,
        Population::from_public(addrs),
        Environment::new(),
        Box::new(HitListWorm::new(list)),
    );
    engine.run(&mut NullObserver)
}

#[test]
fn engine_matches_logistic_model() {
    let (n, rate, seeds) = (3_000usize, 5.0, 30usize);
    let result = run_uniform_outbreak(n, rate, seeds, 71);
    let model = SiModel::new(n as f64, rate, 65_536.0, seeds as f64).unwrap();
    let err = relative_error(&model, &result.infection_curve)
        .expect("simulation reached the comparison fractions");
    assert!(
        err < 0.2,
        "probe-level engine diverges {err:.3} from the logistic model"
    );
}

#[test]
fn engine_and_model_agree_on_parameter_scaling() {
    // doubling the scan rate should roughly halve time-to-half in BOTH
    // the model and the engine
    let slow = run_uniform_outbreak(2_000, 4.0, 20, 5);
    let fast = run_uniform_outbreak(2_000, 8.0, 20, 5);
    let t_slow = slow.time_to_fraction(0.5).unwrap();
    let t_fast = fast.time_to_fraction(0.5).unwrap();
    let engine_ratio = t_slow / t_fast;
    let m_slow = SiModel::new(2_000.0, 4.0, 65_536.0, 20.0).unwrap();
    let m_fast = SiModel::new(2_000.0, 8.0, 65_536.0, 20.0).unwrap();
    let model_ratio = m_slow.time_to_fraction(0.5).unwrap() / m_fast.time_to_fraction(0.5).unwrap();
    assert!(
        (engine_ratio - model_ratio).abs() < 0.35,
        "rate-scaling mismatch: engine {engine_ratio:.2} vs model {model_ratio:.2}"
    );
}

#[test]
fn hotspot_worms_deviate_from_the_logistic_model() {
    // The counterpoint that motivates the whole paper: a worm with local
    // preference over a *clustered* population does NOT follow uniform
    // epidemic dynamics (it spreads faster inside clusters).
    use hotspots_sim::CodeRed2Worm;
    let mut rng = StdRng::seed_from_u64(9);
    // clustered: all hosts inside one /24 of the /16
    let mut addrs = std::collections::BTreeSet::new();
    while addrs.len() < 200 {
        addrs.insert(Ip::new(0x2c2c_7700 | rng.gen::<u32>() & 0xff));
    }
    let config = SimConfig {
        scan_rate: 5.0,
        seeds: 4,
        dt: 1.0,
        max_time: 5_000.0,
        stop_at_fraction: Some(0.95),
        rng_seed: 10,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(
        config,
        Population::from_public(addrs),
        Environment::new(),
        Box::new(CodeRed2Worm),
    );
    let result = engine.run(&mut NullObserver);
    // the uniform model over 2^32 would predict essentially zero progress
    // in 5000s; local preference blows straight past it
    let uniform_model = SiModel::new(200.0, 5.0, 2f64.powi(32), 4.0).unwrap();
    let t_half_model = uniform_model.time_to_fraction(0.5).unwrap();
    let t_half_sim = result
        .time_to_fraction(0.5)
        .expect("local preference spreads");
    assert!(
        t_half_sim < t_half_model / 100.0,
        "clustering + local preference should beat uniform by orders of \
         magnitude: sim {t_half_sim:.0}s vs model {t_half_model:.0}s"
    );
}
