//! The shipped example spec files stay parseable and valid.
//!
//! `examples/specs/*.toml` are generated with `hotspots spec <name>`;
//! this suite guards against the registry drifting away from the files
//! (or a hand edit breaking them) without anyone noticing.

use hotspots_scenario::ScenarioSpec;
use std::path::PathBuf;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs")
}

fn spec_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(specs_dir())
        .expect("examples/specs exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn ships_one_spec_per_preset_family() {
    let names: Vec<String> = spec_files()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for expected in [
        "fig2",
        "table1",
        "ablations",
        "xmode-slammer",
        "bench-slammer",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing examples/specs/{expected}.toml (have: {names:?})"
        );
    }
}

#[test]
fn every_spec_file_parses_validates_and_round_trips() {
    for path in spec_files() {
        let text = std::fs::read_to_string(&path).expect("readable spec file");
        let spec = ScenarioSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("{}: failed to parse: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: failed to validate: {e}", path.display()));
        // the emitted form must describe the same scenario
        let reparsed = ScenarioSpec::from_toml(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{}: re-emit failed to parse: {e}", path.display()));
        assert_eq!(
            spec,
            reparsed,
            "{}: TOML round-trip drifted",
            path.display()
        );
    }
}

#[test]
fn every_spec_file_matches_its_registry_preset() {
    for path in spec_files() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let preset = hotspots_scenario::find_preset(&name)
            .unwrap_or_else(|| panic!("{name}: spec file has no registry preset"));
        let text = std::fs::read_to_string(&path).expect("readable spec file");
        let from_file = ScenarioSpec::from_toml(&text).expect("spec file parses");
        let from_registry = preset.spec(hotspots_scenario::Scale::Paper);
        assert_eq!(
            from_registry,
            from_file,
            "{}: stale — regenerate with `hotspots spec {name}`",
            path.display()
        );
    }
}
