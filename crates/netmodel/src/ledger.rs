//! Per-verdict probe accounting.

use crate::environment::{Delivery, DropReason};

/// Counts every [`Delivery`] verdict a probe stream produced: one
/// increment per probe, split into public/local deliveries and a
/// per-[`DropReason`] breakdown.
///
/// This is the accounting substrate of the run reports: the invariant
/// `delivered() + dropped_total() == probes()` holds by construction,
/// because [`DeliveryLedger::record`] files every verdict exactly once.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_netmodel::{Delivery, DeliveryLedger, DropReason};
///
/// let mut ledger = DeliveryLedger::new();
/// ledger.record(Delivery::Public(Ip::from_octets(203, 0, 113, 7)));
/// ledger.record(Delivery::Dropped(DropReason::PacketLoss));
/// assert_eq!(ledger.probes(), 2);
/// assert_eq!(ledger.delivered(), 1);
/// assert_eq!(ledger.dropped(DropReason::PacketLoss), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeliveryLedger {
    probes: u64,
    delivered_public: u64,
    delivered_local: u64,
    drops: [u64; DropReason::ALL.len()],
}

impl DeliveryLedger {
    /// An empty ledger.
    pub fn new() -> DeliveryLedger {
        DeliveryLedger::default()
    }

    /// Files one verdict.
    #[inline]
    pub fn record(&mut self, delivery: Delivery) {
        self.probes += 1;
        match delivery {
            Delivery::Public(_) => self.delivered_public += 1,
            Delivery::Local { .. } => self.delivered_local += 1,
            Delivery::Dropped(reason) => self.drops[reason.index()] += 1,
        }
    }

    /// Files the verdicts of a clean public sweep in bulk: `delivered`
    /// public deliveries plus `total - delivered` unroutable-destination
    /// drops, exactly as `total` calls to [`DeliveryLedger::record`]
    /// would. This is the accounting half of the batch router's fast
    /// lane, where those are the only two verdicts possible.
    ///
    /// # Panics
    ///
    /// Panics if `delivered > total` — that would fabricate probes.
    #[inline]
    pub fn record_clean_sweep(&mut self, total: u64, delivered: u64) {
        assert!(delivered <= total, "delivered exceeds probes");
        self.probes += total;
        self.delivered_public += delivered;
        self.drops[DropReason::UnroutableDestination.index()] += total - delivered;
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &DeliveryLedger) {
        self.probes += other.probes;
        self.delivered_public += other.delivered_public;
        self.delivered_local += other.delivered_local;
        for (mine, theirs) in self.drops.iter_mut().zip(other.drops) {
            *mine += theirs;
        }
    }

    /// Total probes filed.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes delivered to public destinations.
    pub fn delivered_public(&self) -> u64 {
        self.delivered_public
    }

    /// Probes delivered locally within a NAT realm.
    pub fn delivered_local(&self) -> u64 {
        self.delivered_local
    }

    /// Probes delivered anywhere (publicly or locally).
    pub fn delivered(&self) -> u64 {
        self.delivered_public + self.delivered_local
    }

    /// Drops filed under `reason`.
    pub fn dropped(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()]
    }

    /// All drops, regardless of reason.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The drop breakdown in [`DropReason::ALL`] order, zero counts
    /// included.
    pub fn drops(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL.into_iter().zip(self.drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::RealmId;
    use hotspots_ipspace::Ip;

    #[test]
    fn every_verdict_is_filed_once() {
        let mut ledger = DeliveryLedger::new();
        ledger.record(Delivery::Public(Ip::from_octets(1, 2, 3, 4)));
        ledger.record(Delivery::Local {
            realm: RealmId(0),
            ip: Ip::from_octets(192, 168, 0, 1),
        });
        for reason in DropReason::ALL {
            ledger.record(Delivery::Dropped(reason));
        }
        assert_eq!(ledger.probes(), 2 + DropReason::ALL.len() as u64);
        assert_eq!(ledger.delivered_public(), 1);
        assert_eq!(ledger.delivered_local(), 1);
        assert_eq!(ledger.delivered(), 2);
        assert_eq!(ledger.dropped_total(), DropReason::ALL.len() as u64);
        assert_eq!(ledger.delivered() + ledger.dropped_total(), ledger.probes());
        for reason in DropReason::ALL {
            assert_eq!(ledger.dropped(reason), 1, "{reason}");
        }
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = DeliveryLedger::new();
        a.record(Delivery::Public(Ip::MIN));
        a.record(Delivery::Dropped(DropReason::PacketLoss));
        let mut b = DeliveryLedger::new();
        b.record(Delivery::Dropped(DropReason::PacketLoss));
        a.merge(&b);
        assert_eq!(a.probes(), 3);
        assert_eq!(a.dropped(DropReason::PacketLoss), 2);
        assert_eq!(a.delivered(), 1);
    }

    #[test]
    fn drops_iterates_in_all_order() {
        let mut ledger = DeliveryLedger::new();
        ledger.record(Delivery::Dropped(DropReason::IngressFiltered));
        let breakdown: Vec<(DropReason, u64)> = ledger.drops().collect();
        assert_eq!(breakdown.len(), DropReason::ALL.len());
        assert_eq!(
            breakdown[DropReason::IngressFiltered.index()],
            (DropReason::IngressFiltered, 1)
        );
        assert_eq!(breakdown[DropReason::PacketLoss.index()].1, 0);
    }

    #[test]
    fn snake_labels_are_stable() {
        let labels: Vec<&str> = DropReason::ALL.iter().map(|r| r.snake_label()).collect();
        assert_eq!(
            labels,
            [
                "unroutable_destination",
                "egress_filtered",
                "ingress_filtered",
                "packet_loss",
                "sensor_outage",
                "upstream_blackhole",
                "filter_flap",
                "degraded_loss"
            ]
        );
    }
}
