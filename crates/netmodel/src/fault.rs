//! Schedule-driven environmental fault injection.
//!
//! The paper's third environmental factor class — **failures and
//! misconfiguration** — is more than steady-state packet loss: telescope
//! blocks go dark for hours, upstream providers blackhole whole prefixes,
//! border ACLs flap in and out of effect, and congested links shed
//! traffic for a window and then recover. A [`FaultPlan`] models these as
//! a deterministic schedule of [`FaultEvent`]s, each active over a
//! half-open time window `[t0, t1)`, composed with any
//! [`Environment`](crate::Environment) via
//! [`Environment::set_faults`](crate::Environment::set_faults).
//!
//! Determinism contract: fault activity is a pure function of simulation
//! time, so two runs with the same plan see the same faults at the same
//! steps regardless of thread count. The only stochastic fault —
//! [`FaultKind::DegradedLoss`] — draws from the per-host probe RNG
//! exactly once per matching probe, in both the scalar and batch routing
//! paths, keeping batch size and sharding out of the outcome.
//!
//! Every fault drop is filed under its own
//! [`DropReason`](crate::DropReason) verdict class
//! (`sensor_outage`, `upstream_blackhole`, `filter_flap`,
//! `degraded_loss`), so run reports attribute every probe a fault
//! consumed and `delivered + dropped == probes` still holds by
//! construction.
//!
//! # Examples
//!
//! ```
//! use hotspots_netmodel::{FaultEvent, FaultKind, FaultPlan, FaultWindow};
//!
//! let mut plan = FaultPlan::new();
//! plan.push(FaultEvent::new(
//!     FaultKind::SensorOutage {
//!         block: "66.66.0.0/16".parse().unwrap(),
//!     },
//!     FaultWindow::new(100.0, 300.0),
//! ));
//! assert!(!plan.is_empty());
//! // Before the window the plan is inert; inside it the block is dark.
//! assert!(plan.view_at(50.0).is_inert());
//! assert!(!plan.view_at(100.0).is_inert());
//! assert!(plan.view_at(150.0).outage("66.66.1.2".parse().unwrap()));
//! assert!(plan.view_at(300.0).is_inert());
//! ```

use std::fmt;

use hotspots_ipspace::{Ip, Prefix};

use crate::service::Service;

/// A half-open activity window `[t0, t1)` in simulation seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultWindow {
    /// Start of the window (inclusive).
    pub t0: f64,
    /// End of the window (exclusive).
    pub t1: f64,
}

impl FaultWindow {
    /// A window active for `t0 <= t < t1`.
    pub fn new(t0: f64, t1: f64) -> FaultWindow {
        FaultWindow { t0, t1 }
    }

    /// Whether `time` falls inside the window.
    #[inline]
    pub fn contains(&self, time: f64) -> bool {
        time >= self.t0 && time < self.t1
    }
}

impl fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.t0, self.t1)
    }
}

/// What kind of environmental failure an event injects.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// A sensor/telescope block goes dark: probes *toward* `block` are
    /// consumed (the ledger files them as `sensor_outage`) but never
    /// delivered, so observers wired to public deliveries see nothing.
    SensorOutage {
        /// The darkened destination block.
        block: Prefix,
    },
    /// An upstream blackhole: all traffic from *or* to `prefix` is
    /// discarded at the provider, as when an org's announcement is
    /// withdrawn or a mitigation blackholes a /8.
    Blackhole {
        /// The blackholed prefix (matched against source and
        /// destination).
        prefix: Prefix,
    },
    /// A filter rule that flaps on a duty cycle while the window is
    /// active: for each `period` seconds starting at the window's `t0`,
    /// the rule is in effect for the first `duty` fraction of the period
    /// and dormant for the rest.
    FilterFlap {
        /// The flapping deny rule (its own `reason` is ignored; drops
        /// are filed as `filter_flap`).
        rule: crate::filtering::FilterRule,
        /// Toggle period in seconds (must be positive to ever match).
        period: f64,
        /// Fraction of each period the rule is in effect, in `(0, 1]`.
        duty: f64,
    },
    /// A degraded path: probes from *or* to `prefix` suffer an extra
    /// Bernoulli loss draw at `rate` on top of the environment's base
    /// loss model.
    DegradedLoss {
        /// The degraded prefix (matched against source and destination).
        prefix: Prefix,
        /// Extra per-probe loss probability in `[0, 1]`.
        rate: f64,
    },
}

/// One scheduled fault: a kind plus its activity window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultEvent {
    /// What fails.
    pub kind: FaultKind,
    /// When it fails.
    pub window: FaultWindow,
}

impl FaultEvent {
    /// An event of `kind` active over `window`.
    pub fn new(kind: FaultKind, window: FaultWindow) -> FaultEvent {
        FaultEvent { kind, window }
    }

    /// Whether this event is in effect at `time` — inside its window,
    /// and (for [`FaultKind::FilterFlap`]) in the on-phase of its duty
    /// cycle.
    #[inline]
    pub fn applies_at(&self, time: f64) -> bool {
        if !self.window.contains(time) {
            return false;
        }
        match self.kind {
            FaultKind::FilterFlap { period, duty, .. } => {
                // A non-positive period yields NaN here, which compares
                // false: a malformed flap never fires rather than
                // panicking mid-run.
                (time - self.window.t0) % period < duty * period
            }
            FaultKind::SensorOutage { .. }
            | FaultKind::Blackhole { .. }
            | FaultKind::DegradedLoss { .. } => true,
        }
    }
}

/// A deterministic schedule of environmental faults.
///
/// Events are evaluated in insertion order; the first matching fault
/// decides a probe's verdict (degraded-loss events are the exception —
/// they stack an extra loss draw rather than short-circuiting).
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no faults, zero routing overhead.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends an event to the schedule.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events, in evaluation order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Resolves the plan at one instant. The routing layer calls this
    /// once per batch; when nothing is in effect the returned view is
    /// [inert](FaultView::is_inert) and costs one boolean test per
    /// probe.
    pub fn view_at(&self, time: f64) -> FaultView<'_> {
        FaultView {
            events: &self.events,
            time,
            any: self.events.iter().any(|e| e.applies_at(time)),
        }
    }
}

impl FromIterator<FaultEvent> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = FaultEvent>>(iter: I) -> FaultPlan {
        FaultPlan {
            events: iter.into_iter().collect(),
        }
    }
}

/// A [`FaultPlan`] resolved at one instant of simulation time.
#[derive(Debug, Clone, Copy)]
pub struct FaultView<'a> {
    events: &'a [FaultEvent],
    time: f64,
    any: bool,
}

impl FaultView<'_> {
    /// `true` when no event is in effect at this instant — the routing
    /// fast path.
    #[inline]
    pub fn is_inert(&self) -> bool {
        !self.any
    }

    /// Whether an active blackhole swallows a probe from `src` to `dst`.
    #[inline]
    pub fn blackholed(&self, src: Ip, dst: Ip) -> bool {
        self.any
            && self.events.iter().any(|e| match e.kind {
                FaultKind::Blackhole { prefix } => {
                    (prefix.contains(src) || prefix.contains(dst)) && e.applies_at(self.time)
                }
                _ => false,
            })
    }

    /// Whether an active sensor outage darkens destination `dst`.
    #[inline]
    pub fn outage(&self, dst: Ip) -> bool {
        self.any
            && self.events.iter().any(|e| match e.kind {
                FaultKind::SensorOutage { block } => block.contains(dst) && e.applies_at(self.time),
                _ => false,
            })
    }

    /// Whether a flapping filter rule, currently in its on-phase,
    /// matches the probe.
    #[inline]
    pub fn flapped(&self, src: Ip, dst: Ip, service: Service) -> bool {
        self.any
            && self.events.iter().any(|e| match e.kind {
                FaultKind::FilterFlap { rule, .. } => {
                    rule.matches(src, dst, service) && e.applies_at(self.time)
                }
                _ => false,
            })
    }

    /// The extra loss rate of the first active degraded-path fault
    /// matching the probe, if any.
    #[inline]
    pub fn degraded(&self, src: Ip, dst: Ip) -> Option<f64> {
        if !self.any {
            return None;
        }
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::DegradedLoss { prefix, rate }
                if (prefix.contains(src) || prefix.contains(dst)) && e.applies_at(self.time) =>
            {
                Some(rate)
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filtering::FilterRule;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn window_is_half_open() {
        let w = FaultWindow::new(10.0, 20.0);
        assert!(!w.contains(9.999));
        assert!(w.contains(10.0));
        assert!(w.contains(19.999));
        assert!(!w.contains(20.0));
    }

    #[test]
    fn empty_plan_is_inert_at_all_times() {
        let plan = FaultPlan::new();
        for t in [0.0, 1.0, 1e6] {
            assert!(plan.view_at(t).is_inert());
        }
    }

    #[test]
    fn outage_matches_destination_block_only() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::SensorOutage {
                block: prefix("66.66.0.0/16"),
            },
            FaultWindow::new(0.0, 100.0),
        ));
        let view = plan.view_at(50.0);
        assert!(view.outage(ip("66.66.3.4")));
        assert!(!view.outage(ip("67.0.0.1")));
        // outages key on destination: a source inside the block still
        // emits
        assert!(!view.blackholed(ip("66.66.3.4"), ip("8.8.8.8")));
        assert!(plan.view_at(100.0).is_inert());
    }

    #[test]
    fn blackhole_matches_either_endpoint() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::Blackhole {
                prefix: prefix("12.0.0.0/8"),
            },
            FaultWindow::new(5.0, 10.0),
        ));
        let view = plan.view_at(7.0);
        assert!(view.blackholed(ip("12.1.2.3"), ip("8.8.8.8")));
        assert!(view.blackholed(ip("8.8.8.8"), ip("12.1.2.3")));
        assert!(!view.blackholed(ip("8.8.8.8"), ip("9.9.9.9")));
        assert!(!plan.view_at(4.0).blackholed(ip("12.1.2.3"), ip("8.8.8.8")));
    }

    #[test]
    fn flap_follows_duty_cycle() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::FilterFlap {
                rule: FilterRule::ingress(prefix("10.0.0.0/8"), None),
                period: 10.0,
                duty: 0.5,
            },
            FaultWindow::new(100.0, 200.0),
        ));
        let src = ip("1.1.1.1");
        let dst = ip("10.2.3.4");
        let svc = Service::CODERED_HTTP;
        // on-phase: first half of each period
        assert!(plan.view_at(100.0).flapped(src, dst, svc));
        assert!(plan.view_at(104.9).flapped(src, dst, svc));
        // off-phase: second half
        assert!(!plan.view_at(105.0).flapped(src, dst, svc));
        assert!(!plan.view_at(109.9).flapped(src, dst, svc));
        // next period: on again
        assert!(plan.view_at(110.0).flapped(src, dst, svc));
        // outside the window: never
        assert!(!plan.view_at(99.0).flapped(src, dst, svc));
        assert!(!plan.view_at(200.0).flapped(src, dst, svc));
        // wrong destination: never
        assert!(!plan.view_at(100.0).flapped(src, ip("11.0.0.1"), svc));
    }

    #[test]
    fn malformed_flap_period_never_fires() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::FilterFlap {
                rule: FilterRule::ingress(prefix("0.0.0.0/0"), None),
                period: 0.0,
                duty: 1.0,
            },
            FaultWindow::new(0.0, 100.0),
        ));
        assert!(!plan
            .view_at(50.0)
            .flapped(ip("1.1.1.1"), ip("2.2.2.2"), Service::BOT_SMB));
    }

    #[test]
    fn degraded_reports_first_matching_rate() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::DegradedLoss {
                prefix: prefix("20.0.0.0/8"),
                rate: 0.25,
            },
            FaultWindow::new(0.0, 50.0),
        ));
        plan.push(FaultEvent::new(
            FaultKind::DegradedLoss {
                prefix: prefix("20.1.0.0/16"),
                rate: 0.75,
            },
            FaultWindow::new(0.0, 50.0),
        ));
        let view = plan.view_at(10.0);
        // first matching event wins
        assert_eq!(view.degraded(ip("20.1.2.3"), ip("8.8.8.8")), Some(0.25));
        assert_eq!(view.degraded(ip("8.8.8.8"), ip("20.9.9.9")), Some(0.25));
        assert_eq!(view.degraded(ip("8.8.8.8"), ip("9.9.9.9")), None);
        assert_eq!(
            plan.view_at(60.0).degraded(ip("20.1.2.3"), ip("8.8.8.8")),
            None
        );
    }

    #[test]
    fn plan_collects_from_iterator() {
        let plan: FaultPlan = [FaultEvent::new(
            FaultKind::Blackhole {
                prefix: prefix("1.0.0.0/8"),
            },
            FaultWindow::new(0.0, 1.0),
        )]
        .into_iter()
        .collect();
        assert_eq!(plan.events().len(), 1);
    }
}
