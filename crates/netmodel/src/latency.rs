//! Path latency: topology's effect on infection *timing*.
//!
//! The paper lists message latency among the environmental factors that
//! "determine … the rate at which an infection can progress". This model
//! delays the moment a delivered probe takes effect: a victim hit at
//! time `t` becomes infectious at `t + latency`.

use rand::Rng;

/// A base-plus-uniform-jitter latency model (seconds).
///
/// # Examples
///
/// ```
/// use hotspots_netmodel::LatencyModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let l = LatencyModel::new(0.2, 0.1).unwrap();
/// let d = l.sample(&mut rng);
/// assert!((0.2..=0.3).contains(&d));
/// assert_eq!(LatencyModel::NONE.sample(&mut rng), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyModel {
    base_secs: f64,
    jitter_secs: f64,
}

impl LatencyModel {
    /// Zero latency (the idealized instantaneous-infection Internet).
    pub const NONE: LatencyModel = LatencyModel {
        base_secs: 0.0,
        jitter_secs: 0.0,
    };

    /// Creates a model: every delivery takes `base_secs` plus a uniform
    /// draw from `[0, jitter_secs)`.
    ///
    /// Returns `None` for negative or non-finite parameters.
    pub fn new(base_secs: f64, jitter_secs: f64) -> Option<LatencyModel> {
        let ok = base_secs.is_finite()
            && jitter_secs.is_finite()
            && base_secs >= 0.0
            && jitter_secs >= 0.0;
        ok.then_some(LatencyModel {
            base_secs,
            jitter_secs,
        })
    }

    /// The fixed component in seconds.
    pub fn base_secs(&self) -> f64 {
        self.base_secs
    }

    /// The jitter width in seconds.
    pub fn jitter_secs(&self) -> f64 {
        self.jitter_secs
    }

    /// Returns `true` if this model never delays anything.
    pub fn is_zero(&self) -> bool {
        self.base_secs == 0.0 && self.jitter_secs == 0.0
    }

    /// Samples one delivery latency in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.is_zero() {
            0.0
        } else if self.jitter_secs == 0.0 {
            self.base_secs
        } else {
            self.base_secs + rng.gen::<f64>() * self.jitter_secs
        }
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LatencyModel::new(-1.0, 0.0).is_none());
        assert!(LatencyModel::new(0.0, -1.0).is_none());
        assert!(LatencyModel::new(f64::NAN, 0.0).is_none());
        assert!(LatencyModel::new(f64::INFINITY, 0.0).is_none());
    }

    #[test]
    fn zero_model_is_free() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LatencyModel::NONE.is_zero());
        for _ in 0..10 {
            assert_eq!(LatencyModel::NONE.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn samples_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = LatencyModel::new(1.5, 2.0).unwrap();
        for _ in 0..1000 {
            let d = l.sample(&mut rng);
            assert!((1.5..3.5).contains(&d), "d={d}");
        }
    }

    #[test]
    fn fixed_latency_without_jitter() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = LatencyModel::new(0.75, 0.0).unwrap();
        assert_eq!(l.sample(&mut rng), 0.75);
    }
}
