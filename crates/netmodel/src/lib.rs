//! Environment substrate (the paper's *environmental factors*).
//!
//! Worm probes do not teleport: they traverse a network whose topology,
//! policy, and reliability shape what arrives where. This crate models the
//! three environmental factor classes the paper identifies:
//!
//! * **Network topology** — [`nat`]: NAT realms and RFC 1918 private
//!   address space, which break bidirectional reachability and (combined
//!   with CodeRedII's local preference) leak probe floods into public
//!   `192/8`.
//! * **Routing & filtering policy** — [`filtering`]: ordered deny rules
//!   over (source, destination, service), modelling enterprise egress
//!   filters and upstream provider blocks.
//! * **Failures & misconfiguration** — [`loss`]: steady-state Bernoulli
//!   packet loss, plus [`fault`]: a deterministic schedule of transient
//!   failures (sensor outages, upstream blackholes, flapping filters,
//!   degraded-path windows).
//!
//! [`Environment::route`] composes all three into a single verdict for
//! each probe, which is the only entry point the simulator needs.
//!
//! # Examples
//!
//! ```
//! use hotspots_ipspace::Ip;
//! use hotspots_netmodel::{Delivery, Environment, Locus, Service};
//! use rand::SeedableRng;
//!
//! let env = Environment::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let verdict = env.route(
//!     Locus::Public(Ip::from_octets(198, 51, 100, 1)),
//!     Ip::from_octets(203, 0, 113, 9),
//!     Service::CODERED_HTTP,
//!     0.0,
//!     &mut rng,
//! );
//! assert_eq!(verdict, Delivery::Public(Ip::from_octets(203, 0, 113, 9)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod environment;
pub mod fault;
pub mod filtering;
pub mod latency;
mod ledger;
pub mod loss;
pub mod nat;
pub mod orgs;
mod service;

pub use environment::{Delivery, DropReason, Environment, Locus};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultView, FaultWindow};
pub use filtering::{FilterRule, FilterTable};
pub use latency::LatencyModel;
pub use ledger::DeliveryLedger;
pub use loss::LossModel;
pub use nat::{NatRealm, RealmId};
pub use orgs::{OrgKind, OrgRegistry, Organization};
pub use service::{Proto, Service};
