//! Transport services worm probes target.

use std::fmt;

/// Transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Proto {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
        })
    }
}

/// A `(protocol, port)` pair — the granularity real filters (and the
/// paper's upstream Slammer block) operate at.
///
/// # Examples
///
/// ```
/// use hotspots_netmodel::Service;
///
/// assert_eq!(Service::SLAMMER_SQL.to_string(), "udp/1434");
/// assert_eq!(Service::BLASTER_RPC.port(), 135);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Service {
    proto: Proto,
    port: u16,
}

impl Service {
    /// TCP/80 — CodeRed & CodeRedII (IIS).
    pub const CODERED_HTTP: Service = Service::new(Proto::Tcp, 80);
    /// TCP/135 — Blaster (MS RPC DCOM).
    pub const BLASTER_RPC: Service = Service::new(Proto::Tcp, 135);
    /// UDP/1434 — Slammer (SQL Server Resolution).
    pub const SLAMMER_SQL: Service = Service::new(Proto::Udp, 1434);
    /// TCP/445 — bots exploiting LSASS/workstation service.
    pub const BOT_SMB: Service = Service::new(Proto::Tcp, 445);

    /// Creates a service.
    pub const fn new(proto: Proto, port: u16) -> Service {
        Service { proto, port }
    }

    /// The protocol.
    pub const fn proto(self) -> Proto {
        self.proto
    }

    /// The port number.
    pub const fn port(self) -> u16 {
        self.port
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.proto, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_worm_lore() {
        assert_eq!(Service::CODERED_HTTP, Service::new(Proto::Tcp, 80));
        assert_eq!(Service::BLASTER_RPC, Service::new(Proto::Tcp, 135));
        assert_eq!(Service::SLAMMER_SQL, Service::new(Proto::Udp, 1434));
    }

    #[test]
    fn display_format() {
        assert_eq!(Service::new(Proto::Tcp, 8080).to_string(), "tcp/8080");
    }

    #[test]
    fn ordering_and_hash_derivable() {
        let mut v = [
            Service::SLAMMER_SQL,
            Service::CODERED_HTTP,
            Service::BLASTER_RPC,
        ];
        v.sort();
        assert_eq!(v[0], Service::CODERED_HTTP);
    }
}
