//! NAT realms and private address space.
//!
//! A NAT realm is an island of RFC 1918 space behind one public gateway:
//! hosts inside can reach each other and can send *outbound* probes (which
//! appear to come from the gateway), but unsolicited inbound probes from
//! the public Internet cannot reach them. This asymmetry is the paper's
//! "continuing loss of bi-directional connectivity".

use std::fmt;

use hotspots_ipspace::{special, Ip, Prefix};

/// Identifier of a NAT realm within an [`Environment`](crate::Environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RealmId(pub u32);

impl fmt::Display for RealmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "realm#{}", self.0)
    }
}

/// One NAT island: a private prefix translated behind a public gateway
/// address.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_netmodel::NatRealm;
///
/// let realm = NatRealm::home_192_168(Ip::from_octets(203, 0, 113, 1)).unwrap();
/// assert!(realm.contains(Ip::from_octets(192, 168, 44, 5)));
/// assert_eq!(realm.gateway(), Ip::from_octets(203, 0, 113, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NatRealm {
    private_prefix: Prefix,
    gateway: Ip,
}

/// Errors constructing a [`NatRealm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatRealmError {
    /// The realm prefix must be RFC 1918 private space.
    NotPrivate(Prefix),
    /// The gateway must be a globally routable public address.
    GatewayNotPublic(Ip),
}

impl fmt::Display for NatRealmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NatRealmError::NotPrivate(p) => {
                write!(f, "realm prefix {p} is not RFC 1918 private space")
            }
            NatRealmError::GatewayNotPublic(ip) => {
                write!(f, "gateway {ip} is not globally routable")
            }
        }
    }
}

impl std::error::Error for NatRealmError {}

impl NatRealm {
    /// Creates a realm over `private_prefix` (must lie inside RFC 1918
    /// space) behind public `gateway`.
    ///
    /// # Errors
    ///
    /// See [`NatRealmError`].
    pub fn new(private_prefix: Prefix, gateway: Ip) -> Result<NatRealm, NatRealmError> {
        let inside_private = special::PRIVATE_RANGES
            .iter()
            .any(|r| r.contains_prefix(private_prefix));
        if !inside_private {
            return Err(NatRealmError::NotPrivate(private_prefix));
        }
        if !special::is_globally_routable(gateway) {
            return Err(NatRealmError::GatewayNotPublic(gateway));
        }
        Ok(NatRealm {
            private_prefix,
            gateway,
        })
    }

    /// The canonical consumer-NAT realm: all of `192.168.0.0/16` — the
    /// configuration whose interaction with CodeRedII produces the
    /// paper's M-block hotspot.
    pub fn home_192_168(gateway: Ip) -> Result<NatRealm, NatRealmError> {
        NatRealm::new(special::PRIVATE_192, gateway)
    }

    /// The realm's private prefix.
    pub fn private_prefix(&self) -> Prefix {
        self.private_prefix
    }

    /// The public gateway address outbound probes appear from.
    pub fn gateway(&self) -> Ip {
        self.gateway
    }

    /// Returns `true` if `ip` is inside this realm's private space.
    pub fn contains(&self, ip: Ip) -> bool {
        self.private_prefix.contains(ip)
    }
}

impl fmt::Display for NatRealm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nat[{} ⇄ {}]", self.private_prefix, self.gateway)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_public_prefix() {
        let err = NatRealm::new(
            "8.8.0.0/16".parse().unwrap(),
            Ip::from_octets(198, 51, 100, 1),
        )
        .unwrap_err();
        assert!(matches!(err, NatRealmError::NotPrivate(_)));
    }

    #[test]
    fn rejects_private_gateway() {
        let err = NatRealm::new(
            "192.168.0.0/16".parse().unwrap(),
            Ip::from_octets(10, 0, 0, 1),
        )
        .unwrap_err();
        assert!(matches!(err, NatRealmError::GatewayNotPublic(_)));
    }

    #[test]
    fn accepts_sub_prefixes_of_private_ranges() {
        let realm = NatRealm::new(
            "10.5.0.0/16".parse().unwrap(),
            Ip::from_octets(198, 51, 100, 2),
        )
        .unwrap();
        assert!(realm.contains(Ip::from_octets(10, 5, 3, 4)));
        assert!(!realm.contains(Ip::from_octets(10, 6, 0, 0)));
    }

    #[test]
    fn home_realm_covers_192_168() {
        let realm = NatRealm::home_192_168(Ip::from_octets(203, 0, 113, 7)).unwrap();
        assert!(realm.contains(Ip::from_octets(192, 168, 255, 255)));
        assert!(!realm.contains(Ip::from_octets(192, 169, 0, 0)));
    }
}
