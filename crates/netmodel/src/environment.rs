//! The composed network environment: one verdict per probe.

use std::fmt;

use hotspots_ipspace::{special, Ip};
use rand::Rng;

use crate::fault::FaultPlan;
use crate::filtering::FilterTable;
use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::nat::{NatRealm, RealmId};
use crate::service::Service;

/// Where a host sits in the topology: directly on the public Internet, or
/// inside a NAT realm with a private address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Locus {
    /// A host with a globally routable address.
    Public(Ip),
    /// A host with a private address inside a NAT realm.
    Private {
        /// The realm the host lives in.
        realm: RealmId,
        /// The host's RFC 1918 address within the realm.
        ip: Ip,
    },
}

impl Locus {
    /// The address this host's *outbound* packets carry on the public
    /// Internet (its own address, or its realm gateway).
    pub fn public_source(&self, env: &Environment) -> Ip {
        match *self {
            Locus::Public(ip) => ip,
            Locus::Private { realm, .. } => env.realm(realm).gateway(),
        }
    }

    /// The address local peers see (private address inside a realm).
    pub fn local_address(&self) -> Ip {
        match *self {
            Locus::Public(ip) | Locus::Private { ip, .. } => ip,
        }
    }
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Public(ip) => write!(f, "{ip}"),
            Locus::Private { realm, ip } => write!(f, "{ip}@{realm}"),
        }
    }
}

/// Why a probe was dropped.
///
/// `Ord` so drop tallies can live in ordered maps (report output must
/// iterate deterministically — lint rule D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DropReason {
    /// Destination not routable from the source (private space from
    /// outside its realm, loopback, multicast, reserved, 0/8).
    UnroutableDestination,
    /// Dropped by a source-keyed (enterprise egress) filter rule.
    EgressFiltered,
    /// Dropped by a destination-keyed (upstream/ingress) filter rule.
    IngressFiltered,
    /// Lost to network failure.
    PacketLoss,
    /// Consumed by a scheduled sensor/telescope outage
    /// ([`FaultKind::SensorOutage`](crate::FaultKind::SensorOutage)):
    /// the destination block is dark.
    SensorOutage,
    /// Discarded by a scheduled upstream blackhole event
    /// ([`FaultKind::Blackhole`](crate::FaultKind::Blackhole)).
    UpstreamBlackhole,
    /// Dropped by a flapping filter rule in its on-phase
    /// ([`FaultKind::FilterFlap`](crate::FaultKind::FilterFlap)).
    FilterFlap,
    /// Lost to a scheduled degraded-path window
    /// ([`FaultKind::DegradedLoss`](crate::FaultKind::DegradedLoss)),
    /// over and above base packet loss.
    DegradedLoss,
}

impl DropReason {
    /// Every reason, in a fixed order (ledger/report column order).
    /// Fault verdict classes are appended so pre-fault indices — and the
    /// reports keyed on them — stay stable.
    pub const ALL: [DropReason; 8] = [
        DropReason::UnroutableDestination,
        DropReason::EgressFiltered,
        DropReason::IngressFiltered,
        DropReason::PacketLoss,
        DropReason::SensorOutage,
        DropReason::UpstreamBlackhole,
        DropReason::FilterFlap,
        DropReason::DegradedLoss,
    ];

    /// A stable `snake_case` label for machine-readable output (JSONL
    /// run reports); [`fmt::Display`] stays human-oriented.
    pub fn snake_label(self) -> &'static str {
        match self {
            DropReason::UnroutableDestination => "unroutable_destination",
            DropReason::EgressFiltered => "egress_filtered",
            DropReason::IngressFiltered => "ingress_filtered",
            DropReason::PacketLoss => "packet_loss",
            DropReason::SensorOutage => "sensor_outage",
            DropReason::UpstreamBlackhole => "upstream_blackhole",
            DropReason::FilterFlap => "filter_flap",
            DropReason::DegradedLoss => "degraded_loss",
        }
    }

    /// The reason's index into [`DropReason::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::UnroutableDestination => "unroutable destination",
            DropReason::EgressFiltered => "egress filtered",
            DropReason::IngressFiltered => "ingress filtered",
            DropReason::PacketLoss => "packet loss",
            DropReason::SensorOutage => "sensor outage",
            DropReason::UpstreamBlackhole => "upstream blackhole",
            DropReason::FilterFlap => "filter flap",
            DropReason::DegradedLoss => "degraded loss",
        })
    }
}

/// The outcome of routing one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Delivery {
    /// Delivered to a public destination address.
    Public(Ip),
    /// Delivered locally inside a NAT realm (source and destination share
    /// the realm).
    Local {
        /// The shared realm.
        realm: RealmId,
        /// The private destination address.
        ip: Ip,
    },
    /// Dropped en route.
    Dropped(DropReason),
}

/// The network environment: NAT realms + filter policy + loss + faults.
///
/// This is the single interface the simulator uses: every probe goes
/// through [`Environment::route`], which composes all three environmental
/// factor classes into a [`Delivery`] verdict.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_netmodel::{Delivery, DropReason, Environment, Locus, NatRealm, Service};
/// use rand::SeedableRng;
///
/// let mut env = Environment::new();
/// let realm = env.add_realm(NatRealm::home_192_168(Ip::from_octets(203, 0, 113, 1)).unwrap());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///
/// // Inside the realm: a NATed host reaches a private neighbor.
/// let inside = Locus::Private { realm, ip: Ip::from_octets(192, 168, 0, 2) };
/// let v = env.route(inside, Ip::from_octets(192, 168, 9, 9), Service::CODERED_HTTP, 0.0, &mut rng);
/// assert_eq!(v, Delivery::Local { realm, ip: Ip::from_octets(192, 168, 9, 9) });
///
/// // From the public Internet, private space is unreachable.
/// let outside = Locus::Public(Ip::from_octets(8, 8, 8, 8));
/// let v = env.route(outside, Ip::from_octets(192, 168, 9, 9), Service::CODERED_HTTP, 0.0, &mut rng);
/// assert_eq!(v, Delivery::Dropped(DropReason::UnroutableDestination));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Environment {
    realms: Vec<NatRealm>,
    filters: FilterTable,
    loss: LossModel,
    latency: LatencyModel,
    faults: FaultPlan,
}

impl Environment {
    /// An environment with no realms, no filters, and no loss — the
    /// idealized Internet of the simple epidemic model.
    pub fn new() -> Environment {
        Environment::default()
    }

    /// Registers a NAT realm, returning its id.
    pub fn add_realm(&mut self, realm: NatRealm) -> RealmId {
        let id = RealmId(u32::try_from(self.realms.len()).expect("fewer than 2^32 realms")); // hotspots-lint: allow(panic-path) reason="realm count is bounded far below 2^32"
        self.realms.push(realm);
        id
    }

    /// Looks up a realm.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this environment's
    /// [`Environment::add_realm`].
    pub fn realm(&self, id: RealmId) -> &NatRealm {
        &self.realms[id.0 as usize]
    }

    /// Number of registered realms.
    pub fn realm_count(&self) -> usize {
        self.realms.len()
    }

    /// Mutable access to the filter table.
    pub fn filters_mut(&mut self) -> &mut FilterTable {
        &mut self.filters
    }

    /// The filter table.
    pub fn filters(&self) -> &FilterTable {
        &self.filters
    }

    /// Sets the packet-loss model.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// The packet-loss model.
    pub fn loss(&self) -> LossModel {
        self.loss
    }

    /// Sets the path-latency model (how long a delivered probe takes to
    /// reach — and infect — its destination).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// The path-latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Installs a fault schedule (replacing any previous one).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Routes one probe from `from` toward destination address `to` on
    /// `service` at simulation time `time`, returning where (whether) it
    /// lands.
    ///
    /// Evaluation order models a real path: local/NAT short-circuit →
    /// routability → upstream faults (blackhole, sensor outage) →
    /// egress policy → ingress policy → flapping filters → degraded-path
    /// loss → base loss.
    pub fn route<R: Rng + ?Sized>(
        &self,
        from: Locus,
        to: Ip,
        service: Service,
        time: f64,
        rng: &mut R,
    ) -> Delivery {
        // 1. Private destinations resolve only within the sender's realm.
        if special::is_private(to) {
            if let Locus::Private { realm, .. } = from {
                if self.realm(realm).contains(to) {
                    return Delivery::Local { realm, ip: to };
                }
            }
            return Delivery::Dropped(DropReason::UnroutableDestination);
        }
        // 2. Other non-routable space never leaves the first router.
        if !special::is_globally_routable(to) {
            return Delivery::Dropped(DropReason::UnroutableDestination);
        }
        let public_src = from.public_source(self);
        // 3. Scheduled upstream faults swallow traffic before any border
        // policy sees it.
        let faults = self.faults.view_at(time);
        if !faults.is_inert() {
            if faults.blackholed(public_src, to) {
                return Delivery::Dropped(DropReason::UpstreamBlackhole);
            }
            if faults.outage(to) {
                return Delivery::Dropped(DropReason::SensorOutage);
            }
        }
        // 4./5. Policy, applied to the packet as seen on the public path
        // (NATed sources appear as their gateway).
        if let Some(reason) = self.filters.check(public_src, to, service) {
            return Delivery::Dropped(reason);
        }
        if !faults.is_inert() {
            // 6. Flapping rules act as policy while in their on-phase.
            if faults.flapped(public_src, to, service) {
                return Delivery::Dropped(DropReason::FilterFlap);
            }
            // 7. Degraded paths stack an extra loss draw.
            if let Some(rate) = faults.degraded(public_src, to) {
                if rng.gen::<f64>() < rate {
                    return Delivery::Dropped(DropReason::DegradedLoss);
                }
            }
        }
        // 8. Steady-state failures.
        if self.loss.drops(rng) {
            return Delivery::Dropped(DropReason::PacketLoss);
        }
        Delivery::Public(to)
    }

    /// Routes a batch of probes sharing one source, appending one verdict
    /// per target to `out` and recording every verdict into `ledger` in
    /// the same pass.
    ///
    /// The verdicts — and the RNG draws (one loss draw per probe that
    /// survives routability and policy) — are exactly those of calling
    /// [`Environment::route`] once per target in order, so batch size
    /// never changes a simulation's outcome. The per-sender invariants
    /// (realm membership, public source) are hoisted out of the loop,
    /// which is where the batch form wins over the scalar one.
    #[allow(clippy::too_many_arguments)] // a routing verdict needs the full probe context
    pub fn route_batch<R: Rng + ?Sized>(
        &self,
        from: Locus,
        targets: &[Ip],
        service: Service,
        time: f64,
        rng: &mut R,
        out: &mut Vec<Delivery>,
        ledger: &mut crate::ledger::DeliveryLedger,
    ) {
        out.reserve(targets.len());
        let sender_realm = match from {
            Locus::Private { realm, .. } => Some(realm),
            Locus::Public(_) => None,
        };
        let public_src = from.public_source(self);
        // All probes in a batch share one simulation step, so the fault
        // schedule resolves once and its inertness is one hoisted bool,
        // not a per-probe (let alone per-arm) method call.
        let faults = self.faults.view_at(time);
        let faulted = !faults.is_inert();

        // Fast lane: a public sender in a clean environment (no active
        // faults, no filter rules, no loss) can only produce two
        // verdicts — `Public` for globally routable targets, unroutable
        // drops for the rest. That collapses the whole eight-step chain
        // into one branch-free routability test per probe plus a bulk
        // ledger update, and consumes no RNG (matching the scalar path,
        // where `LossModel::drops` short-circuits at rate 0).
        if !faulted
            && sender_realm.is_none()
            && self.filters.rules().is_empty()
            && self.loss.rate() <= 0.0
        {
            let mut delivered = 0u64;
            // TrustedLen extend: one reserve for the whole slice, then
            // streaming verdict writes with no per-probe capacity check.
            out.extend(targets.iter().map(|&to| {
                let ok = special::is_globally_routable(to);
                delivered += u64::from(ok);
                if ok {
                    Delivery::Public(to)
                } else {
                    Delivery::Dropped(DropReason::UnroutableDestination)
                }
            }));
            ledger.record_clean_sweep(targets.len() as u64, delivered);
            return;
        }

        for &to in targets {
            let verdict = if special::is_private(to) {
                // 1. Private destinations resolve only within the
                // sender's realm.
                match sender_realm {
                    Some(realm) if self.realm(realm).contains(to) => {
                        Delivery::Local { realm, ip: to }
                    }
                    _ => Delivery::Dropped(DropReason::UnroutableDestination),
                }
            } else if !special::is_globally_routable(to) {
                // 2. Other non-routable space never leaves the first router.
                Delivery::Dropped(DropReason::UnroutableDestination)
            } else if faulted && faults.blackholed(public_src, to) {
                // 3. Scheduled upstream faults precede border policy.
                Delivery::Dropped(DropReason::UpstreamBlackhole)
            } else if faulted && faults.outage(to) {
                Delivery::Dropped(DropReason::SensorOutage)
            } else if let Some(reason) = self.filters.check(public_src, to, service) {
                // 4./5. Policy, applied to the packet as seen on the
                // public path.
                Delivery::Dropped(reason)
            } else if faulted && faults.flapped(public_src, to, service) {
                // 6. Flapping rules act as policy while on.
                Delivery::Dropped(DropReason::FilterFlap)
            } else if faulted
                && faults
                    .degraded(public_src, to)
                    .is_some_and(|rate| rng.gen::<f64>() < rate)
            {
                // 7. Degraded paths stack an extra loss draw.
                Delivery::Dropped(DropReason::DegradedLoss)
            } else if self.loss.drops(rng) {
                // 8. Steady-state failures.
                Delivery::Dropped(DropReason::PacketLoss)
            } else {
                Delivery::Public(to)
            };
            ledger.record(verdict);
            out.push(verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filtering::FilterRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn public_to_public_delivers() {
        let env = Environment::new();
        let v = env.route(
            Locus::Public(ip("1.2.3.4")),
            ip("5.6.7.8"),
            Service::CODERED_HTTP,
            0.0,
            &mut rng(),
        );
        assert_eq!(v, Delivery::Public(ip("5.6.7.8")));
    }

    #[test]
    fn loopback_multicast_reserved_unroutable() {
        let env = Environment::new();
        for dst in ["127.0.0.1", "224.0.0.5", "240.0.0.1", "0.1.2.3"] {
            let v = env.route(
                Locus::Public(ip("1.2.3.4")),
                ip(dst),
                Service::BLASTER_RPC,
                0.0,
                &mut rng(),
            );
            assert_eq!(
                v,
                Delivery::Dropped(DropReason::UnroutableDestination),
                "{dst}"
            );
        }
    }

    #[test]
    fn nat_asymmetry() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(ip("203.0.113.1")).unwrap());
        let inside = Locus::Private {
            realm,
            ip: ip("192.168.0.5"),
        };
        let mut r = rng();
        // inside → inside: local delivery
        assert_eq!(
            env.route(
                inside,
                ip("192.168.200.1"),
                Service::CODERED_HTTP,
                0.0,
                &mut r
            ),
            Delivery::Local {
                realm,
                ip: ip("192.168.200.1")
            }
        );
        // inside → public: delivered (sourced from gateway)
        assert_eq!(
            env.route(inside, ip("8.8.8.8"), Service::CODERED_HTTP, 0.0, &mut r),
            Delivery::Public(ip("8.8.8.8"))
        );
        // outside → private: unroutable
        assert_eq!(
            env.route(
                Locus::Public(ip("8.8.8.8")),
                ip("192.168.0.5"),
                Service::CODERED_HTTP,
                0.0,
                &mut r
            ),
            Delivery::Dropped(DropReason::UnroutableDestination)
        );
    }

    #[test]
    fn natted_host_cannot_reach_other_realms_private_space() {
        let mut env = Environment::new();
        let realm_a = env
            .add_realm(NatRealm::new("10.0.0.0/16".parse().unwrap(), ip("198.51.100.1")).unwrap());
        let _realm_b = env
            .add_realm(NatRealm::new("10.1.0.0/16".parse().unwrap(), ip("198.51.100.2")).unwrap());
        let inside_a = Locus::Private {
            realm: realm_a,
            ip: ip("10.0.0.9"),
        };
        // 10.1.x.x is private but not in realm A → unroutable from A
        assert_eq!(
            env.route(inside_a, ip("10.1.0.9"), Service::BOT_SMB, 0.0, &mut rng()),
            Delivery::Dropped(DropReason::UnroutableDestination)
        );
    }

    #[test]
    fn egress_filter_applies_to_gateway_source() {
        let mut env = Environment::new();
        let realm = env
            .add_realm(NatRealm::new("192.168.0.0/16".parse().unwrap(), ip("131.5.0.1")).unwrap());
        env.filters_mut()
            .push(FilterRule::egress("131.5.0.0/16".parse().unwrap(), None));
        // NATed host's outbound probes carry the gateway source → filtered
        let inside = Locus::Private {
            realm,
            ip: ip("192.168.1.1"),
        };
        assert_eq!(
            env.route(inside, ip("9.9.9.9"), Service::BLASTER_RPC, 0.0, &mut rng()),
            Delivery::Dropped(DropReason::EgressFiltered)
        );
    }

    #[test]
    fn ingress_filter_is_service_specific() {
        let mut env = Environment::new();
        env.filters_mut().push(FilterRule::ingress(
            "192.40.16.0/22".parse().unwrap(),
            Some(Service::SLAMMER_SQL),
        ));
        let src = Locus::Public(ip("7.7.7.7"));
        let mut r = rng();
        assert_eq!(
            env.route(src, ip("192.40.17.1"), Service::SLAMMER_SQL, 0.0, &mut r),
            Delivery::Dropped(DropReason::IngressFiltered)
        );
        assert_eq!(
            env.route(src, ip("192.40.17.1"), Service::CODERED_HTTP, 0.0, &mut r),
            Delivery::Public(ip("192.40.17.1"))
        );
    }

    #[test]
    fn faults_produce_their_own_verdict_classes() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultWindow};
        let mut env = Environment::new();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::new(
            FaultKind::Blackhole {
                prefix: "12.0.0.0/8".parse().unwrap(),
            },
            FaultWindow::new(10.0, 20.0),
        ));
        plan.push(FaultEvent::new(
            FaultKind::SensorOutage {
                block: "66.66.0.0/16".parse().unwrap(),
            },
            FaultWindow::new(10.0, 20.0),
        ));
        plan.push(FaultEvent::new(
            FaultKind::FilterFlap {
                rule: FilterRule::ingress("77.0.0.0/8".parse().unwrap(), None),
                period: 10.0,
                duty: 0.5,
            },
            FaultWindow::new(10.0, 20.0),
        ));
        plan.push(FaultEvent::new(
            FaultKind::DegradedLoss {
                prefix: "88.0.0.0/8".parse().unwrap(),
                rate: 1.0,
            },
            FaultWindow::new(10.0, 20.0),
        ));
        env.set_faults(plan);
        let src = Locus::Public(ip("1.2.3.4"));
        let mut r = rng();
        // inside the window, each fault files under its own class
        assert_eq!(
            env.route(src, ip("12.5.5.5"), Service::BOT_SMB, 15.0, &mut r),
            Delivery::Dropped(DropReason::UpstreamBlackhole)
        );
        assert_eq!(
            env.route(src, ip("66.66.5.5"), Service::BOT_SMB, 15.0, &mut r),
            Delivery::Dropped(DropReason::SensorOutage)
        );
        assert_eq!(
            env.route(src, ip("77.5.5.5"), Service::BOT_SMB, 12.0, &mut r),
            Delivery::Dropped(DropReason::FilterFlap)
        );
        assert_eq!(
            env.route(src, ip("88.5.5.5"), Service::BOT_SMB, 15.0, &mut r),
            Delivery::Dropped(DropReason::DegradedLoss)
        );
        // blackholed sources are swallowed too
        assert_eq!(
            env.route(
                Locus::Public(ip("12.5.5.5")),
                ip("8.8.8.8"),
                Service::BOT_SMB,
                15.0,
                &mut r
            ),
            Delivery::Dropped(DropReason::UpstreamBlackhole)
        );
        // outside the window, the same probes deliver
        for dst in ["12.5.5.5", "66.66.5.5", "77.5.5.5", "88.5.5.5"] {
            assert_eq!(
                env.route(src, ip(dst), Service::BOT_SMB, 25.0, &mut r),
                Delivery::Public(ip(dst)),
                "{dst}"
            );
        }
        // flap off-phase: second half of the period passes
        assert_eq!(
            env.route(src, ip("77.5.5.5"), Service::BOT_SMB, 17.0, &mut r),
            Delivery::Public(ip("77.5.5.5"))
        );
    }

    #[test]
    fn loss_drops_with_reason() {
        let mut env = Environment::new();
        env.set_loss(LossModel::new(1.0).unwrap());
        assert_eq!(
            env.route(
                Locus::Public(ip("1.1.1.1")),
                ip("2.2.2.2"),
                Service::BOT_SMB,
                0.0,
                &mut rng()
            ),
            Delivery::Dropped(DropReason::PacketLoss)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn route_verdicts_are_internally_consistent(src in any::<u32>(), dst in any::<u32>()) {
                let mut env = Environment::new();
                let realm = env.add_realm(
                    NatRealm::home_192_168(Ip::from_octets(203, 0, 113, 1)).unwrap(),
                );
                let mut rng = StdRng::seed_from_u64(0);
                let dst = Ip::new(dst);
                for from in [
                    Locus::Public(Ip::new(src)),
                    Locus::Private { realm, ip: Ip::from_octets(192, 168, 0, 7) },
                ] {
                    match env.route(from, dst, Service::BOT_SMB, 0.0, &mut rng) {
                        Delivery::Public(ip) => {
                            prop_assert_eq!(ip, dst);
                            prop_assert!(hotspots_ipspace::special::is_globally_routable(ip));
                        }
                        Delivery::Local { realm: r, ip } => {
                            let from_is_private = matches!(from, Locus::Private { .. });
                            prop_assert_eq!(ip, dst);
                            prop_assert!(hotspots_ipspace::special::is_private(ip));
                            prop_assert!(env.realm(r).contains(ip));
                            prop_assert!(from_is_private);
                        }
                        Delivery::Dropped(_) => {}
                    }
                }
            }

            #[test]
            fn route_batch_matches_scalar_route(
                src in any::<u32>(),
                dsts in proptest::collection::vec(any::<u32>(), 0..64),
                loss_pct in 0u32..=100,
                time in 0.0f64..40.0,
            ) {
                use crate::fault::{FaultEvent, FaultKind, FaultWindow};
                let loss = f64::from(loss_pct) / 100.0;
                // A lossy, filtered, NATed, faulted environment: every
                // verdict arm is reachable, and the loss draws must line
                // up exactly.
                let mut env = Environment::new();
                let realm = env.add_realm(
                    NatRealm::home_192_168(Ip::from_octets(203, 0, 113, 1)).unwrap(),
                );
                env.filters_mut().push(FilterRule::ingress(
                    "64.0.0.0/4".parse().unwrap(),
                    Some(Service::BOT_SMB),
                ));
                env.set_loss(LossModel::new(loss).unwrap());
                let mut faults = crate::fault::FaultPlan::new();
                faults.push(FaultEvent::new(
                    FaultKind::Blackhole { prefix: "32.0.0.0/6".parse().unwrap() },
                    FaultWindow::new(10.0, 20.0),
                ));
                faults.push(FaultEvent::new(
                    FaultKind::SensorOutage { block: "128.0.0.0/3".parse().unwrap() },
                    FaultWindow::new(15.0, 30.0),
                ));
                faults.push(FaultEvent::new(
                    FaultKind::FilterFlap {
                        rule: FilterRule::ingress("96.0.0.0/5".parse().unwrap(), None),
                        period: 4.0,
                        duty: 0.5,
                    },
                    FaultWindow::new(0.0, 40.0),
                ));
                faults.push(FaultEvent::new(
                    FaultKind::DegradedLoss {
                        prefix: "192.0.0.0/4".parse().unwrap(),
                        rate: 0.5,
                    },
                    FaultWindow::new(5.0, 35.0),
                ));
                env.set_faults(faults);
                let targets: Vec<Ip> = dsts.iter().copied().map(Ip::new).collect();
                for from in [
                    Locus::Public(Ip::new(src)),
                    Locus::Private { realm, ip: Ip::from_octets(192, 168, 0, 7) },
                ] {
                    let mut scalar_rng = StdRng::seed_from_u64(9);
                    let mut batch_rng = StdRng::seed_from_u64(9);
                    let mut scalar_ledger = crate::ledger::DeliveryLedger::new();
                    let scalar: Vec<Delivery> = targets
                        .iter()
                        .map(|&to| {
                            let v = env.route(from, to, Service::BOT_SMB, time, &mut scalar_rng);
                            scalar_ledger.record(v);
                            v
                        })
                        .collect();
                    let mut batch = Vec::new();
                    let mut batch_ledger = crate::ledger::DeliveryLedger::new();
                    env.route_batch(
                        from,
                        &targets,
                        Service::BOT_SMB,
                        time,
                        &mut batch_rng,
                        &mut batch,
                        &mut batch_ledger,
                    );
                    prop_assert_eq!(&batch, &scalar);
                    prop_assert_eq!(batch_ledger, scalar_ledger);
                    // identical rng consumption: both streams are at the
                    // same point afterwards
                    prop_assert_eq!(
                        rand::Rng::gen::<u64>(&mut scalar_rng),
                        rand::Rng::gen::<u64>(&mut batch_rng)
                    );
                }
            }

            #[test]
            fn route_batch_fast_lane_matches_scalar_route(
                src in any::<u32>(),
                dsts in proptest::collection::vec(any::<u32>(), 0..128),
            ) {
                // The clean-environment fast lane (public sender, no
                // faults/filters/loss) must agree with the scalar router
                // verdict-for-verdict and in the ledger, and like the
                // scalar path it must consume no RNG.
                let env = Environment::new();
                let from = Locus::Public(Ip::new(src));
                let targets: Vec<Ip> = dsts.iter().copied().map(Ip::new).collect();
                let mut scalar_rng = StdRng::seed_from_u64(4);
                let mut batch_rng = StdRng::seed_from_u64(4);
                let mut scalar_ledger = crate::ledger::DeliveryLedger::new();
                let scalar: Vec<Delivery> = targets
                    .iter()
                    .map(|&to| {
                        let v = env.route(from, to, Service::SLAMMER_SQL, 0.0, &mut scalar_rng);
                        scalar_ledger.record(v);
                        v
                    })
                    .collect();
                let mut batch = Vec::new();
                let mut batch_ledger = crate::ledger::DeliveryLedger::new();
                env.route_batch(
                    from,
                    &targets,
                    Service::SLAMMER_SQL,
                    0.0,
                    &mut batch_rng,
                    &mut batch,
                    &mut batch_ledger,
                );
                prop_assert_eq!(&batch, &scalar);
                prop_assert_eq!(batch_ledger, scalar_ledger);
                prop_assert_eq!(
                    rand::Rng::gen::<u64>(&mut scalar_rng),
                    rand::Rng::gen::<u64>(&mut batch_rng)
                );
            }

            #[test]
            fn lossless_unfiltered_routing_is_deterministic(src in any::<u32>(), dst in any::<u32>()) {
                let env = Environment::new();
                let mut r1 = StdRng::seed_from_u64(1);
                let mut r2 = StdRng::seed_from_u64(2);
                let from = Locus::Public(Ip::new(src));
                let a = env.route(from, Ip::new(dst), Service::CODERED_HTTP, 0.0, &mut r1);
                let b = env.route(from, Ip::new(dst), Service::CODERED_HTTP, 0.0, &mut r2);
                prop_assert_eq!(a, b, "no stochastic element should remain");
            }
        }
    }

    #[test]
    fn locus_public_source_resolves_gateway() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(ip("203.0.113.1")).unwrap());
        let l = Locus::Private {
            realm,
            ip: ip("192.168.0.2"),
        };
        assert_eq!(l.public_source(&env), ip("203.0.113.1"));
        assert_eq!(l.local_address(), ip("192.168.0.2"));
        let p = Locus::Public(ip("5.5.5.5"));
        assert_eq!(p.public_source(&env), ip("5.5.5.5"));
    }
}
