//! Organization registry: who owns which address space, and who filters.
//!
//! Table 2 of the paper compares worm infections visible from Fortune-100
//! enterprise allocations (≈ zero, despite huge networks) against top
//! broadband providers (tens of thousands). The explanation is egress
//! filtering at the enterprise border. The real ARIN allocations are
//! proprietary inputs; [`OrgRegistry::synthetic_table2`] builds a
//! structurally equivalent registry.

use std::fmt;

use hotspots_ipspace::{Ip, Prefix};

use crate::filtering::{FilterRule, FilterTable};

/// The kind of organization, which determines its default filtering
/// posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OrgKind {
    /// A large enterprise (Fortune-100 style): egress-filtered border.
    Enterprise,
    /// A broadband/consumer ISP: no outgoing filtering.
    Broadband,
    /// An academic network: mostly open (the paper's bot-capture /15).
    Academic,
}

impl fmt::Display for OrgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrgKind::Enterprise => "enterprise",
            OrgKind::Broadband => "broadband",
            OrgKind::Academic => "academic",
        })
    }
}

/// An organization and its address allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Organization {
    name: String,
    kind: OrgKind,
    prefixes: Vec<Prefix>,
    egress_filtered: bool,
}

impl Organization {
    /// Creates an organization; enterprises default to egress-filtered,
    /// everyone else to open.
    ///
    /// # Panics
    ///
    /// Panics if `prefixes` is empty.
    pub fn new(name: impl Into<String>, kind: OrgKind, prefixes: Vec<Prefix>) -> Organization {
        assert!(
            !prefixes.is_empty(),
            "organization needs at least one prefix"
        );
        Organization {
            name: name.into(),
            kind,
            prefixes,
            egress_filtered: matches!(kind, OrgKind::Enterprise),
        }
    }

    /// Overrides the egress-filtering posture.
    pub fn with_egress_filtered(mut self, filtered: bool) -> Organization {
        self.egress_filtered = filtered;
        self
    }

    /// The organization's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The organization kind.
    pub fn kind(&self) -> OrgKind {
        self.kind
    }

    /// The allocated prefixes.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// Whether outgoing worm probes are filtered at the border.
    pub fn egress_filtered(&self) -> bool {
        self.egress_filtered
    }

    /// Total allocated addresses.
    pub fn address_count(&self) -> u64 {
        self.prefixes.iter().map(|p| p.size()).sum()
    }

    /// Returns `true` if `ip` belongs to this organization.
    pub fn owns(&self, ip: Ip) -> bool {
        self.prefixes.iter().any(|p| p.contains(ip))
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} addrs{})",
            self.name,
            self.kind,
            self.address_count(),
            if self.egress_filtered {
                ", egress-filtered"
            } else {
                ""
            }
        )
    }
}

/// A registry of organizations with address→owner lookup.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_netmodel::OrgRegistry;
///
/// let reg = OrgRegistry::synthetic_table2();
/// let owner = reg.owner(Ip::from_octets(24, 10, 0, 1)).unwrap();
/// assert_eq!(owner.name(), "ISP-A");
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrgRegistry {
    orgs: Vec<Organization>,
}

impl OrgRegistry {
    /// Creates an empty registry.
    pub fn new() -> OrgRegistry {
        OrgRegistry::default()
    }

    /// Adds an organization.
    ///
    /// # Panics
    ///
    /// Panics if any of its prefixes overlaps an existing organization's
    /// allocation.
    pub fn add(&mut self, org: Organization) {
        for existing in &self.orgs {
            for a in existing.prefixes() {
                for b in org.prefixes() {
                    assert!(
                        !a.overlaps(*b),
                        "allocation {b} of {} overlaps {a} of {}",
                        org.name(),
                        existing.name()
                    );
                }
            }
        }
        self.orgs.push(org);
    }

    /// The organizations, in insertion order.
    pub fn orgs(&self) -> &[Organization] {
        &self.orgs
    }

    /// Finds the owner of `ip`, if any.
    pub fn owner(&self, ip: Ip) -> Option<&Organization> {
        self.orgs.iter().find(|o| o.owns(ip))
    }

    /// Builds the egress deny rules implied by the registry's filtered
    /// organizations (ready to push into an
    /// [`Environment`](crate::Environment)).
    pub fn egress_rules(&self) -> FilterTable {
        self.orgs
            .iter()
            .filter(|o| o.egress_filtered())
            .flat_map(|o| o.prefixes().iter().map(|p| FilterRule::egress(*p, None)))
            .collect()
    }

    /// The synthetic Table 2 registry: three Fortune-100-style enterprises
    /// (egress-filtered) and three broadband ISPs (open), with allocation
    /// sizes echoing the paper's structure (enterprises hold hundreds of
    /// thousands of addresses; broadband ISPs hold millions).
    pub fn synthetic_table2() -> OrgRegistry {
        fn p(s: &str) -> Prefix {
            s.parse().expect("static prefixes are valid") // hotspots-lint: allow(panic-path) reason="static prefixes are valid"
        }
        let mut reg = OrgRegistry::new();
        reg.add(Organization::new(
            "Corp-Banking",
            OrgKind::Enterprise,
            vec![p("55.0.0.0/14"), p("137.200.0.0/16")],
        ));
        reg.add(Organization::new(
            "Corp-Media",
            OrgKind::Enterprise,
            vec![p("56.64.0.0/14"), p("146.90.0.0/16")],
        ));
        reg.add(Organization::new(
            "Corp-Logistics",
            OrgKind::Enterprise,
            vec![p("57.128.0.0/14"), p("155.44.0.0/16")],
        ));
        reg.add(Organization::new(
            "ISP-A",
            OrgKind::Broadband,
            vec![p("24.0.0.0/12"), p("68.32.0.0/11")],
        ));
        reg.add(Organization::new(
            "ISP-B",
            OrgKind::Broadband,
            vec![p("65.96.0.0/11"), p("71.128.0.0/12")],
        ));
        reg.add(Organization::new(
            "ISP-C",
            OrgKind::Broadband,
            vec![p("82.64.0.0/11"), p("90.192.0.0/12")],
        ));
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn owner_lookup() {
        let mut reg = OrgRegistry::new();
        reg.add(Organization::new(
            "X",
            OrgKind::Academic,
            vec![p("141.0.0.0/15")],
        ));
        assert_eq!(
            reg.owner(Ip::from_octets(141, 1, 2, 3)).unwrap().name(),
            "X"
        );
        assert!(reg.owner(Ip::from_octets(142, 0, 0, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn add_rejects_overlapping_allocations() {
        let mut reg = OrgRegistry::new();
        reg.add(Organization::new(
            "A",
            OrgKind::Broadband,
            vec![p("10.0.0.0/8")],
        ));
        reg.add(Organization::new(
            "B",
            OrgKind::Broadband,
            vec![p("10.1.0.0/16")],
        ));
    }

    #[test]
    #[should_panic(expected = "at least one prefix")]
    fn org_needs_prefixes() {
        let _ = Organization::new("empty", OrgKind::Enterprise, vec![]);
    }

    #[test]
    fn enterprise_defaults_filtered_broadband_open() {
        let e = Organization::new("E", OrgKind::Enterprise, vec![p("55.0.0.0/14")]);
        let b = Organization::new("B", OrgKind::Broadband, vec![p("24.0.0.0/12")]);
        assert!(e.egress_filtered());
        assert!(!b.egress_filtered());
        let exceptional = e.clone().with_egress_filtered(false);
        assert!(!exceptional.egress_filtered());
    }

    #[test]
    fn synthetic_table2_structure() {
        let reg = OrgRegistry::synthetic_table2();
        assert_eq!(reg.orgs().len(), 6);
        let enterprises: Vec<&Organization> = reg
            .orgs()
            .iter()
            .filter(|o| o.kind() == OrgKind::Enterprise)
            .collect();
        let isps: Vec<&Organization> = reg
            .orgs()
            .iter()
            .filter(|o| o.kind() == OrgKind::Broadband)
            .collect();
        assert_eq!(enterprises.len(), 3);
        assert_eq!(isps.len(), 3);
        assert!(enterprises.iter().all(|o| o.egress_filtered()));
        assert!(isps.iter().all(|o| !o.egress_filtered()));
        // ISPs hold much more space than enterprises, like the paper's
        // broadband providers
        let ent_total: u64 = enterprises.iter().map(|o| o.address_count()).sum();
        let isp_total: u64 = isps.iter().map(|o| o.address_count()).sum();
        assert!(isp_total > 5 * ent_total);
    }

    #[test]
    fn egress_rules_cover_filtered_orgs_only() {
        let reg = OrgRegistry::synthetic_table2();
        let rules = reg.egress_rules();
        // 3 enterprises × 2 prefixes
        assert_eq!(rules.rules().len(), 6);
        let banking = Ip::from_octets(55, 1, 2, 3);
        let isp = Ip::from_octets(24, 1, 2, 3);
        let dst = Ip::from_octets(198, 51, 100, 1);
        assert!(rules
            .check(banking, dst, crate::Service::CODERED_HTTP)
            .is_some());
        assert!(rules
            .check(isp, dst, crate::Service::CODERED_HTTP)
            .is_none());
    }
}
