//! Routing and filtering policy.
//!
//! The paper's two filtering case studies:
//!
//! * the **M block** saw zero Slammer traffic "due to policy blocking the
//!   worm deployed at its upstream provider" — an *ingress* rule keyed on
//!   destination and service;
//! * **Fortune-100 enterprises** showed almost no outward sign of internal
//!   infections — *egress* rules keyed on source.

use std::fmt;

use hotspots_ipspace::{Ip, Prefix};

use crate::environment::DropReason;
use crate::service::Service;

/// One deny rule. A rule matches a probe when *all* of its populated
/// selectors match (`None` = wildcard). The table is deny-only with a
/// default-allow policy, like a typical border ACL distilled to the parts
/// that matter for worm traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilterRule {
    /// Match on source prefix (`None` = any source).
    pub src: Option<Prefix>,
    /// Match on destination prefix (`None` = any destination).
    pub dst: Option<Prefix>,
    /// Match on service (`None` = any service).
    pub service: Option<Service>,
    /// The reason reported when this rule drops a probe
    /// ([`DropReason::EgressFiltered`] or [`DropReason::IngressFiltered`]).
    pub reason: DropReason,
}

impl FilterRule {
    /// An enterprise egress filter: drop worm probes *leaving* `org`
    /// toward anywhere, for the given service (or all services).
    pub fn egress(org: Prefix, service: Option<Service>) -> FilterRule {
        FilterRule {
            src: Some(org),
            dst: None,
            service,
            reason: DropReason::EgressFiltered,
        }
    }

    /// An upstream-provider ingress block: drop probes *toward* `dst` for
    /// the given service (the M-block Slammer block is
    /// `FilterRule::ingress(m_prefix, Some(Service::SLAMMER_SQL))`).
    pub fn ingress(dst: Prefix, service: Option<Service>) -> FilterRule {
        FilterRule {
            src: None,
            dst: Some(dst),
            service,
            reason: DropReason::IngressFiltered,
        }
    }

    /// Returns `true` if this rule matches the probe.
    pub fn matches(&self, src: Ip, dst: Ip, service: Service) -> bool {
        self.src.is_none_or(|p| p.contains(src))
            && self.dst.is_none_or(|p| p.contains(dst))
            && self.service.is_none_or(|s| s == service)
    }
}

impl fmt::Display for FilterRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deny src={} dst={} svc={} ({:?})",
            self.src.map_or_else(|| "any".to_owned(), |p| p.to_string()),
            self.dst.map_or_else(|| "any".to_owned(), |p| p.to_string()),
            self.service
                .map_or_else(|| "any".to_owned(), |s| s.to_string()),
            self.reason,
        )
    }
}

/// An ordered list of deny rules with default allow.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_netmodel::{DropReason, FilterRule, FilterTable, Service};
///
/// let mut table = FilterTable::new();
/// table.push(FilterRule::ingress(
///     "192.40.16.0/22".parse().unwrap(),
///     Some(Service::SLAMMER_SQL),
/// ));
/// // Slammer toward the M block: dropped
/// let verdict = table.check(
///     Ip::from_octets(1, 2, 3, 4),
///     Ip::from_octets(192, 40, 17, 9),
///     Service::SLAMMER_SQL,
/// );
/// assert_eq!(verdict, Some(DropReason::IngressFiltered));
/// // CodeRedII toward the same block: allowed
/// let verdict = table.check(
///     Ip::from_octets(1, 2, 3, 4),
///     Ip::from_octets(192, 40, 17, 9),
///     Service::CODERED_HTTP,
/// );
/// assert_eq!(verdict, None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilterTable {
    rules: Vec<FilterRule>,
}

impl FilterTable {
    /// Creates an empty (allow-everything) table.
    pub fn new() -> FilterTable {
        FilterTable { rules: Vec::new() }
    }

    /// Appends a deny rule (evaluated in insertion order, first match
    /// wins).
    pub fn push(&mut self, rule: FilterRule) {
        self.rules.push(rule);
    }

    /// The rules in evaluation order.
    pub fn rules(&self) -> &[FilterRule] {
        &self.rules
    }

    /// Checks a probe; returns the first matching rule's drop reason, or
    /// `None` if the probe passes.
    pub fn check(&self, src: Ip, dst: Ip, service: Service) -> Option<DropReason> {
        self.rules
            .iter()
            .find(|r| r.matches(src, dst, service))
            .map(|r| r.reason)
    }
}

impl FromIterator<FilterRule> for FilterTable {
    fn from_iter<I: IntoIterator<Item = FilterRule>>(iter: I) -> FilterTable {
        FilterTable {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table_allows_everything() {
        let t = FilterTable::new();
        assert_eq!(
            t.check(ip("1.1.1.1"), ip("2.2.2.2"), Service::SLAMMER_SQL),
            None
        );
    }

    #[test]
    fn egress_rule_keys_on_source() {
        let mut t = FilterTable::new();
        t.push(FilterRule::egress("131.0.0.0/8".parse().unwrap(), None));
        assert_eq!(
            t.check(ip("131.5.5.5"), ip("8.8.8.8"), Service::BLASTER_RPC),
            Some(DropReason::EgressFiltered)
        );
        assert_eq!(
            t.check(ip("132.5.5.5"), ip("8.8.8.8"), Service::BLASTER_RPC),
            None
        );
    }

    #[test]
    fn service_selector_restricts_match() {
        let mut t = FilterTable::new();
        t.push(FilterRule::ingress(
            "192.40.16.0/22".parse().unwrap(),
            Some(Service::SLAMMER_SQL),
        ));
        assert!(t
            .check(ip("9.9.9.9"), ip("192.40.19.255"), Service::SLAMMER_SQL)
            .is_some());
        assert!(t
            .check(ip("9.9.9.9"), ip("192.40.19.255"), Service::CODERED_HTTP)
            .is_none());
        assert!(t
            .check(ip("9.9.9.9"), ip("192.40.20.0"), Service::SLAMMER_SQL)
            .is_none());
    }

    #[test]
    fn first_match_wins() {
        let mut t = FilterTable::new();
        t.push(FilterRule::ingress("10.0.0.0/8".parse().unwrap(), None));
        t.push(FilterRule::egress("0.0.0.0/0".parse().unwrap(), None));
        assert_eq!(
            t.check(ip("1.1.1.1"), ip("10.2.3.4"), Service::BOT_SMB),
            Some(DropReason::IngressFiltered)
        );
        assert_eq!(
            t.check(ip("1.1.1.1"), ip("11.2.3.4"), Service::BOT_SMB),
            Some(DropReason::EgressFiltered)
        );
    }

    #[test]
    fn from_iterator_builds_table() {
        let t: FilterTable = [FilterRule::egress("10.0.0.0/8".parse().unwrap(), None)]
            .into_iter()
            .collect();
        assert_eq!(t.rules().len(), 1);
    }
}
