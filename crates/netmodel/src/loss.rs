//! Packet loss: network failures and misconfiguration as a probability.

use rand::Rng;

/// A Bernoulli packet-loss model.
///
/// The paper's "network failures and misconfigurations" factor reduces the
/// probability that an infection packet reaches its destination; the
/// aggregate effect over many independent paths is well modelled by an
/// i.i.d. drop probability (congestion-coupled loss, such as Slammer
/// melting its own links, can be modelled by raising the rate during an
/// outbreak — see the simulator's failure-injection hooks).
///
/// # Examples
///
/// ```
/// use hotspots_netmodel::LossModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(!LossModel::NONE.drops(&mut rng));
/// let lossy = LossModel::new(1.0).unwrap();
/// assert!(lossy.drops(&mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LossModel {
    rate: f64,
}

impl LossModel {
    /// A perfectly reliable network.
    pub const NONE: LossModel = LossModel { rate: 0.0 };

    /// Creates a model dropping each probe independently with probability
    /// `rate`.
    ///
    /// Returns `None` unless `0.0 <= rate <= 1.0` and `rate` is finite.
    pub fn new(rate: f64) -> Option<LossModel> {
        if rate.is_finite() && (0.0..=1.0).contains(&rate) {
            Some(LossModel { rate })
        } else {
            None
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples whether one probe is dropped.
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.rate <= 0.0 {
            false
        } else if self.rate >= 1.0 {
            true
        } else {
            rng.gen::<f64>() < self.rate
        }
    }
}

impl Default for LossModel {
    fn default() -> LossModel {
        LossModel::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_rates() {
        assert!(LossModel::new(-0.1).is_none());
        assert!(LossModel::new(1.1).is_none());
        assert!(LossModel::new(f64::NAN).is_none());
        assert!(LossModel::new(f64::INFINITY).is_none());
    }

    #[test]
    fn extremes_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!LossModel::NONE.drops(&mut rng));
            assert!(LossModel::new(1.0).unwrap().drops(&mut rng));
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LossModel::new(0.3).unwrap();
        let n = 100_000;
        let drops = (0..n).filter(|_| model.drops(&mut rng)).count();
        let observed = drops as f64 / f64::from(n);
        assert!((observed - 0.3).abs() < 0.01, "observed {observed}");
    }
}
