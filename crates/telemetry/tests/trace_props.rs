//! Property tests for the trace sink: span bookkeeping must be total
//! (no op sequence panics), well-nested open/close pairs always
//! balance, and both exporters produce valid, deterministic output
//! whose only run-to-run variation is the timing fields.

use std::time::Duration;

use proptest::prelude::*;

use hotspots_telemetry::{json, TraceSink};

/// Replays an op sequence: 0 = open, 1 = close innermost, anything
/// else = leaf. Returns the sink with every remaining span closed.
fn replay(ops: &[u8], durs: &[u64]) -> TraceSink {
    let mut t = TraceSink::new();
    let mut stack = Vec::new();
    let mut step = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        let dur = Duration::from_micros(durs.get(i).copied().unwrap_or(1));
        match op {
            0 => stack.push(t.open("phase", step, (i % 7) as u32, (i % 3) as u32)),
            1 => {
                if let Some(token) = stack.pop() {
                    t.close(token, dur);
                }
                step += 1;
            }
            _ => t.leaf("leaf", step, (i % 5) as u32, 0, dur),
        }
    }
    while let Some(token) = stack.pop() {
        t.close(token, Duration::from_micros(1));
    }
    t
}

/// Masks the timing payloads (`"ts":N`, `"dur":N`) so deterministic
/// bytes can be compared across drives with different durations.
fn mask_timing(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        if let Some(key) = ["\"ts\":", "\"dur\":"]
            .iter()
            .find(|k| rest.starts_with(**k))
        {
            out.push_str(key);
            out.push('#');
            i += key.len();
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char); // exporter output is ASCII
            i += 1;
        }
    }
    out
}

proptest! {
    #[test]
    fn well_nested_open_close_always_balances(
        ops in proptest::collection::vec(0u8..3, 0..200),
        durs in proptest::collection::vec(0u64..10_000, 0..200),
    ) {
        let t = replay(&ops, &durs);
        prop_assert!(t.is_balanced(), "LIFO closes must balance");
        prop_assert_eq!(t.open_spans(), 0);
        prop_assert_eq!(t.mismatched_closes(), 0);
        // Parents always precede children and depths are consistent.
        for (i, span) in t.spans().iter().enumerate() {
            if let Some(p) = span.parent {
                prop_assert!((p as usize) < i);
                prop_assert_eq!(span.depth, t.spans()[p as usize].depth + 1);
            } else {
                prop_assert_eq!(span.depth, 0);
            }
        }
    }

    #[test]
    fn exporters_are_total_and_valid(
        ops in proptest::collection::vec(0u8..3, 0..120),
        durs in proptest::collection::vec(0u64..100_000, 0..120),
    ) {
        let t = replay(&ops, &durs);
        let chrome = t.to_chrome_trace();
        prop_assert!(json::parse(&chrome).is_ok(), "chrome trace must parse");
        let folded = t.to_collapsed();
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("path weight");
            prop_assert!(!path.is_empty());
            prop_assert!(weight.parse::<u64>().is_ok(), "bad weight {weight:?}");
        }
    }

    #[test]
    fn span_ids_and_masked_exports_are_duration_independent(
        ops in proptest::collection::vec(0u8..3, 0..120),
        durs_a in proptest::collection::vec(0u64..100_000, 0..120),
        durs_b in proptest::collection::vec(0u64..100_000, 0..120),
    ) {
        // Same control flow, different wall clocks: everything but the
        // timing fields must be bit-identical.
        let a = replay(&ops, &durs_a);
        let b = replay(&ops, &durs_b);
        let shape = |t: &TraceSink| t
            .spans()
            .iter()
            .map(|s| (s.id, s.name, s.step, s.shard, s.track, s.depth, s.parent))
            .collect::<Vec<_>>();
        prop_assert_eq!(shape(&a), shape(&b));
        prop_assert_eq!(mask_timing(&a.to_chrome_trace()), mask_timing(&b.to_chrome_trace()));
        let paths = |t: &TraceSink| t
            .to_collapsed()
            .lines()
            .map(|l| l.rsplit_once(' ').expect("path weight").0.to_owned())
            .collect::<Vec<_>>();
        prop_assert_eq!(paths(&a), paths(&b));
    }

    #[test]
    fn out_of_order_closes_never_panic(
        picks in proptest::collection::vec((0u8..3, 0usize..8), 0..150),
    ) {
        let mut t = TraceSink::new();
        let mut open = Vec::new();
        for (i, &(op, at)) in picks.iter().enumerate() {
            match op {
                0 => open.push(t.open("phase", i as u64, 0, 0)),
                1 if !open.is_empty() => {
                    // Close an arbitrary (possibly non-innermost) span.
                    let token = open.remove(at % open.len());
                    t.close(token, Duration::from_micros(3));
                }
                _ => t.leaf("leaf", i as u64, 0, 0, Duration::from_micros(1)),
            }
        }
        // Whatever the order, the sink stays total and exportable.
        let _ = t.to_chrome_trace();
        let _ = t.to_collapsed();
        prop_assert!(t.is_balanced() || t.mismatched_closes() > 0 || t.open_spans() > 0);
    }
}
