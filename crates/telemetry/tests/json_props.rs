//! Round-trip properties for the hand-rolled JSON writer/parser pair.
//!
//! The escaper promises that `parse` recovers the exact source string
//! from `write_str` output — including C0 control characters, quoting
//! hazards, and non-BMP scalars, which travel as UTF-16 surrogate
//! pairs rather than raw supplementary-plane bytes. These properties
//! pin that contract over arbitrary Unicode (PR 10 parser bugfix).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hotspots_telemetry::json::{self, Json};

/// An arbitrary Unicode string biased toward escaper corner cases:
/// printable ASCII, C0 controls, quote/backslash hazards, BMP scalars,
/// and non-BMP scalars (surrogate-pair territory).
fn arb_unicode(rng: &mut StdRng) -> String {
    let hazards = ['"', '\\', '/', '\n', '\t', '\r', '{', '}', ':'];
    let len = rng.gen_range(0usize..48);
    (0..len)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => char::from(rng.gen_range(0x20u8..0x7f)),
            1 => char::from_u32(rng.gen_range(0u32..0x20)).unwrap_or('\u{1f}'),
            2 => hazards[rng.gen_range(0..hazards.len())],
            3 => loop {
                // BMP, re-rolling the surrogate gap D800-DFFF
                if let Some(c) = char::from_u32(rng.gen_range(0x80u32..0x1_0000)) {
                    break c;
                }
            },
            _ => char::from_u32(rng.gen_range(0x1_0000u32..=0x10_FFFF)).unwrap_or('\u{10000}'),
        })
        .collect()
}

proptest! {
    /// parse ∘ write_str is the identity over arbitrary Unicode, and
    /// the wire form stays inside the BMP (non-BMP scalars travel as
    /// surrogate-pair escapes, never raw).
    #[test]
    fn write_str_round_trips_arbitrary_unicode(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let s = arb_unicode(&mut rng);
            let mut wire = String::new();
            json::write_str(&mut wire, &s);
            prop_assert!(
                wire.chars().all(|c| (0x20..=0xFFFF).contains(&(c as u32))),
                "raw non-BMP or C0 control in wire form for {s:?}: {wire:?}"
            );
            let parsed = json::parse(&wire)
                .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{wire:?}")))?;
            match parsed {
                Json::Str(back) => prop_assert_eq!(&back, &s),
                other => return Err(TestCaseError::fail(format!("expected string, got {other:?}"))),
            }
        }
    }

    /// The same property through an object wrapper, exercising the
    /// key-string path as well as the value path.
    #[test]
    fn object_keys_and_values_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
        let key = arb_unicode(&mut rng);
        let val = arb_unicode(&mut rng);
        let mut wire = String::from("{");
        json::write_str(&mut wire, &key);
        wire.push(':');
        json::write_str(&mut wire, &val);
        wire.push('}');
        let parsed = json::parse(&wire)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{wire:?}")))?;
        let obj = parsed
            .as_obj()
            .ok_or_else(|| TestCaseError::fail("expected object".to_owned()))?;
        prop_assert_eq!(obj.len(), 1);
        prop_assert_eq!(&obj[0].0, &key);
        match &obj[0].1 {
            Json::Str(back) => prop_assert_eq!(back, &val),
            other => return Err(TestCaseError::fail(format!("expected string, got {other:?}"))),
        }
    }
}
