//! Process resident-memory sampling for the benchmark harnesses.
//!
//! `BENCH_engine.json` records the resident set alongside the
//! population store's analytic byte counts so the scale CI job can hold
//! 1M-host runs to a memory ceiling. Only Linux exposes `VmRSS` in
//! `/proc/self/status`; elsewhere the reading is simply absent (the
//! schema field is optional).

/// The process's current resident set in bytes (`VmRSS`), or `None`
/// when the platform doesn't expose `/proc/self/status`.
///
/// # Examples
///
/// ```
/// if let Some(rss) = hotspots_telemetry::resident_bytes() {
///     assert!(rss > 0);
/// }
/// ```
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmrss(&status)
}

/// Extracts `VmRSS` (reported in kB) from `/proc/self/status` text.
fn parse_vmrss(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_lines() {
        let status = "Name:\thotspots\nVmPeak:\t  123456 kB\nVmRSS:\t   98304 kB\nThreads:\t1\n";
        assert_eq!(parse_vmrss(status), Some(98_304 * 1024));
        assert_eq!(parse_vmrss("Name:\thotspots\n"), None);
        assert_eq!(parse_vmrss("VmRSS:\tgarbage kB\n"), None);
    }

    #[test]
    fn reads_own_process_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = resident_bytes().expect("linux exposes /proc/self/status");
            assert!(rss > 1024, "resident set {rss} implausibly small");
        }
    }
}
