//! Observability core for the hotspots engine: counters, log-bucketed
//! histograms, phase timers, pluggable event sinks, and end-of-run
//! reports.
//!
//! Design rules (see `DESIGN.md`, "Observability"):
//!
//! * **Dependency-free.** This crate sits underneath the probe hot
//!   path; it pulls in nothing, and its JSON emission is hand-rolled
//!   with a stable field order so run reports diff cleanly.
//! * **Zero cost when off.** [`NullSink`] is a unit struct whose
//!   `emit` is an empty inline function; an observer parameterized
//!   over it compiles to plain counter increments. The engine's phase
//!   timing lives behind the `telemetry` cargo feature of
//!   `hotspots-sim` and does not exist in the default build.
//! * **Aggregate per probe, event per transition.** Per-probe work is
//!   counter arithmetic only; [`Sink`] events fire on state changes
//!   (infections, run summaries), which are bounded by the population,
//!   not the probe count.
//!
//! # Examples
//!
//! ```
//! use hotspots_telemetry::{Counter, Histogram, MemorySink, Sink};
//!
//! let mut delivered = Counter::new();
//! let mut latency_us = Histogram::new();
//! for probe in 0..1000u64 {
//!     delivered.incr();
//!     latency_us.record(probe * probe % 977);
//! }
//! assert_eq!(delivered.get(), 1000);
//! assert!(latency_us.quantile_upper_bound(0.5) <= latency_us.max().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
// Timing is this crate's purpose: the workspace-wide clippy.toml ban
// on clock reads (backing hotspots-lint rule D1) stops at its border.
#![allow(clippy::disallowed_methods)]

pub mod bench;
pub mod hash;
pub mod json;
mod memory;
mod metrics;
mod report;
mod sink;
mod trace;

pub use bench::{BenchSummary, MemoryStats, ScalingPoint};
pub use memory::resident_bytes;
pub use metrics::{Counter, Histogram, PhaseTimes, Timer};
pub use report::{EmitError, ReportBuilder, RunReport, RUN_REPORT_ENV};
pub use sink::{Event, JsonlSink, MemorySink, NullSink, Sink, Value};
pub use trace::{stable_span_id, SpanRecord, SpanToken, TraceSink};
