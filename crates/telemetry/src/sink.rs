//! Event sinks: where telemetry events go.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json;

/// A field value on an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter-ish values.
    U64(u64),
    /// Measurements, times, fractions.
    F64(f64),
    /// Identifiers and labels.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One telemetry event: a kind, a simulation timestamp, and ordered
/// fields. Events fire on *state transitions* (infection, quorum, run
/// end), never per probe — per-probe accounting is counters only.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event class, e.g. `"infection"`, `"run_end"`.
    pub kind: &'static str,
    /// Simulation time in seconds.
    pub time: f64,
    /// Ordered fields; order is preserved into JSONL output.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// An event with no fields yet.
    pub fn new(kind: &'static str, time: f64) -> Event {
        Event {
            kind,
            time,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, name: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((name, value.into()));
        self
    }

    /// The event as one JSONL line (no trailing newline): `kind` and
    /// `t` first, then fields in insertion order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"kind\":");
        json::write_str(&mut out, self.kind);
        out.push_str(",\"t\":");
        json::write_f64(&mut out, self.time);
        for (name, value) in &self.fields {
            out.push(',');
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                Value::U64(v) => {
                    out.push_str(&v.to_string());
                }
                Value::F64(v) => json::write_f64(&mut out, *v),
                Value::Str(v) => json::write_str(&mut out, v),
            }
        }
        out.push('}');
        out
    }
}

/// Where events go. Implementations must be cheap to call: the engine
/// may emit one event per infection.
pub trait Sink {
    /// Accepts one event.
    fn emit(&mut self, event: &Event);

    /// Flushes buffered output (no-op for non-buffering sinks).
    fn flush(&mut self) {}
}

/// Discards everything; `emit` is an empty inline function, so a
/// telemetry pipeline parameterized over `NullSink` compiles down to
/// its counters alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _event: &Event) {}
}

/// Buffers events in memory (tests, small runs).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one kind, in emission order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per line to any `io::Write` (file, stdout,
/// `Vec<u8>`), with stable field order for diffability. Write errors
/// are counted, not propagated — telemetry must never kill a run.
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
    lines: u64,
    errors: u64,
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("errors", &self.errors)
            .finish()
    }
}

impl JsonlSink<File> {
    /// Creates (truncates) `path` and writes events there.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink<File>> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: BufWriter::new(out),
            lines: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Failed writes (telemetry swallows I/O errors by design).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the final flush fails.
    pub fn into_inner(self) -> io::Result<W> {
        self.out
            .into_inner()
            .map_err(io::IntoInnerError::into_error)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        let mut line = event.to_jsonl();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(_) => self.errors += 1,
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Fan-out: every event goes to both sinks in order.
impl<A: Sink, B: Sink> Sink for (A, B) {
    fn emit(&mut self, event: &Event) {
        self.0.emit(event);
        self.1.emit(event);
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    fn sample_event() -> Event {
        Event::new("infection", 12.5)
            .field("host", 42u64)
            .field("locus", "public")
            .field("rate", 0.25f64)
    }

    #[test]
    fn event_jsonl_is_stable_and_ordered() {
        let line = sample_event().to_jsonl();
        assert_eq!(
            line,
            r#"{"kind":"infection","t":12.5,"host":42,"locus":"public","rate":0.25}"#
        );
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let event = sample_event();
        let parsed = json::parse(&event.to_jsonl()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("infection"));
        assert_eq!(parsed.get("t").unwrap().as_f64(), Some(12.5));
        assert_eq!(parsed.get("host").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("locus").unwrap().as_str(), Some("public"));
        assert_eq!(parsed.get("rate").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn memory_sink_keeps_order_and_kind_filter() {
        let mut sink = MemorySink::new();
        sink.emit(&Event::new("a", 1.0));
        sink.emit(&Event::new("b", 2.0));
        sink.emit(&Event::new("a", 3.0));
        assert_eq!(sink.events().len(), 3);
        let times: Vec<f64> = sink.of_kind("a").map(|e| e.time).collect();
        assert_eq!(times, [1.0, 3.0]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample_event());
        sink.emit(&Event::new("run_end", 99.0).field("probes", 1_000_000u64));
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.errors(), 0);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(matches!(json::parse(line).unwrap(), Json::Obj(_)));
        }
    }

    #[test]
    fn pair_sink_fans_out() {
        let mut pair = (MemorySink::new(), MemorySink::new());
        pair.emit(&Event::new("x", 0.0));
        assert_eq!(pair.0.events().len(), 1);
        assert_eq!(pair.1.events().len(), 1);
    }
}
