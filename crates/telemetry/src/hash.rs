//! A stable, dependency-free content hasher for memoization keys.
//!
//! The scenario server (DESIGN.md §5i) keys its result cache on the
//! canonical TOML of a spec. The key must be stable across processes,
//! platforms, and releases — `std::hash` deliberately guarantees none
//! of those — so the server uses FNV-1a over the canonical bytes: the
//! classic Fowler–Noll–Vo fold, 64-bit variant, with the published
//! offset basis and prime. It is not collision-resistant against an
//! adversary, but cache entries are verified by re-running their spec
//! (`serve --check`), so a collision corrupts nothing silently.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// # Examples
///
/// ```
/// use hotspots_telemetry::hash::fnv1a_64;
///
/// // published test vectors for the 64-bit variant
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Formats a content hash the way the result store names directories:
/// 16 lowercase hex digits, zero-padded.
#[must_use]
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a [`format_hash`]-formatted hash back to its value.
#[must_use]
pub fn parse_hash(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_vectors() {
        // from the FNV reference test suite
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hash_text_round_trips() {
        for h in [0u64, 1, 0xcbf2_9ce4_8422_2325, u64::MAX] {
            let text = format_hash(h);
            assert_eq!(text.len(), 16);
            assert_eq!(parse_hash(&text), Some(h), "{text}");
        }
        assert_eq!(parse_hash("xyz"), None);
        assert_eq!(parse_hash("00000000000000000"), None); // 17 digits
    }

    #[test]
    fn single_byte_difference_changes_the_hash() {
        let a = fnv1a_64(b"[meta]\nname = \"fig2\"\n");
        let b = fnv1a_64(b"[meta]\nname = \"fig3\"\n");
        assert_ne!(a, b);
    }
}
