//! End-of-run reports: one JSONL line summarizing what a binary did.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::Instant;

use crate::json::{self, Json};

/// Environment variable naming a file to append every emitted
/// [`RunReport`] to (JSONL). Unset: reports go to stdout only.
pub const RUN_REPORT_ENV: &str = "HOTSPOTS_RUN_REPORT";

/// What one experiment binary or example did: config echo, probe
/// accounting, drop breakdown, infection totals, timings.
///
/// The invariant every emitter must uphold (and the integration tests
/// verify): `delivered + Σ dropped = probes_sent`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Emitting program (binary or example name).
    pub binary: String,
    /// Figure/table/scenario the program regenerates.
    pub scenario: String,
    /// Config echo, in insertion order.
    pub config: Vec<(String, String)>,
    /// Vulnerable population size (0 when not engine-driven).
    pub population: u64,
    /// Probes emitted.
    pub probes_sent: u64,
    /// Probes delivered (publicly or locally).
    pub delivered: u64,
    /// Drop breakdown by reason, in insertion order.
    pub dropped: Vec<(String, u64)>,
    /// Hosts infected.
    pub infections: u64,
    /// Simulated seconds covered.
    pub sim_seconds: f64,
    /// Wall-clock seconds the program ran.
    pub wall_seconds: f64,
    /// Slowest engine step in wall seconds (requires the `telemetry`
    /// feature of `hotspots-sim`).
    pub peak_step_seconds: Option<f64>,
    /// Per-phase wall-clock totals in seconds, in insertion order.
    pub phases: Vec<(String, f64)>,
}

impl RunReport {
    /// Total dropped probes (sum of the breakdown).
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().map(|(_, n)| n).sum()
    }

    /// Infections per simulated second (0 for empty runs).
    pub fn infections_per_sec(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.infections as f64 / self.sim_seconds
        } else {
            0.0
        }
    }

    /// `None` if probe accounting balances; otherwise what is off.
    pub fn accounting_error(&self) -> Option<String> {
        let total = self.delivered + self.dropped_total();
        (total != self.probes_sent).then(|| {
            format!(
                "delivered {} + dropped {} != probes_sent {}",
                self.delivered,
                self.dropped_total(),
                self.probes_sent
            )
        })
    }

    /// The report as one JSONL line (no trailing newline), stable
    /// field order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"kind\":\"run_report\",\"binary\":");
        json::write_str(&mut out, &self.binary);
        out.push_str(",\"scenario\":");
        json::write_str(&mut out, &self.scenario);
        out.push_str(",\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            json::write_str(&mut out, v);
        }
        out.push_str("},\"population\":");
        out.push_str(&self.population.to_string());
        out.push_str(",\"probes_sent\":");
        out.push_str(&self.probes_sent.to_string());
        out.push_str(",\"delivered\":");
        out.push_str(&self.delivered.to_string());
        out.push_str(",\"dropped\":{");
        for (i, (reason, n)) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, reason);
            out.push(':');
            out.push_str(&n.to_string());
        }
        out.push_str("},\"dropped_total\":");
        out.push_str(&self.dropped_total().to_string());
        out.push_str(",\"infections\":");
        out.push_str(&self.infections.to_string());
        out.push_str(",\"sim_seconds\":");
        json::write_f64(&mut out, self.sim_seconds);
        out.push_str(",\"infections_per_sec\":");
        json::write_f64(&mut out, self.infections_per_sec());
        out.push_str(",\"wall_seconds\":");
        json::write_f64(&mut out, self.wall_seconds);
        if let Some(peak) = self.peak_step_seconds {
            out.push_str(",\"peak_step_seconds\":");
            json::write_f64(&mut out, peak);
        }
        out.push_str(",\"phases\":{");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            json::write_f64(&mut out, *secs);
        }
        out.push_str("}}");
        out
    }

    /// A copy with the host-timing fields zeroed: `wall_seconds`,
    /// `peak_step_seconds`, and `phases` are the only fields the
    /// determinism contract lets vary between identical runs (the same
    /// set `scripts/check_goldens.sh` masks). The canonical form is
    /// what the scenario server stores and serves, so a cached
    /// response is byte-identical to a fresh one.
    #[must_use]
    pub fn canonicalized(&self) -> RunReport {
        let mut report = self.clone();
        report.wall_seconds = 0.0;
        report.peak_step_seconds = None;
        report.phases.clear();
        report
    }

    /// Parses a report back from its JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not valid JSON or not a
    /// `run_report`.
    pub fn from_jsonl(line: &str) -> Result<RunReport, String> {
        let doc = json::parse(line)?;
        if doc.get("kind").and_then(Json::as_str) != Some("run_report") {
            return Err("not a run_report line".into());
        }
        let str_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {name}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing u64 field {name}"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing f64 field {name}"))
        };
        let str_map = |name: &str| -> Result<Vec<(String, String)>, String> {
            doc.get(name)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("missing object field {name}"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_owned()))
                        .ok_or_else(|| format!("non-string member {name}.{k}"))
                })
                .collect()
        };
        Ok(RunReport {
            binary: str_field("binary")?,
            scenario: str_field("scenario")?,
            config: str_map("config")?,
            population: u64_field("population")?,
            probes_sent: u64_field("probes_sent")?,
            delivered: u64_field("delivered")?,
            dropped: doc
                .get("dropped")
                .and_then(Json::as_obj)
                .ok_or("missing object field dropped")?
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("non-u64 member dropped.{k}"))
                })
                .collect::<Result<_, _>>()?,
            infections: u64_field("infections")?,
            sim_seconds: f64_field("sim_seconds")?,
            wall_seconds: f64_field("wall_seconds")?,
            peak_step_seconds: doc.get("peak_step_seconds").and_then(Json::as_f64),
            phases: doc
                .get("phases")
                .and_then(Json::as_obj)
                .ok_or("missing object field phases")?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("non-number member phases.{k}"))
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Accumulates a [`RunReport`] across one program run; the wall clock
/// starts at construction.
#[derive(Debug)]
pub struct ReportBuilder {
    report: RunReport,
    started: Instant,
}

impl ReportBuilder {
    /// Starts a report (and its wall clock) for `binary` regenerating
    /// `scenario`.
    pub fn new(binary: &str, scenario: &str) -> ReportBuilder {
        ReportBuilder {
            report: RunReport {
                binary: binary.to_owned(),
                scenario: scenario.to_owned(),
                config: Vec::new(),
                population: 0,
                probes_sent: 0,
                delivered: 0,
                dropped: Vec::new(),
                infections: 0,
                sim_seconds: 0.0,
                wall_seconds: 0.0,
                peak_step_seconds: None,
                phases: Vec::new(),
            },
            started: Instant::now(),
        }
    }

    /// Echoes one config knob.
    pub fn config(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.report.config.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds to the population total (sweeps sum their runs).
    pub fn add_population(&mut self, n: u64) -> &mut Self {
        self.report.population += n;
        self
    }

    /// Adds emitted probes.
    pub fn add_probes(&mut self, n: u64) -> &mut Self {
        self.report.probes_sent += n;
        self
    }

    /// Adds delivered probes.
    pub fn add_delivered(&mut self, n: u64) -> &mut Self {
        self.report.delivered += n;
        self
    }

    /// Adds dropped probes under `reason`.
    pub fn add_dropped(&mut self, reason: &str, n: u64) -> &mut Self {
        match self.report.dropped.iter_mut().find(|(r, _)| r == reason) {
            Some((_, total)) => *total += n,
            None => self.report.dropped.push((reason.to_owned(), n)),
        }
        self
    }

    /// Adds infections.
    pub fn add_infections(&mut self, n: u64) -> &mut Self {
        self.report.infections += n;
        self
    }

    /// Adds simulated seconds.
    pub fn add_sim_seconds(&mut self, secs: f64) -> &mut Self {
        self.report.sim_seconds += secs;
        self
    }

    /// Adds per-phase wall seconds under `name`.
    pub fn add_phase_seconds(&mut self, name: &str, secs: f64) -> &mut Self {
        match self.report.phases.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += secs,
            None => self.report.phases.push((name.to_owned(), secs)),
        }
        self
    }

    /// Records a step peak (keeps the max across calls).
    pub fn peak_step_seconds(&mut self, secs: f64) -> &mut Self {
        let peak = self.report.peak_step_seconds.get_or_insert(0.0);
        *peak = peak.max(secs);
        self
    }

    /// Finalizes the report (stamps wall-clock elapsed).
    pub fn build(mut self) -> RunReport {
        self.report.wall_seconds = self.started.elapsed().as_secs_f64();
        self.report
    }

    /// Finalizes, prints the JSONL line to stdout, and — when
    /// [`RUN_REPORT_ENV`] names a file — appends it there too.
    /// I/O problems with that file are reported on stderr, never fatal.
    /// Binaries that should fail loudly on a bad report path use
    /// [`ReportBuilder::try_emit`] instead.
    pub fn emit(self) -> RunReport {
        match self.try_emit() {
            Ok(report) => report,
            Err(e) => {
                eprintln!("run report: cannot append to {}: {}", e.path, e.source);
                *e.report
            }
        }
    }

    /// Like [`ReportBuilder::emit`], but a failed append to the
    /// [`RUN_REPORT_ENV`] file is returned instead of swallowed. The
    /// report line is always printed to stdout first, and the error
    /// carries the finished report.
    ///
    /// # Errors
    ///
    /// Returns an [`EmitError`] naming the report path when the append
    /// fails (unwritable directory, permission denied, …).
    pub fn try_emit(self) -> Result<RunReport, EmitError> {
        let report = self.build();
        let line = report.to_jsonl();
        println!("{line}");
        if let Ok(path) = std::env::var(RUN_REPORT_ENV) {
            if !path.is_empty() {
                let appended = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                if let Err(source) = appended {
                    return Err(EmitError {
                        path,
                        source,
                        report: Box::new(report),
                    });
                }
            }
        }
        Ok(report)
    }
}

/// A run-report append to the [`RUN_REPORT_ENV`] file failed. Carries
/// the finished report so lenient callers can still use it.
#[derive(Debug)]
pub struct EmitError {
    /// The report file that could not be appended to.
    pub path: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
    /// The report that was built (and printed to stdout) anyway
    /// (boxed to keep the `Err` variant small).
    pub report: Box<RunReport>,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot append run report to {}: {}",
            self.path, self.source
        )
    }
}

impl std::error::Error for EmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut b = ReportBuilder::new("fig_test", "Figure 0");
        b.config("scan_rate", 10.0)
            .config("seeds", 25)
            .add_population(5_000)
            .add_probes(1_000)
            .add_delivered(900)
            .add_dropped("unroutable_destination", 60)
            .add_dropped("packet_loss", 40)
            .add_infections(123)
            .add_sim_seconds(50.0)
            .add_phase_seconds("target_gen", 0.25)
            .peak_step_seconds(0.003);
        b.build()
    }

    #[test]
    fn accounting_balances_and_derives() {
        let report = sample();
        assert_eq!(report.dropped_total(), 100);
        assert_eq!(report.accounting_error(), None);
        assert!((report.infections_per_sec() - 123.0 / 50.0).abs() < 1e-12);
        assert!(report.wall_seconds >= 0.0);
    }

    #[test]
    fn imbalance_is_detected() {
        let mut report = sample();
        report.delivered -= 1;
        let err = report.accounting_error().expect("must detect");
        assert!(err.contains("899"), "{err}");
    }

    #[test]
    fn jsonl_round_trips() {
        let report = sample();
        let line = report.to_jsonl();
        assert!(line.starts_with("{\"kind\":\"run_report\","), "{line}");
        let back = RunReport::from_jsonl(&line).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn dropped_and_config_order_is_stable() {
        let line = sample().to_jsonl();
        let unroutable = line.find("unroutable_destination").unwrap();
        let loss = line.find("packet_loss").unwrap();
        assert!(unroutable < loss, "insertion order lost: {line}");
        let scan = line.find("scan_rate").unwrap();
        let seeds = line.find("seeds").unwrap();
        assert!(scan < seeds);
    }

    #[test]
    fn missing_peak_step_is_omitted_and_optional() {
        let mut b = ReportBuilder::new("x", "y");
        b.add_probes(5).add_delivered(5);
        let report = b.build();
        let line = report.to_jsonl();
        assert!(!line.contains("peak_step_seconds"), "{line}");
        let back = RunReport::from_jsonl(&line).unwrap();
        assert_eq!(back.peak_step_seconds, None);
        assert_eq!(back, report);
    }

    #[test]
    fn non_report_lines_are_rejected() {
        assert!(RunReport::from_jsonl("{\"kind\":\"infection\",\"t\":1}").is_err());
        assert!(RunReport::from_jsonl("not json").is_err());
    }
}
