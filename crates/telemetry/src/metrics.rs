//! Counters, histograms, and wall-clock phase timers.

use std::fmt;
use std::time::{Duration, Instant};

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log₂-bucketed histogram of `u64` samples (probe latencies in µs,
/// per-host fan-out, step sizes, …).
///
/// Bucket `i` holds values whose highest set bit is `i` — i.e. value 0
/// goes to bucket 0, values `[2^i, 2^(i+1))` go to bucket `i+1` — so
/// 65 counters cover the whole `u64` domain with ≤ 2× relative error
/// on the upper-bound read-out.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of values landing in `bucket`.
    fn bucket_upper(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// An upper bound for the `q`-quantile (0 ≤ q ≤ 1): the top of the
    /// bucket the quantile falls in, clamped to the observed max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "q={q} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, low to
    /// high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper(i).min(self.max), n))
            .collect()
    }
}

/// A running span: measures wall-clock time from construction to
/// [`Timer::stop`] (or drop-free manual reads via [`Timer::elapsed`]).
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts the span now.
    pub fn start() -> Timer {
        Timer {
            started: Instant::now(),
        }
    }

    /// Wall-clock time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Ends the span, folding its duration into `phases` under `name`.
    pub fn stop(self, phases: &mut PhaseTimes, name: &'static str) -> Duration {
        let elapsed = self.elapsed();
        phases.record(name, elapsed);
        elapsed
    }
}

/// Per-phase wall-clock totals, in first-recorded order (stable for
/// report output).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    phases: Vec<(&'static str, Duration, u64)>,
}

impl PhaseTimes {
    /// No phases yet.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Folds one span of `name` into the totals.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        match self.phases.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, total, spans)) => {
                *total += elapsed;
                *spans += 1;
            }
            None => self.phases.push((name, elapsed, 1)),
        }
    }

    /// Total wall-clock time spent in `name`.
    pub fn total(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _, _)| *n == name)
            .map_or(Duration::ZERO, |(_, total, _)| *total)
    }

    /// Number of spans recorded for `name`.
    pub fn spans(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|(n, _, _)| *n == name)
            .map_or(0, |(_, _, n)| *n)
    }

    /// All phases as `(name, total, span count)`, in first-recorded
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration, u64)> + '_ {
        self.phases.iter().copied()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // 0 | 1 | 2,3 | 4,7 | 8 | 1024 | MAX
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 7);
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (3, 2));
        assert_eq!(buckets[3], (7, 2));
    }

    #[test]
    fn histogram_quantiles_bound_truth() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let median_bound = h.quantile_upper_bound(0.5);
        assert!((500..=1023).contains(&median_bound), "{median_bound}");
        assert_eq!(h.quantile_upper_bound(1.0), 999);
        assert_eq!(h.quantile_upper_bound(0.0), 0);
        assert!(h.mean().unwrap() > 400.0);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn phase_times_accumulate_in_order() {
        let mut phases = PhaseTimes::new();
        phases.record("route", Duration::from_millis(2));
        phases.record("observe", Duration::from_millis(1));
        phases.record("route", Duration::from_millis(3));
        assert_eq!(phases.total("route"), Duration::from_millis(5));
        assert_eq!(phases.spans("route"), 2);
        assert_eq!(phases.total("observe"), Duration::from_millis(1));
        assert_eq!(phases.total("missing"), Duration::ZERO);
        let names: Vec<_> = phases.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, ["route", "observe"]);
    }

    #[test]
    fn timer_records_into_phases() {
        let mut phases = PhaseTimes::new();
        let t = Timer::start();
        std::hint::black_box((0..1000u64).sum::<u64>());
        let d = t.stop(&mut phases, "work");
        assert_eq!(phases.total("work"), d);
        assert_eq!(phases.spans("work"), 1);
    }
}
