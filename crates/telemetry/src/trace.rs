//! Span-based execution tracing: nested spans with per-shard
//! attribution, stable span IDs, and exporters for Chrome
//! `trace_event` JSON and collapsed-stack (flamegraph) text.
//!
//! The sink is a pure data structure: it never reads the clock.
//! Callers open a span, measure the elapsed time themselves (behind
//! whatever feature gate their crate uses), and hand the [`Duration`]
//! to [`TraceSink::close`]. That keeps every clock read at the call
//! site — where lint rule D1 can see its gate — and makes the sink
//! fully deterministic: two traces of the same run differ only in
//! their `dur_micros` timing fields, which consumers mask.
//!
//! # Span model
//!
//! Spans nest (run → step → phase) and carry three coordinates:
//!
//! * `step` — the simulation step the span belongs to,
//! * `shard` — which parallel shard did the work (0 for serial code),
//! * `track` — the export lane (Chrome `tid`): 0 for the serial
//!   spine, `shard + 1` for per-shard phase work.
//!
//! Span IDs are derived from `(phase code, step, shard)` via
//! [`stable_span_id`], so the ID sequence of a run is a pure function
//! of its control flow: bit-identical across repeats, across thread
//! counts, and across machines.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json;

/// One recorded span. `dur_micros` is the only wall-clock-derived
/// field; everything else is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stable ID from [`stable_span_id`] — deterministic, not
    /// guaranteed unique if the same `(name, step, shard)` recurs.
    pub id: u64,
    /// Index of the enclosing span in [`TraceSink::spans`], if any.
    pub parent: Option<u32>,
    /// Phase name (`"run"`, `"step"`, `"target_gen"`, …).
    pub name: &'static str,
    /// Simulation step the span belongs to (0 for the run span).
    pub step: u64,
    /// Shard that did the work; 0 for serial code.
    pub shard: u32,
    /// Export lane (Chrome `tid`): 0 = serial spine, `shard + 1` =
    /// per-shard work.
    pub track: u32,
    /// Nesting depth at open time (run = 0).
    pub depth: u32,
    /// TIMING FIELD — wall-clock span length in microseconds. The one
    /// non-deterministic field; golden tests mask it.
    pub dur_micros: u64,
}

/// Handle returned by [`TraceSink::open`]; spend it on
/// [`TraceSink::close`]. Not `Copy`: one open, one close.
#[derive(Debug)]
#[must_use = "an open span must be closed or the trace is unbalanced"]
pub struct SpanToken {
    idx: u32,
}

/// Derives a stable span ID from a phase code (interned name index),
/// step, and shard: 8 bits of phase, 40 bits of step, 16 bits of
/// shard. Pure arithmetic — the same call sequence always yields the
/// same IDs.
pub fn stable_span_id(phase_code: u32, step: u64, shard: u32) -> u64 {
    (u64::from(phase_code & 0xFF) << 56)
        | ((step & 0xFF_FFFF_FFFF) << 16)
        | u64::from(shard & 0xFFFF)
}

/// Records nested spans for one engine run. See the module docs for
/// the span model and determinism contract.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    names: Vec<&'static str>,
    mismatched_closes: u64,
}

impl TraceSink {
    /// An empty trace.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    fn intern(&mut self, name: &'static str) -> u32 {
        match self.names.iter().position(|n| *n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name);
                (self.names.len() - 1) as u32
            }
        }
    }

    /// Opens a span nested under the currently-open one (if any).
    /// Duration stays 0 until [`TraceSink::close`].
    pub fn open(&mut self, name: &'static str, step: u64, shard: u32, track: u32) -> SpanToken {
        let code = self.intern(name);
        let idx = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            id: stable_span_id(code, step, shard),
            parent: self.stack.last().copied(),
            name,
            step,
            shard,
            track,
            depth: self.stack.len() as u32,
            dur_micros: 0,
        });
        self.stack.push(idx);
        SpanToken { idx }
    }

    /// Closes a span with its measured duration. Out-of-order closes
    /// never panic: the token's span still gets its duration, any
    /// spans left open above it are closed with what they have, and
    /// the mismatch is counted (see
    /// [`TraceSink::mismatched_closes`]).
    pub fn close(&mut self, token: SpanToken, dur: Duration) {
        if let Some(span) = self.spans.get_mut(token.idx as usize) {
            span.dur_micros = dur.as_micros().min(u128::from(u64::MAX)) as u64;
        }
        match self.stack.iter().rposition(|&i| i == token.idx) {
            Some(pos) => {
                if pos != self.stack.len() - 1 {
                    self.mismatched_closes += self.stack.len() as u64 - 1 - pos as u64;
                }
                self.stack.truncate(pos);
            }
            None => self.mismatched_closes += 1,
        }
    }

    /// Records an already-measured span with no children: open +
    /// close in one call.
    pub fn leaf(&mut self, name: &'static str, step: u64, shard: u32, track: u32, dur: Duration) {
        let token = self.open(name, step, shard, track);
        self.close(token, dur);
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans opened but not yet closed.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Closes that did not match the innermost open span.
    pub fn mismatched_closes(&self) -> u64 {
        self.mismatched_closes
    }

    /// True when every open had a matching, properly-nested close.
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty() && self.mismatched_closes == 0
    }

    /// `true` for spans that enclose at least one other span.
    fn has_child(&self) -> Vec<bool> {
        let mut has = vec![false; self.spans.len()];
        for span in &self.spans {
            if let Some(p) = span.parent {
                has[p as usize] = true;
            }
        }
        has
    }

    /// Synthesizes a start timestamp (µs) per span: each track lays
    /// its spans out back-to-back, children aligned to their parent's
    /// start. Purely derived from `dur_micros`, so masking durations
    /// masks these too.
    fn synth_ts(&self, has_child: &[bool]) -> Vec<u64> {
        let mut ts = vec![0u64; self.spans.len()];
        let mut cursor: BTreeMap<u32, u64> = BTreeMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            let lane = cursor.entry(span.track).or_insert(0);
            let parent_ts = span.parent.map_or(0, |p| ts[p as usize]);
            let start = (*lane).max(parent_ts);
            ts[i] = start;
            *lane = if has_child[i] {
                start
            } else {
                start.saturating_add(span.dur_micros)
            };
        }
        ts
    }

    /// The trace as Chrome `trace_event` JSON (load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Key order is
    /// fixed; `ts` and `dur` are the only wall-clock-derived fields.
    pub fn to_chrome_trace(&self) -> String {
        let has_child = self.has_child();
        let ts = self.synth_ts(&has_child);
        let mut out = String::with_capacity(128 * self.spans.len() + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json::write_str(&mut out, span.name);
            out.push_str(",\"cat\":\"engine\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&span.track.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&ts[i].to_string());
            out.push_str(",\"dur\":");
            out.push_str(&span.dur_micros.to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"step\":");
            out.push_str(&span.step.to_string());
            out.push_str(",\"shard\":");
            out.push_str(&span.shard.to_string());
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// The trace as collapsed-stack text (`path count` per line, for
    /// `flamegraph.pl` or <https://speedscope.app>). Weights are each
    /// span's *self* time in µs, aggregated over steps; leaf frames
    /// carry a `#s<shard>` suffix so shard imbalance is visible. Line
    /// order is lexicographic — deterministic modulo the weights.
    pub fn to_collapsed(&self) -> String {
        let has_child = self.has_child();
        let frames: Vec<String> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, span)| {
                if has_child[i] {
                    span.name.to_owned()
                } else {
                    format!("{}#s{}", span.name, span.shard)
                }
            })
            .collect();
        let mut weights: BTreeMap<String, u64> = BTreeMap::new();
        let mut child_sum = vec![0u64; self.spans.len()];
        for span in &self.spans {
            if let Some(p) = span.parent {
                child_sum[p as usize] = child_sum[p as usize].saturating_add(span.dur_micros);
            }
        }
        for (i, span) in self.spans.iter().enumerate() {
            let mut path = frames[i].clone();
            let mut at = span.parent;
            while let Some(p) = at {
                path = format!("{};{}", frames[p as usize], path);
                at = self.spans[p as usize].parent;
            }
            let self_time = span.dur_micros.saturating_sub(child_sum[i]);
            *weights.entry(path).or_insert(0) += self_time;
        }
        let mut out = String::new();
        for (path, weight) in &weights {
            out.push_str(path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    /// Two steps, two shards: the shape the engine emits.
    fn sample_trace() -> TraceSink {
        let mut t = TraceSink::new();
        let run = t.open("run", 0, 0, 0);
        for step in 0..2u64 {
            let s = t.open("step", step, 0, 0);
            for shard in 0..2u32 {
                t.leaf(
                    "target_gen",
                    step,
                    shard,
                    shard + 1,
                    Duration::from_micros(30),
                );
                t.leaf("routing", step, shard, shard + 1, Duration::from_micros(20));
                t.leaf("lookup", step, shard, shard + 1, Duration::from_micros(10));
            }
            t.leaf("observe", step, 0, 0, Duration::from_micros(5));
            t.leaf("merge", step, 0, 0, Duration::from_micros(40));
            t.close(s, Duration::from_micros(150));
        }
        t.close(run, Duration::from_micros(310));
        t
    }

    #[test]
    fn spans_nest_and_balance() {
        let t = sample_trace();
        assert!(t.is_balanced());
        assert_eq!(t.len(), 1 + 2 * (1 + 6 + 2));
        let run = &t.spans()[0];
        assert_eq!((run.name, run.depth, run.parent), ("run", 0, None));
        let step = &t.spans()[1];
        assert_eq!((step.name, step.depth, step.parent), ("step", 1, Some(0)));
        let tg = &t.spans()[2];
        assert_eq!(
            (tg.name, tg.depth, tg.shard, tg.track),
            ("target_gen", 2, 0, 1)
        );
    }

    #[test]
    fn ids_are_stable_across_identical_runs() {
        let a: Vec<u64> = sample_trace().spans().iter().map(|s| s.id).collect();
        let b: Vec<u64> = sample_trace().spans().iter().map(|s| s.id).collect();
        assert_eq!(a, b);
        // Distinct coordinates → distinct IDs within one step.
        let t = sample_trace();
        let step0: Vec<u64> = t
            .spans()
            .iter()
            .filter(|s| s.step == 0)
            .map(|s| s.id)
            .collect();
        let mut dedup = step0.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), step0.len());
    }

    #[test]
    fn stable_id_packs_fields() {
        assert_eq!(stable_span_id(0, 0, 0), 0);
        assert_eq!(stable_span_id(1, 0, 0), 1 << 56);
        assert_eq!(stable_span_id(0, 1, 0), 1 << 16);
        assert_eq!(stable_span_id(0, 0, 1), 1);
        assert_ne!(stable_span_id(2, 7, 1), stable_span_id(2, 7, 2));
    }

    #[test]
    fn mismatched_close_is_counted_not_fatal() {
        let mut t = TraceSink::new();
        let a = t.open("a", 0, 0, 0);
        let _b_leaked = t.open("b", 0, 0, 0);
        // Closing `a` with `b` still open is a mismatch; `b` is
        // force-closed with whatever duration it had.
        t.close(a, Duration::from_micros(10));
        assert_eq!(t.mismatched_closes(), 1);
        assert_eq!(t.open_spans(), 0);
        assert!(!t.is_balanced());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_stable_keys() {
        let text = sample_trace().to_chrome_trace();
        let parsed = json::parse(&text).expect("chrome trace parses");
        let events = parsed.get("traceEvents").expect("traceEvents key");
        let Json::Arr(events) = events else {
            panic!("traceEvents is not an array")
        };
        assert_eq!(events.len(), sample_trace().len());
        for event in events {
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1));
            assert!(event.get("args").and_then(|a| a.get("shard")).is_some());
        }
        // Key order is part of the golden-schema contract.
        let first = text.find("{\"name\":").expect("event start");
        let keys = &text[first..text[first..].find('}').unwrap() + first];
        for pair in [
            "\"name\":",
            "\"cat\":",
            "\"ph\":",
            "\"pid\":",
            "\"tid\":",
            "\"ts\":",
            "\"dur\":",
        ] {
            assert!(keys.contains(pair), "missing {pair} in {keys}");
        }
    }

    #[test]
    fn chrome_trace_timestamps_nest_children_inside_parents() {
        let t = sample_trace();
        let has_child = t.has_child();
        let ts = t.synth_ts(&has_child);
        // Track-0 events are laid out back-to-back inside their parent.
        for (i, span) in t.spans().iter().enumerate() {
            if let Some(p) = span.parent {
                assert!(ts[i] >= ts[p as usize], "child {i} starts before parent");
            }
        }
        // Second step starts after the first step's serial work.
        let steps: Vec<usize> = t
            .spans()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == "step")
            .map(|(i, _)| i)
            .collect();
        assert!(ts[steps[1]] > ts[steps[0]]);
    }

    #[test]
    fn collapsed_output_is_sorted_and_shard_attributed() {
        let text = sample_trace().to_collapsed();
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "collapsed lines must be sorted");
        assert!(text.contains("run;step;target_gen#s0 "));
        assert!(text.contains("run;step;target_gen#s1 "));
        assert!(text.contains("run;step;merge#s0 "));
        // Aggregation: 2 steps × 30µs of shard-0 target_gen.
        assert!(text.contains("run;step;target_gen#s0 60\n"), "{text}");
        // Self time: step = 150 - (30+20+10)*2 - 5 - 40 = −15 → clamps
        // at 0 per step? No: children sum = 165 > 150, clamped to 0.
        assert!(text.contains("run;step 0\n"), "{text}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = TraceSink::new();
        assert!(t.is_empty());
        assert!(t.is_balanced());
        assert!(json::parse(&t.to_chrome_trace()).is_ok());
        assert_eq!(t.to_collapsed(), "");
    }
}
