//! The `BENCH_engine.json` schema: a thread-scaling curve with
//! per-phase breakdowns, shared by the Criterion engine bench and the
//! `hotspots profile --scaling` harness so both write identical files.

use crate::json::{self, Json};

/// One thread count's measurement on the scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker thread count (`threads = 1` is the serial pipeline).
    pub threads: u64,
    /// Probe throughput at this thread count.
    pub probes_per_sec: f64,
    /// Throughput relative to the curve's serial point.
    pub speedup: f64,
    /// Wall seconds per engine phase (`target_gen`, `routing`,
    /// `lookup`, `observe`, `merge`), in engine phase order. Empty
    /// when the measuring build had no `telemetry` feature.
    pub phase_breakdown: Vec<(String, f64)>,
}

/// Population memory accounting for a benchmark run — how many hosts
/// the workload held, which store backed them, and what that cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryStats {
    /// Vulnerable host count.
    pub hosts: u64,
    /// Population store label: `"dense"` or `"compressed"`.
    pub store: String,
    /// Heap bytes held by the population store and its indices.
    pub store_bytes: u64,
    /// What the same population would cost in the dense store (the
    /// compressed-vs-dense ratio is `store_bytes / dense_store_bytes`).
    pub dense_store_bytes: u64,
    /// Process resident set (`VmRSS`) after the run, when the platform
    /// exposes it.
    pub resident_bytes: Option<u64>,
}

/// The whole benchmark file: workload identity, a seed baseline for
/// historical comparison, and the scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Workload name, e.g. `"slammer_5k_hosts_300s"`.
    pub benchmark: String,
    /// Probes emitted by one run of the workload.
    pub probes: u64,
    /// Serial throughput (the `threads = 1` point, duplicated at top
    /// level as the headline number).
    pub serial_probes_per_sec: f64,
    /// Throughput of the pre-optimization seed implementation, carried
    /// forward from file to file so the headline speedup stays
    /// comparable across PRs. `None` when no baseline was ever taken.
    pub seed_probes_per_sec: Option<f64>,
    /// Population memory accounting, when the harness measured it.
    pub memory: Option<MemoryStats>,
    /// The scaling curve, ascending thread counts.
    pub scaling: Vec<ScalingPoint>,
}

impl BenchSummary {
    /// Builds a summary from measured points, deriving speedups from
    /// the serial (threads = 1, else first) point.
    pub fn from_points(
        benchmark: impl Into<String>,
        probes: u64,
        seed_probes_per_sec: Option<f64>,
        mut points: Vec<ScalingPoint>,
    ) -> BenchSummary {
        points.sort_by_key(|p| p.threads);
        let serial = points
            .iter()
            .find(|p| p.threads == 1)
            .or_else(|| points.first())
            .map_or(0.0, |p| p.probes_per_sec);
        for point in &mut points {
            point.speedup = if serial > 0.0 {
                point.probes_per_sec / serial
            } else {
                0.0
            };
        }
        BenchSummary {
            benchmark: benchmark.into(),
            probes,
            serial_probes_per_sec: serial,
            seed_probes_per_sec,
            memory: None,
            scaling: points,
        }
    }

    /// Attaches population memory accounting.
    pub fn with_memory(mut self, memory: MemoryStats) -> BenchSummary {
        self.memory = Some(memory);
        self
    }

    /// Serial speedup over the seed baseline, if one is recorded.
    pub fn serial_speedup_vs_seed(&self) -> Option<f64> {
        self.seed_probes_per_sec
            .filter(|&seed| seed > 0.0)
            .map(|seed| self.serial_probes_per_sec / seed)
    }

    /// The file as JSON with a fixed key order (one line per scaling
    /// point, diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.scaling.len());
        out.push_str("{\"benchmark\":");
        json::write_str(&mut out, &self.benchmark);
        out.push_str(",\"probes\":");
        out.push_str(&self.probes.to_string());
        out.push_str(",\"serial_probes_per_sec\":");
        json::write_f64(&mut out, self.serial_probes_per_sec);
        if let Some(seed) = self.seed_probes_per_sec {
            out.push_str(",\"seed_probes_per_sec\":");
            json::write_f64(&mut out, seed);
            if let Some(speedup) = self.serial_speedup_vs_seed() {
                out.push_str(",\"serial_speedup_vs_seed\":");
                json::write_f64(&mut out, (speedup * 1000.0).round() / 1000.0);
            }
        }
        if let Some(mem) = &self.memory {
            out.push_str(",\"memory\":{\"hosts\":");
            out.push_str(&mem.hosts.to_string());
            out.push_str(",\"store\":");
            json::write_str(&mut out, &mem.store);
            out.push_str(",\"store_bytes\":");
            out.push_str(&mem.store_bytes.to_string());
            out.push_str(",\"dense_store_bytes\":");
            out.push_str(&mem.dense_store_bytes.to_string());
            if let Some(rss) = mem.resident_bytes {
                out.push_str(",\"resident_bytes\":");
                out.push_str(&rss.to_string());
            }
            out.push('}');
        }
        out.push_str(",\"scaling\":[");
        for (i, point) in self.scaling.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"threads\":");
            out.push_str(&point.threads.to_string());
            out.push_str(",\"probes_per_sec\":");
            json::write_f64(&mut out, point.probes_per_sec);
            out.push_str(",\"speedup\":");
            json::write_f64(&mut out, (point.speedup * 1000.0).round() / 1000.0);
            out.push_str(",\"phase_breakdown\":{");
            for (j, (name, secs)) in point.phase_breakdown.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, name);
                out.push(':');
                json::write_f64(&mut out, (secs * 1e6).round() / 1e6);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a file written by [`BenchSummary::to_json`]. Also
    /// tolerates the pre-scaling schema (a bare
    /// `serial_probes_per_sec` with no `scaling` array) so the seed
    /// baseline can be carried forward across the migration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<BenchSummary, String> {
        let root = json::parse(text)?;
        let benchmark = root
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or("missing benchmark")?
            .to_owned();
        let probes = root
            .get("probes")
            .and_then(Json::as_u64)
            .ok_or("missing probes")?;
        let serial = root
            .get("serial_probes_per_sec")
            .and_then(Json::as_f64)
            .ok_or("missing serial_probes_per_sec")?;
        let seed = root.get("seed_probes_per_sec").and_then(Json::as_f64);
        let memory = match root.get("memory") {
            Some(mem) => Some(MemoryStats {
                hosts: mem
                    .get("hosts")
                    .and_then(Json::as_u64)
                    .ok_or("memory missing hosts")?,
                store: mem
                    .get("store")
                    .and_then(Json::as_str)
                    .ok_or("memory missing store")?
                    .to_owned(),
                store_bytes: mem
                    .get("store_bytes")
                    .and_then(Json::as_u64)
                    .ok_or("memory missing store_bytes")?,
                dense_store_bytes: mem
                    .get("dense_store_bytes")
                    .and_then(Json::as_u64)
                    .ok_or("memory missing dense_store_bytes")?,
                resident_bytes: mem.get("resident_bytes").and_then(Json::as_u64),
            }),
            None => None,
        };
        let mut scaling = Vec::new();
        if let Some(Json::Arr(points)) = root.get("scaling") {
            for point in points {
                let threads = point
                    .get("threads")
                    .and_then(Json::as_u64)
                    .ok_or("scaling point missing threads")?;
                let probes_per_sec = point
                    .get("probes_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("scaling point missing probes_per_sec")?;
                let speedup = point.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
                let mut phase_breakdown = Vec::new();
                if let Some(phases) = point.get("phase_breakdown").and_then(Json::as_obj) {
                    for (name, secs) in phases {
                        phase_breakdown
                            .push((name.clone(), secs.as_f64().ok_or("bad phase seconds")?));
                    }
                }
                scaling.push(ScalingPoint {
                    threads,
                    probes_per_sec,
                    speedup,
                    phase_breakdown,
                });
            }
        }
        Ok(BenchSummary {
            benchmark,
            probes,
            serial_probes_per_sec: serial,
            seed_probes_per_sec: seed,
            memory,
            scaling,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSummary {
        BenchSummary::from_points(
            "slammer_5k_hosts_300s",
            15_682_000,
            Some(72_045_308.0),
            vec![
                ScalingPoint {
                    threads: 2,
                    probes_per_sec: 1.1e8,
                    speedup: 0.0,
                    phase_breakdown: vec![
                        ("target_gen".to_owned(), 0.08),
                        ("merge".to_owned(), 0.02),
                    ],
                },
                ScalingPoint {
                    threads: 1,
                    probes_per_sec: 1.3e8,
                    speedup: 0.0,
                    phase_breakdown: vec![("target_gen".to_owned(), 0.1)],
                },
            ],
        )
    }

    #[test]
    fn points_sort_and_derive_speedups() {
        let summary = sample();
        assert_eq!(summary.scaling[0].threads, 1);
        assert_eq!(summary.scaling[0].speedup, 1.0);
        assert_eq!(summary.serial_probes_per_sec, 1.3e8);
        assert!((summary.scaling[1].speedup - 1.1 / 1.3).abs() < 1e-9);
        let vs_seed = summary.serial_speedup_vs_seed().unwrap();
        assert!((vs_seed - 1.3e8 / 72_045_308.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let summary = sample();
        let text = summary.to_json();
        let back = BenchSummary::from_json(&text).unwrap();
        assert_eq!(back.benchmark, summary.benchmark);
        assert_eq!(back.probes, summary.probes);
        assert_eq!(back.scaling.len(), 2);
        assert_eq!(back.scaling[1].phase_breakdown.len(), 2);
        assert_eq!(back.scaling[1].phase_breakdown[1].0, "merge");
    }

    #[test]
    fn reads_pre_scaling_schema_for_baseline_carry_forward() {
        let legacy = r#"{"benchmark": "slammer_5k_hosts_300s", "probes": 15682000,
            "serial_probes_per_sec": 129762756, "seed_probes_per_sec": 72045308,
            "serial_speedup_vs_seed": 1.801, "parallel_threads": 2,
            "parallel_probes_per_sec": 108969090, "parallel_speedup": 0.840}"#;
        let parsed = BenchSummary::from_json(legacy).unwrap();
        assert_eq!(parsed.seed_probes_per_sec, Some(72_045_308.0));
        assert!(parsed.scaling.is_empty());
    }

    #[test]
    fn memory_stats_round_trip() {
        let summary = sample().with_memory(MemoryStats {
            hosts: 1_050_000,
            store: "compressed".to_owned(),
            store_bytes: 1_100_000,
            dense_store_bytes: 45_000_000,
            resident_bytes: Some(80_000_000),
        });
        let text = summary.to_json();
        let back = BenchSummary::from_json(&text).unwrap();
        let mem = back.memory.unwrap();
        assert_eq!(mem.hosts, 1_050_000);
        assert_eq!(mem.store, "compressed");
        assert_eq!(mem.store_bytes, 1_100_000);
        assert_eq!(mem.dense_store_bytes, 45_000_000);
        assert_eq!(mem.resident_bytes, Some(80_000_000));
        // files without the memory block still parse
        assert!(sample().memory.is_none());
        assert!(BenchSummary::from_json(&sample().to_json())
            .unwrap()
            .memory
            .is_none());
    }

    #[test]
    fn key_order_is_stable() {
        let text = sample().to_json();
        let benchmark = text.find("\"benchmark\"").unwrap();
        let probes = text.find("\"probes\"").unwrap();
        let serial = text.find("\"serial_probes_per_sec\"").unwrap();
        let scaling = text.find("\"scaling\"").unwrap();
        assert!(benchmark < probes && probes < serial && serial < scaling);
    }
}
