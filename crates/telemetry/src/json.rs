//! Minimal JSON emission and parsing for run reports and event lines.
//!
//! Hand-rolled on purpose: the telemetry crate is dependency-free, and
//! emission preserves *insertion order* of object fields so two runs of
//! the same binary produce byte-diffable output. The parser accepts
//! standard JSON (it does not require any field order) and is used by
//! round-trip tests and report-consuming tools.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their source text so `u64` counts
/// round-trip without `f64` precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; raw text preserved.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object members, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal.
///
/// Control characters escape as `\u00XX`; scalars above the Basic
/// Multilingual Plane escape as UTF-16 surrogate pairs (U+1F600
/// becomes backslash-uD83D backslash-uDE00)
/// so the emitted line is plain ASCII-compatible JSON that any
/// conforming parser — including [`parse`] — reassembles to the
/// original string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c if (c as u32) > 0xFFFF => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (`null` for non-finite).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parses one JSON document (object, array, or scalar).
///
/// # Errors
///
/// Returns a position-tagged message on malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.chars.is_empty() {
        Ok(value)
    } else {
        Err(format!("trailing input at {}", p.pos))
    }
}

struct Parser {
    chars: VecDeque<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.front(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.pop_front();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            got => Err(format!("expected '{want}' at {} (got {got:?})", self.pos)),
        }
    }

    fn literal(&mut self, rest: &str, value: Json) -> Result<Json, String> {
        for want in rest.chars() {
            self.eat(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.chars.front().copied() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => {
                self.bump();
                self.literal("rue", Json::Bool(true))
            }
            Some('f') => {
                self.bump();
                self.literal("alse", Json::Bool(false))
            }
            Some('n') => {
                self.bump();
                self.literal("ull", Json::Null)
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.chars.front() == Some(&'}') {
            self.bump();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(members)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at {} (got {got:?})",
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.front() == Some(&']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected ',' or ']' at {} (got {got:?})", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => out.push(self.unicode_escape()?),
                    got => return Err(format!("bad escape {got:?} at {}", self.pos)),
                },
                Some(c) => out.push(c),
            }
        }
    }

    /// Four hex digits of a `\u` escape, as a UTF-16 code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            code = code * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("bad \\u digit '{c}'"))?;
        }
        Ok(code)
    }

    /// Decodes one `\u` escape (the `\u` itself already consumed):
    /// a BMP scalar stands alone, a lead surrogate must be followed by
    /// a `\u`-escaped trail surrogate (UTF-16 pair decoding per RFC
    /// 8259 §7), and a lone surrogate of either kind is an error — not
    /// a mangled replacement character.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(format!("lone trail surrogate \\u{hi:04x}"));
        }
        let code = if (0xD800..=0xDBFF).contains(&hi) {
            if !(self.bump() == Some('\\') && self.bump() == Some('u')) {
                return Err(format!(
                    "lone lead surrogate \\u{hi:04x} (expected a \\u-escaped trail surrogate)"
                ));
            }
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(format!(
                    "bad surrogate pair \\u{hi:04x}\\u{lo:04x} (trail not in DC00-DFFF)"
                ));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("bad codepoint {code:#x}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut raw = String::new();
        if self.chars.front() == Some(&'-') {
            raw.extend(self.bump());
        }
        while matches!(
            self.chars.front(),
            Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-')
        ) {
            raw.extend(self.bump());
        }
        raw.parse::<f64>()
            .map_err(|e| format!("bad number '{raw}': {e}"))?;
        Ok(Json::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let parsed = parse(&big.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn nested_structures_parse_in_order() {
        let doc = r#"{"a": 1, "b": {"x": [1, 2, {"deep": null}], "y": "z"}, "c": true}"#;
        let v = parse(doc).unwrap();
        let keys: Vec<_> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(v.get("b").unwrap().get("y").unwrap().as_str(), Some("z"));
        let arr = match v.get("b").unwrap().get("x").unwrap() {
            Json::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 3);
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{263a}";
        let mut out = String::new();
        write_str(&mut out, nasty);
        assert_eq!(parse(&out).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_bmp_scalars_escape_as_surrogate_pairs() {
        let s = "emoji \u{1F600} and gothic \u{10330}";
        let mut out = String::new();
        write_str(&mut out, s);
        assert!(out.is_ascii(), "non-BMP must escape to ASCII: {out}");
        assert!(out.contains("\\ud83d\\ude00"), "got: {out}");
        assert_eq!(parse(&out).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_decode() {
        // uppercase hex, as other emitters produce
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert_eq!(parse("\"\\ud834\\udd1e\"").unwrap().as_str(), Some("𝄞"));
    }

    #[test]
    fn lone_surrogates_are_typed_errors() {
        let lead = parse("\"\\uD800\"").unwrap_err();
        assert!(lead.contains("lone lead surrogate"), "got: {lead}");
        let trail = parse("\"\\uDC00x\"").unwrap_err();
        assert!(trail.contains("lone trail surrogate"), "got: {trail}");
        let pair = parse("\"\\uD800\\u0041\"").unwrap_err();
        assert!(pair.contains("bad surrogate pair"), "got: {pair}");
        // a lead surrogate followed by a raw (unescaped) char
        let raw = parse("\"\\uD800A\"").unwrap_err();
        assert!(raw.contains("lone lead surrogate"), "got: {raw}");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 1.25);
        assert_eq!(out, "1.25");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12x", "{} {}"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }
}
