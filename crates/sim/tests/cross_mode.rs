//! Cross-mode determinism: the staged probe pipeline must produce
//! bit-identical results whether it runs serially (`threads = 1`) or
//! sharded across worker threads — same infection times, same ledger,
//! same observer-visible probe stream.
//!
//! Without the `parallel` cargo feature, `threads > 1` falls back to the
//! serial path and these tests pass trivially; the CI `parallel` job
//! compiles the real sharded path and re-runs them.

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, DeliveryLedger, Environment, LatencyModel, Locus, LossModel};
use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
use hotspots_sim::{
    apply_nat, BlasterWorm, CodeRed2Worm, Engine, HitListWorm, Population, SimConfig, SimObserver,
    SimResult, SlammerWorm, UniformWorm, WormModel,
};
use hotspots_targeting::HitList;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything the engine hands an observer, aggregated, so cross-mode
/// equality covers the observer-visible stream and not just `SimResult`.
#[derive(Default)]
struct EventTally {
    probes: u64,
    publics: u64,
    locals: u64,
    infections: u64,
    batch_calls: u64,
}

impl SimObserver for EventTally {
    fn on_probe(&mut self, _time: f64, _src: Ip, delivery: Delivery) {
        self.probes += 1;
        match delivery {
            Delivery::Public(_) => self.publics += 1,
            Delivery::Local { .. } => self.locals += 1,
            Delivery::Dropped(_) => {}
        }
    }

    fn on_probe_batch(&mut self, time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        self.batch_calls += 1;
        assert_eq!(
            ledger.probes(),
            probes.len() as u64,
            "batch ledger must cover exactly the batch's probes"
        );
        for &(src, delivery) in probes {
            self.on_probe(time, src, delivery);
        }
    }

    fn on_infection(&mut self, _time: f64, _host: usize, _locus: Locus) {
        self.infections += 1;
    }
}

type Setup = fn() -> (Environment, Population, Box<dyn WormModel>, SimConfig);

fn run_with_threads(setup: Setup, threads: usize) -> (SimResult, EventTally) {
    let (env, pop, worm, mut config) = setup();
    config.threads = threads;
    let mut engine = Engine::new(config, pop, env, worm);
    let mut tally = EventTally::default();
    let result = engine.run(&mut tally);
    (result, tally)
}

/// Runs `setup` serially and at 2 and 4 worker threads (plus a
/// more-threads-than-hosts configuration) and asserts every
/// deterministic output is identical.
fn assert_cross_mode_identical(name: &str, setup: Setup) {
    let (base, base_tally) = run_with_threads(setup, 1);
    assert!(base.probes_sent > 0, "{name}: run emitted no probes");
    assert!(
        base_tally.batch_calls > 0,
        "{name}: observer saw no batches"
    );
    let base_curve: Vec<(f64, f64)> = base.infection_curve.iter().collect();

    for threads in [2, 4, 64] {
        let (other, tally) = run_with_threads(setup, threads);
        assert_eq!(
            base.infection_times, other.infection_times,
            "{name}: infection times diverge at {threads} threads"
        );
        assert_eq!(
            base.probes_sent, other.probes_sent,
            "{name}: probe count diverges at {threads} threads"
        );
        assert_eq!(
            base.ledger, other.ledger,
            "{name}: ledger diverges at {threads} threads"
        );
        assert_eq!(base.infected, other.infected, "{name} @ {threads} threads");
        assert_eq!(base.removed, other.removed, "{name} @ {threads} threads");
        assert_eq!(base.elapsed, other.elapsed, "{name} @ {threads} threads");
        let curve: Vec<(f64, f64)> = other.infection_curve.iter().collect();
        assert_eq!(
            base_curve, curve,
            "{name}: infection curve diverges at {threads} threads"
        );
        assert_eq!(
            base_tally.probes, tally.probes,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.publics, tally.publics,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.locals, tally.locals,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.infections, tally.infections,
            "{name} @ {threads} threads"
        );
    }
}

/// A dense population inside one /16 so worms make progress at test
/// scale.
fn dense_population(n: u32) -> Population {
    Population::from_public((0..n).map(|i| Ip::new(0x0b0b_0000 + i)))
}

fn hitlist_worm() -> Box<dyn WormModel> {
    Box::new(HitListWorm::new(
        HitList::new(vec!["11.11.0.0/16".parse().unwrap()]).unwrap(),
    ))
}

#[test]
fn uniform_worm_is_thread_invariant() {
    assert_cross_mode_identical("uniform", || {
        let config = SimConfig {
            scan_rate: 40.0,
            seeds: 8,
            max_time: 40.0,
            stop_at_fraction: None,
            rng_seed: 11,
            ..SimConfig::default()
        };
        (
            Environment::new(),
            dense_population(200),
            Box::new(UniformWorm),
            config,
        )
    });
}

#[test]
fn blaster_worm_is_thread_invariant() {
    assert_cross_mode_identical("blaster", || {
        let mut env = Environment::new();
        env.set_loss(LossModel::new(0.2).unwrap());
        let config = SimConfig {
            scan_rate: 25.0,
            seeds: 6,
            max_time: 60.0,
            stop_at_fraction: None,
            rng_seed: 12,
            ..SimConfig::default()
        };
        let worm = BlasterWorm::new(SeedModel::blaster_reboot(HardwareGeneration::PentiumIv));
        (env, dense_population(150), Box::new(worm), config)
    });
}

#[test]
fn slammer_worm_is_thread_invariant() {
    assert_cross_mode_identical("slammer", || {
        let mut env = Environment::new();
        env.set_loss(LossModel::new(0.1).unwrap());
        let config = SimConfig {
            scan_rate: 30.0,
            scan_rate_sigma: 1.0,
            seeds: 10,
            max_time: 50.0,
            stop_at_fraction: None,
            rng_seed: 13,
            ..SimConfig::default()
        };
        (env, dense_population(300), Box::new(SlammerWorm), config)
    });
}

#[test]
fn codered2_worm_with_nat_is_thread_invariant() {
    assert_cross_mode_identical("codered2+nat", || {
        let mut env = Environment::new();
        let mut nat_rng = StdRng::seed_from_u64(7);
        let publics: Vec<Ip> = (0..250u32).map(|i| Ip::new(0x0b0b_0000 + i * 3)).collect();
        let loci = apply_nat(&mut env, &publics, 0.5, &mut nat_rng);
        let config = SimConfig {
            scan_rate: 60.0,
            seeds: 6,
            max_time: 120.0,
            stop_at_fraction: Some(0.9),
            rng_seed: 14,
            ..SimConfig::default()
        };
        (
            env,
            Population::from_loci(loci),
            Box::new(CodeRed2Worm),
            config,
        )
    });
}

#[test]
fn hitlist_worm_is_thread_invariant() {
    assert_cross_mode_identical("hit-list", || {
        let config = SimConfig {
            scan_rate: 10.0,
            seeds: 5,
            max_time: 600.0,
            stop_at_fraction: Some(0.95),
            rng_seed: 15,
            ..SimConfig::default()
        };
        (
            Environment::new(),
            dense_population(400),
            hitlist_worm(),
            config,
        )
    });
}

#[test]
fn latency_and_removal_are_thread_invariant() {
    // The heaviest configuration: latency with jitter (pending-activation
    // heap and the dedicated latency stream), removal (per-host streams),
    // rate dispersion, and loss, all at once.
    assert_cross_mode_identical("hit-list+latency+removal", || {
        let mut env = Environment::new();
        env.set_latency(LatencyModel::new(0.5, 2.0).unwrap());
        env.set_loss(LossModel::new(0.1).unwrap());
        let config = SimConfig {
            scan_rate: 12.0,
            scan_rate_sigma: 0.6,
            seeds: 6,
            max_time: 500.0,
            stop_at_fraction: None,
            removal_rate: 0.004,
            rng_seed: 16,
            ..SimConfig::default()
        };
        (env, dense_population(300), hitlist_worm(), config)
    });
}
