//! The persistent sharded executor and the step pipeline it drives.
//!
//! Before this module existed the engine spawned a fresh set of scoped
//! threads *every step*; profiling showed that spawn cost — not the
//! serial merge — is what kept the parallel engine from winning. The
//! executor here is created once per run (or shared across runs via
//! [`Engine::run_on`](crate::Engine::run_on)): `parallelism - 1` workers
//! park on their job channels between steps, and each step hands them
//! owned shard payloads instead of borrowed slices.
//!
//! Ownership transfer is what keeps the pool compatible with
//! `#![forbid(unsafe_code)]`: a long-lived worker cannot borrow from the
//! engine's stack, so each [`StepPipeline::run_step`] peels the tail
//! chunks off the active-host vector into reusable carrier buffers,
//! ships them through `mpsc` channels, and splices them back in shard
//! order at the barrier. Two `memcpy`s of host structs per step replace
//! a thread spawn/join per step.
//!
//! Determinism argument: shards are contiguous chunks of the active
//! vector, merged back in chunk order, so the concatenated
//! probe/candidate sequence is identical whether a shard ran on the
//! driving thread or any worker. All randomness flows through per-host
//! id-keyed streams carried inside the shard payload; the executor adds
//! none (no work stealing, no completion-order effects: results land in
//! per-shard slots and are consumed in index order).

use std::sync::Arc;

#[cfg(feature = "parallel")]
use std::sync::mpsc::{channel, Receiver, Sender};

#[cfg(feature = "telemetry")]
use std::time::Duration;
#[cfg(feature = "telemetry")]
use std::time::Instant;

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, DeliveryLedger, Environment, Locus, Service};
use hotspots_targeting::TargetGenerator;
use rand::rngs::StdRng;

use crate::bitset::HostBits;
use crate::population::Population;

/// Engine-side state of one currently infected host. Owned by the
/// engine between steps and by a shard payload while the probe phase
/// runs; all its randomness is keyed by host id, so *where* it executes
/// never changes *what* it does.
pub(crate) struct InfectedHost {
    pub(crate) id: usize,
    pub(crate) locus: Locus,
    /// Source address as seen on the public wire (constant per host,
    /// hoisted out of the probe loop).
    pub(crate) public_src: Ip,
    pub(crate) generator: Box<dyn TargetGenerator + Send>,
    /// This host's private stream (rate dispersion, removal, loss
    /// draws). Keyed by host id only, never by infection order.
    pub(crate) rng: StdRng,
    pub(crate) probes_per_step: f64,
    pub(crate) probe_credit: f64,
}

/// Reusable per-shard scratch for one step of the staged probe pipeline.
pub(crate) struct ProbeBatch {
    pub(crate) targets: Vec<Ip>,
    pub(crate) deliveries: Vec<Delivery>,
    pub(crate) probes: Vec<(Ip, Delivery)>,
    pub(crate) candidates: Vec<usize>,
    pub(crate) ledger: DeliveryLedger,
    #[cfg(feature = "telemetry")]
    pub(crate) target_gen: Duration,
    #[cfg(feature = "telemetry")]
    pub(crate) routing: Duration,
    #[cfg(feature = "telemetry")]
    pub(crate) lookup: Duration,
}

impl ProbeBatch {
    pub(crate) fn new() -> ProbeBatch {
        ProbeBatch {
            targets: Vec::new(),
            deliveries: Vec::new(),
            probes: Vec::new(),
            candidates: Vec::new(),
            ledger: DeliveryLedger::new(),
            #[cfg(feature = "telemetry")]
            target_gen: Duration::ZERO,
            #[cfg(feature = "telemetry")]
            routing: Duration::ZERO,
            #[cfg(feature = "telemetry")]
            lookup: Duration::ZERO,
        }
    }
}

/// Read-only state every shard sees during one step's probe phase,
/// shipped to workers as `Arc` clones (a worker cannot hold a borrow of
/// the engine's stack). Shards see the start-of-step infection flags;
/// duplicate infection candidates collapse at the serial merge.
///
/// Every clone handed out for a step is dropped before
/// [`StepPipeline::run_step`] returns — the done-channel receive
/// happens-after the worker's drop — so the engine's own `Arc`s are
/// unique again at merge time and `Arc::make_mut` mutates in place.
#[derive(Clone)]
pub(crate) struct StepCtx {
    pub(crate) env: Arc<Environment>,
    pub(crate) population: Arc<Population>,
    pub(crate) service: Service,
    /// The step's simulation time, set serially before shards fan out —
    /// every shard routes against the same fault-schedule instant.
    pub(crate) time: f64,
    pub(crate) infected: Arc<HostBits>,
    pub(crate) removed: Arc<HostBits>,
    pub(crate) pending: Arc<HostBits>,
}

/// Drives one shard of active hosts through the target-gen → routing →
/// victim-lookup stages, accumulating results in the shard's scratch
/// batch. Touches only its own hosts and batch, so shards run on
/// independent threads without synchronization.
pub(crate) fn drive_shard(ctx: &StepCtx, hosts: &mut [InfectedHost], batch: &mut ProbeBatch) {
    for host in hosts {
        host.probe_credit += host.probes_per_step;
        let burst = host.probe_credit as usize;
        if burst == 0 {
            continue;
        }
        host.probe_credit -= burst as f64;

        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let t0 = Instant::now();
        batch.targets.clear();
        host.generator.fill_targets(burst, &mut batch.targets);
        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let t1 = Instant::now();
        batch.deliveries.clear();
        ctx.env.route_batch(
            host.locus,
            &batch.targets,
            ctx.service,
            ctx.time,
            &mut host.rng,
            &mut batch.deliveries,
            &mut batch.ledger,
        );
        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let t2 = Instant::now();
        // Two passes over the verdicts: candidate detection (branchy,
        // but misses short-circuit at the /16 presence bitmap), then
        // one bulk append of the probe records — a TrustedLen extend
        // compiles to a single reserve + streaming writes instead of a
        // per-probe capacity check.
        for &delivery in &batch.deliveries {
            let victim = match delivery {
                Delivery::Public(ip) => ctx.population.find_public(ip),
                Delivery::Local { realm, ip } => ctx.population.find_private(realm, ip),
                Delivery::Dropped(_) => None,
            };
            if let Some(v) = victim {
                if !ctx.infected.get(v) && !ctx.removed.get(v) && !ctx.pending.get(v) {
                    batch.candidates.push(v);
                }
            }
        }
        let src = host.public_src;
        batch
            .probes
            .extend(batch.deliveries.iter().map(|&d| (src, d)));
        #[cfg(feature = "telemetry")]
        {
            batch.target_gen += t1 - t0;
            batch.routing += t2 - t1;
            batch.lookup += t2.elapsed();
        }
    }
}

/// One shard's payload, shipped to a pool worker by ownership transfer.
#[cfg(feature = "parallel")]
struct ShardJob {
    shard: usize,
    hosts: Vec<InfectedHost>,
    batch: ProbeBatch,
    ctx: StepCtx,
    /// When the driving thread dispatched the job (wake-latency
    /// accounting).
    #[cfg(feature = "telemetry")]
    sent_at: Instant,
}

/// A finished shard, returned to the driving thread with its payload so
/// the carrier buffers are reused and the merge stays allocation-free.
#[cfg(feature = "parallel")]
struct ShardDone {
    shard: usize,
    hosts: Vec<InfectedHost>,
    batch: ProbeBatch,
    /// A panic captured while driving the shard, re-raised on the
    /// driving thread (scoped-spawn semantics without scoped threads).
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// How long the worker sat parked on its job channel before this
    /// job arrived.
    #[cfg(feature = "telemetry")]
    park: Duration,
    /// Dispatch-to-pickup latency for this job.
    #[cfg(feature = "telemetry")]
    wake: Duration,
}

/// A pool worker: parks on `jobs`, drives each shard it receives, and
/// returns the payload on `done`. Exits when the executor drops its job
/// sender. Panics inside the shard are caught and shipped back so the
/// driving thread can re-raise them instead of deadlocking at the
/// barrier.
#[cfg(feature = "parallel")]
fn worker_loop(jobs: Receiver<ShardJob>, done: Sender<ShardDone>) {
    loop {
        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let wait_start = Instant::now();
        let Ok(job) = jobs.recv() else {
            break;
        };
        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let picked_up = Instant::now();
        #[cfg(feature = "telemetry")]
        let (park, wake) = (
            picked_up.saturating_duration_since(wait_start),
            picked_up.saturating_duration_since(job.sent_at),
        );
        let ShardJob {
            shard,
            mut hosts,
            mut batch,
            ctx,
            ..
        } = job;
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive_shard(&ctx, &mut hosts, &mut batch);
        }))
        .err();
        // Drop the ctx Arc clones before signalling completion: the
        // barrier's receive then happens-after this drop, so the engine
        // sees unique Arcs at merge time.
        drop(ctx);
        if done
            .send(ShardDone {
                shard,
                hosts,
                batch,
                panic,
                #[cfg(feature = "telemetry")]
                park,
                #[cfg(feature = "telemetry")]
                wake,
            })
            .is_err()
        {
            break;
        }
    }
}

#[cfg(feature = "parallel")]
struct WorkerHandle {
    jobs: Sender<ShardJob>,
    thread: std::thread::JoinHandle<()>,
}

/// A persistent pool of shard workers.
///
/// Created once and reused across steps — and, via
/// [`Engine::run_on`](crate::Engine::run_on), across whole runs:
/// `ShardExecutor::new(p)` spawns `p - 1` workers that park between
/// jobs. The executor holds no simulation state, so reusing one is
/// bit-identical to building a fresh engine per run (pinned by test).
///
/// Without the `parallel` cargo feature the pool is empty and every
/// shard runs on the calling thread; the type still exists so callers
/// can be feature-agnostic.
///
/// # Examples
///
/// ```
/// use hotspots_sim::ShardExecutor;
///
/// let pool = ShardExecutor::new(4);
/// assert!(pool.parallelism() >= 1);
/// ```
pub struct ShardExecutor {
    #[cfg(feature = "parallel")]
    workers: Vec<WorkerHandle>,
    #[cfg(feature = "parallel")]
    done_rx: Receiver<ShardDone>,
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("parallelism", &self.parallelism())
            .finish()
    }
}

impl ShardExecutor {
    /// Creates a pool sized for `parallelism` concurrent shards: the
    /// calling thread drives shard 0, and `parallelism - 1` spawned
    /// workers (named `hotspots-worker-N`, so profilers attribute shard
    /// time to the pool) drive the rest. `0` and `1` both mean "no
    /// workers".
    pub fn new(parallelism: usize) -> ShardExecutor {
        #[cfg(feature = "parallel")]
        {
            let wanted = parallelism.saturating_sub(1);
            let (done_tx, done_rx) = channel();
            let mut workers = Vec::with_capacity(wanted);
            for i in 0..wanted {
                let (jobs_tx, jobs_rx) = channel();
                let done = done_tx.clone();
                // A spawn failure (resource exhaustion) degrades
                // parallelism instead of failing the run: the pipeline
                // caps its shard count at `parallelism()`.
                if let Ok(thread) = std::thread::Builder::new()
                    .name(format!("hotspots-worker-{}", i + 1))
                    .spawn(move || worker_loop(jobs_rx, done))
                {
                    workers.push(WorkerHandle {
                        jobs: jobs_tx,
                        thread,
                    });
                }
            }
            ShardExecutor { workers, done_rx }
        }
        #[cfg(not(feature = "parallel"))]
        {
            let _ = parallelism;
            ShardExecutor {}
        }
    }

    /// How many shards can execute concurrently (the calling thread
    /// plus the pool workers). Always at least 1.
    pub fn parallelism(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.workers.len() + 1
        }
        #[cfg(not(feature = "parallel"))]
        {
            1
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        #[cfg(feature = "parallel")]
        for w in std::mem::take(&mut self.workers) {
            // Closing the job channel wakes the parked worker into its
            // exit path; join so no worker outlives the pool.
            drop(w.jobs);
            let _ = w.thread.join();
        }
    }
}

/// The per-run pipeline state: one scratch [`ProbeBatch`] per shard,
/// carrier buffers for the ownership transfer, and the pool-phase
/// accounting. The engine owns one per run; the executor it dispatches
/// to may outlive it.
pub(crate) struct StepPipeline {
    /// Per-shard scratch, index 0 = the driving thread's shard. The
    /// merge loop walks `batches[..shard_count]` in index order.
    batches: Vec<ProbeBatch>,
    #[cfg(feature = "parallel")]
    carriers: Vec<Vec<InfectedHost>>,
    #[cfg(feature = "parallel")]
    slots: Vec<Option<(Vec<InfectedHost>, ProbeBatch)>>,
    /// Cumulative worker park time (blocked on the job channel).
    #[cfg(all(feature = "telemetry", feature = "parallel"))]
    park: Duration,
    /// Cumulative dispatch-to-pickup latency.
    #[cfg(all(feature = "telemetry", feature = "parallel"))]
    wake: Duration,
    /// Jobs actually shipped to pool workers (0 = the run was
    /// effectively serial and no park/wake phases are reported).
    #[cfg(all(feature = "telemetry", feature = "parallel"))]
    dispatched: u64,
}

impl StepPipeline {
    /// A pipeline sized for `shards` concurrent shards (at least 1).
    pub(crate) fn new(shards: usize) -> StepPipeline {
        let shards = if cfg!(feature = "parallel") {
            shards.max(1)
        } else {
            1
        };
        StepPipeline {
            batches: (0..shards).map(|_| ProbeBatch::new()).collect(),
            #[cfg(feature = "parallel")]
            carriers: (0..shards).map(|_| Vec::new()).collect(),
            #[cfg(feature = "parallel")]
            slots: (0..shards).map(|_| None).collect(),
            #[cfg(all(feature = "telemetry", feature = "parallel"))]
            park: Duration::ZERO,
            #[cfg(all(feature = "telemetry", feature = "parallel"))]
            wake: Duration::ZERO,
            #[cfg(all(feature = "telemetry", feature = "parallel"))]
            dispatched: 0,
        }
    }

    /// The per-shard scratch batches, for the serial merge.
    pub(crate) fn batches_mut(&mut self) -> &mut [ProbeBatch] {
        &mut self.batches
    }

    /// Total (park, wake) pool time, if any shard ran on a pool worker.
    #[cfg(feature = "telemetry")]
    pub(crate) fn pool_phases(&self) -> Option<(Duration, Duration)> {
        #[cfg(feature = "parallel")]
        {
            (self.dispatched > 0).then_some((self.park, self.wake))
        }
        #[cfg(not(feature = "parallel"))]
        {
            None
        }
    }

    /// Runs the probe stages (target_gen → routing → lookup) over all
    /// active hosts, sharding across `executor`'s workers, and returns
    /// how many scratch batches were filled.
    ///
    /// Shards are contiguous chunks of `active`, reassembled in chunk
    /// order before returning, so `active`'s element order — and hence
    /// every per-host RNG stream — is exactly what a serial pass over
    /// the same vector would see. `ctx` and every clone of it are
    /// consumed before this returns.
    // without `parallel` only slice ops remain, but the pooled path
    // drains/appends, so the signature stays `&mut Vec`
    #[cfg_attr(not(feature = "parallel"), allow(clippy::ptr_arg))]
    pub(crate) fn run_step(
        &mut self,
        executor: &mut ShardExecutor,
        ctx: StepCtx,
        active: &mut Vec<InfectedHost>,
    ) -> usize {
        let shards = self
            .batches
            .len()
            .min(executor.parallelism())
            .min(active.len());
        #[cfg(feature = "parallel")]
        if shards > 1 {
            return self.run_step_pooled(executor, ctx, active, shards);
        }
        let _ = shards;
        drive_shard(&ctx, active, &mut self.batches[0]);
        1
    }

    /// The pooled fan-out: peel tail chunks into carriers (last shard
    /// first, so each drain is a pure truncation), dispatch shards
    /// `1..used` to workers in fixed shard→worker order, drive shard 0
    /// inline, then collect and splice back in shard order.
    #[cfg(feature = "parallel")]
    fn run_step_pooled(
        &mut self,
        executor: &mut ShardExecutor,
        ctx: StepCtx,
        active: &mut Vec<InfectedHost>,
        shards: usize,
    ) -> usize {
        let chunk = active.len().div_ceil(shards);
        let used = active.len().div_ceil(chunk);
        let mut outstanding = 0usize;
        for shard in (1..used).rev() {
            let mut hosts = std::mem::take(&mut self.carriers[shard]);
            hosts.extend(active.drain(shard * chunk..));
            let batch = std::mem::replace(&mut self.batches[shard], ProbeBatch::new());
            #[cfg(feature = "telemetry")]
            #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
            let sent_at = Instant::now();
            let job = ShardJob {
                shard,
                hosts,
                batch,
                ctx: ctx.clone(),
                #[cfg(feature = "telemetry")]
                sent_at,
            };
            // Deterministic shard→worker assignment (`used - 1 <=
            // workers` because `shards <= parallelism()`), so a shard
            // always runs on the same worker thread at a given count.
            match executor.workers[shard - 1].jobs.send(job) {
                Ok(()) => outstanding += 1,
                Err(std::sync::mpsc::SendError(job)) => {
                    // Unreachable in practice (workers outlive the
                    // executor's senders); degrade by running inline.
                    let ShardJob {
                        shard,
                        mut hosts,
                        mut batch,
                        ctx,
                        ..
                    } = job;
                    drive_shard(&ctx, &mut hosts, &mut batch);
                    self.slots[shard] = Some((hosts, batch));
                }
            }
        }
        // Shard 0 is whatever remains of `active`; driving it here
        // overlaps with the workers.
        drive_shard(&ctx, active, &mut self.batches[0]);
        drop(ctx);

        while outstanding > 0 {
            match executor.done_rx.recv() {
                Ok(done) => {
                    outstanding -= 1;
                    if let Some(payload) = done.panic {
                        std::panic::resume_unwind(payload);
                    }
                    #[cfg(feature = "telemetry")]
                    {
                        self.park += done.park;
                        self.wake += done.wake;
                        self.dispatched += 1;
                    }
                    self.slots[done.shard] = Some((done.hosts, done.batch));
                }
                // Unreachable: workers hold their done senders for the
                // executor's whole lifetime. Stop waiting rather than
                // hang if it ever happens.
                Err(_) => break,
            }
        }

        // Splice the chunks back in shard order: `active` is restored
        // to the exact element order it had before the fan-out.
        for shard in 1..used {
            if let Some((mut hosts, batch)) = self.slots[shard].take() {
                active.append(&mut hosts);
                self.carriers[shard] = hosts;
                self.batches[shard] = batch;
            }
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_counts_the_driving_thread() {
        let pool = ShardExecutor::new(0);
        assert_eq!(pool.parallelism(), 1);
        let pool = ShardExecutor::new(1);
        assert_eq!(pool.parallelism(), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pool_spawns_and_joins_workers() {
        let pool = ShardExecutor::new(4);
        assert_eq!(pool.parallelism(), 4);
        drop(pool); // must not hang: workers exit when senders drop
    }

    #[test]
    fn pipeline_always_has_a_shard_zero() {
        let p = StepPipeline::new(0);
        assert_eq!(p.batches.len(), 1);
    }
}
