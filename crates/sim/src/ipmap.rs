//! A fast open-addressed map from 32-bit addresses to host indices.
//!
//! Population lookup is the per-probe hot path of the engine; `std`'s
//! SipHash-based `HashMap` spends more time hashing one `u32` than the
//! rest of the probe pipeline combined. This map uses a SplitMix-style
//! multiplicative hash and linear probing over a power-of-two table.

/// An open-addressed `u32 → u32` map specialized for address lookup.
///
/// Insert-only (populations don't shrink mid-outbreak). Keys are
/// arbitrary 32-bit values; values are host indices.
///
/// # Examples
///
/// ```
/// use hotspots_sim::IpMap;
///
/// let mut m = IpMap::with_capacity(100);
/// m.insert(0xc0a80001, 7);
/// assert_eq!(m.get(0xc0a80001), Some(7));
/// assert_eq!(m.get(0xc0a80002), None);
/// ```
#[derive(Debug, Clone)]
pub struct IpMap {
    /// slot = (key, value); EMPTY key sentinel handled via `occupied` mask
    /// packed into value (u64: high 32 = key, low 32 = value, EMPTY = u64::MAX).
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

impl IpMap {
    /// Creates a map sized for at least `capacity` entries at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> IpMap {
        let table = (capacity.max(8) * 2).next_power_of_two();
        IpMap {
            slots: vec![EMPTY; table],
            mask: table - 1,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u32) -> usize {
        // SplitMix-style avalanche of the key
        let mut h = u64::from(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (h ^ (h >> 31)) as usize & self.mask
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: u32, value: u32) -> Option<u32> {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let packed = (u64::from(key) << 32) | u64::from(value);
        assert_ne!(
            packed, EMPTY,
            "(u32::MAX, u32::MAX) is reserved as the empty sentinel"
        );
        let mut i = self.slot_of(key);
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                self.slots[i] = packed;
                self.len += 1;
                return None;
            }
            if (slot >> 32) as u32 == key {
                let old = slot as u32;
                self.slots[i] = packed;
                return Some(old);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u32) -> Option<u32> {
        let mut i = self.slot_of(key);
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return None;
            }
            if (slot >> 32) as u32 == key {
                return Some(slot as u32);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Returns `true` if `key` is present.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Heap bytes held by the slot table.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u64>()
    }

    /// Slot-table bytes a map built with [`IpMap::with_capacity`] for
    /// `capacity` entries would hold — the analytic cost used when
    /// comparing store layouts without building one.
    pub fn table_bytes_for(capacity: usize) -> usize {
        (capacity.max(8) * 2).next_power_of_two() * std::mem::size_of::<u64>()
    }

    fn grow(&mut self) {
        let bigger = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; bigger]);
        self.mask = bigger - 1;
        self.len = 0;
        for slot in old {
            if slot != EMPTY {
                self.insert((slot >> 32) as u32, slot as u32);
            }
        }
    }
}

impl Default for IpMap {
    fn default() -> IpMap {
        IpMap::with_capacity(8)
    }
}

impl FromIterator<(u32, u32)> for IpMap {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> IpMap {
        let iter = iter.into_iter();
        let mut m = IpMap::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = IpMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(2), Some(20));
        assert_eq!(m.get(3), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_overwrites_and_returns_old() {
        let mut m = IpMap::default();
        m.insert(5, 1);
        assert_eq!(m.insert(5, 2), Some(1));
        assert_eq!(m.get(5), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = IpMap::with_capacity(4);
        for i in 0..10_000u32 {
            m.insert(i.wrapping_mul(2_654_435_761), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(i.wrapping_mul(2_654_435_761)), Some(i));
        }
    }

    #[test]
    fn extreme_keys_work() {
        let mut m = IpMap::default();
        m.insert(0, 0);
        m.insert(u32::MAX, u32::MAX - 1);
        assert_eq!(m.get(0), Some(0));
        assert_eq!(m.get(u32::MAX), Some(u32::MAX - 1));
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..500)) {
            // u16 keys force collisions
            let mut ours = IpMap::default();
            let mut reference: HashMap<u32, u32> = HashMap::new();
            for (k, v) in ops {
                let k = u32::from(k);
                prop_assert_eq!(ours.insert(k, v), reference.insert(k, v));
            }
            for (&k, &v) in &reference {
                prop_assert_eq!(ours.get(k), Some(v));
            }
            prop_assert_eq!(ours.len(), reference.len());
        }
    }
}
