//! Worm models: per-host generator factories for the engine.

use std::fmt;

use hotspots_netmodel::{Locus, Service};
use hotspots_prng::entropy::SeedModel;
use hotspots_prng::{SplitMix, SqlsortDll};
use hotspots_targeting::{
    BlasterScanner, CodeRed2Scanner, HitList, HitListScanner, LocalPreference, PreferenceEntry,
    SlammerScanner, TargetGenerator, UniformScanner,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A worm model: everything the engine needs to run an outbreak of one
/// threat — its service, and a deterministic per-host target generator.
///
/// `host_seed` is unique per infected host and derived deterministically
/// from the simulation seed, so an outbreak replays identically.
pub trait WormModel: fmt::Debug {
    /// Short name for experiment output.
    fn name(&self) -> &'static str;

    /// The service its probes target (drives filtering policy).
    fn service(&self) -> Service;

    /// Creates the target generator for a newly infected host.
    fn generator(&self, locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send>;
}

/// The uniform baseline worm of the simple epidemic model.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformWorm;

impl WormModel for UniformWorm {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn service(&self) -> Service {
        Service::CODERED_HTTP
    }

    fn generator(&self, _locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        Box::new(UniformScanner::new(SplitMix::new(host_seed)))
    }
}

/// A hit-list worm: every instance scans uniformly within a shared prefix
/// list (Figure 5(a)/(b)).
#[derive(Debug, Clone)]
pub struct HitListWorm {
    list: std::sync::Arc<HitList>,
    service: Service,
}

impl HitListWorm {
    /// Creates a worm restricted to `list`, probing TCP/80 (a
    /// CodeRed-style vector). The list is shared (`Arc`) across all
    /// infected hosts' generators.
    pub fn new(list: HitList) -> HitListWorm {
        HitListWorm {
            list: std::sync::Arc::new(list),
            service: Service::CODERED_HTTP,
        }
    }

    /// Overrides the probed service (e.g. [`Service::SLAMMER_SQL`] for a
    /// UDP-carried hit-list worm — used by the sensor-mode ablation).
    pub fn with_service(mut self, service: Service) -> HitListWorm {
        self.service = service;
        self
    }

    /// The shared hit-list.
    pub fn list(&self) -> &HitList {
        &self.list
    }
}

impl WormModel for HitListWorm {
    fn name(&self) -> &'static str {
        "hit-list"
    }

    fn service(&self) -> Service {
        self.service
    }

    fn generator(&self, _locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        Box::new(HitListScanner::new(
            std::sync::Arc::clone(&self.list),
            SplitMix::new(host_seed),
        ))
    }
}

/// CodeRedII with its faithful 1/8–4/8–3/8 local-preference mask table;
/// each instance prefers the /8 and /16 of *its own* locus address
/// (private, for NATed hosts — the hotspot mechanism).
#[derive(Debug, Clone, Copy, Default)]
pub struct CodeRed2Worm;

impl WormModel for CodeRed2Worm {
    fn name(&self) -> &'static str {
        "codered2"
    }

    fn service(&self) -> Service {
        Service::CODERED_HTTP
    }

    fn generator(&self, locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        Box::new(CodeRed2Scanner::new(
            locus.local_address(),
            SplitMix::new(host_seed),
        ))
    }
}

/// Blaster: sequential scanning from a start chosen by the msvcrt PRNG
/// seeded with a boot-time tick count drawn from `seed_model`.
#[derive(Debug, Clone, Copy)]
pub struct BlasterWorm {
    seed_model: SeedModel,
}

impl BlasterWorm {
    /// Creates a Blaster model whose hosts draw `GetTickCount()` values
    /// from `seed_model`.
    pub fn new(seed_model: SeedModel) -> BlasterWorm {
        BlasterWorm { seed_model }
    }
}

impl WormModel for BlasterWorm {
    fn name(&self) -> &'static str {
        "blaster"
    }

    fn service(&self) -> Service {
        Service::BLASTER_RPC
    }

    fn generator(&self, locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        let mut rng = StdRng::seed_from_u64(host_seed);
        let tick = self.seed_model.sample_seed(&mut rng);
        Box::new(BlasterScanner::from_tick_count(locus.local_address(), tick))
    }
}

/// A botnet campaign: every drone executes the same captured
/// `advscan`/`ipscan` command, resolving its own scan session from it —
/// sticky octets (`s`) pick a per-drone subnet, `i` octets target the
/// drone's home network.
///
/// Commands whose pattern is not prefix-shaped (a fixed octet after a
/// free one) fall back to scanning the whole space, mirroring drone
/// behavior on junk input.
#[derive(Debug, Clone)]
pub struct BotWorm {
    command: hotspots_botnet::BotCommand,
}

impl BotWorm {
    /// Creates the campaign model for a captured command.
    pub fn new(command: hotspots_botnet::BotCommand) -> BotWorm {
        BotWorm { command }
    }

    /// The command the drones are executing.
    pub fn command(&self) -> &hotspots_botnet::BotCommand {
        &self.command
    }
}

impl WormModel for BotWorm {
    fn name(&self) -> &'static str {
        "bot-campaign"
    }

    fn service(&self) -> Service {
        self.command.module().service()
    }

    fn generator(&self, locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        match self
            .command
            .scanner(locus.local_address(), SplitMix::new(host_seed))
        {
            Ok(scanner) => Box::new(scanner),
            Err(_) => Box::new(UniformScanner::new(SplitMix::new(host_seed))),
        }
    }
}

/// A generic local-preference worm: every instance keeps a weighted
/// mixture of its own address's prefixes (the paper's general form of
/// the deliberate algorithmic factor; [`CodeRed2Worm`] is the faithful
/// 1/8–4/8–3/8 instance of this scheme).
#[derive(Debug, Clone)]
pub struct LocalPreferenceWorm {
    entries: Vec<PreferenceEntry>,
    service: Service,
}

impl LocalPreferenceWorm {
    /// Creates a worm with the given preference table, probing TCP/80.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is zero (the same
    /// contract as [`LocalPreference::new`]).
    pub fn new(entries: Vec<PreferenceEntry>) -> LocalPreferenceWorm {
        assert!(!entries.is_empty(), "preference table must be non-empty");
        assert!(
            entries.iter().all(|e| e.weight > 0),
            "preference weights must be positive"
        );
        LocalPreferenceWorm {
            entries,
            service: Service::CODERED_HTTP,
        }
    }

    /// Overrides the probed service.
    pub fn with_service(mut self, service: Service) -> LocalPreferenceWorm {
        self.service = service;
        self
    }

    /// The preference table.
    pub fn entries(&self) -> &[PreferenceEntry] {
        &self.entries
    }
}

impl WormModel for LocalPreferenceWorm {
    fn name(&self) -> &'static str {
        "local-preference"
    }

    fn service(&self) -> Service {
        self.service
    }

    fn generator(&self, locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        Box::new(LocalPreference::new(
            locus.local_address(),
            self.entries.clone(),
            SplitMix::new(host_seed),
        ))
    }
}

/// Slammer: the flawed LCG walk, with each host's `sqlsort.dll` version
/// (and hence increment) drawn uniformly from the three reported
/// variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlammerWorm;

impl WormModel for SlammerWorm {
    fn name(&self) -> &'static str {
        "slammer"
    }

    fn service(&self) -> Service {
        Service::SLAMMER_SQL
    }

    fn generator(&self, _locus: Locus, host_seed: u64) -> Box<dyn TargetGenerator + Send> {
        let mut mix = SplitMix::new(host_seed);
        let dll = SqlsortDll::ALL[(mix.next_u64() % 3) as usize];
        let seed = mix.next_u64() as u32;
        Box::new(SlammerScanner::new(dll, seed))
    }
}

/// Convenience for tests: collect `n` targets from a model's generator.
#[cfg(test)]
use hotspots_ipspace::Ip;
#[cfg(test)]
fn sample_targets(model: &dyn WormModel, locus: Locus, host_seed: u64, n: usize) -> Vec<Ip> {
    let mut g = model.generator(locus, host_seed);
    (0..n).map(|_| g.next_target()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn public(a: u8, b: u8, c: u8, d: u8) -> Locus {
        Locus::Public(Ip::from_octets(a, b, c, d))
    }

    #[test]
    fn generators_are_deterministic_per_host_seed() {
        let models: Vec<Box<dyn WormModel>> = vec![
            Box::new(UniformWorm),
            Box::new(CodeRed2Worm),
            Box::new(SlammerWorm),
            Box::new(BlasterWorm::new(SeedModel::blaster_reboot(
                hotspots_prng::entropy::HardwareGeneration::PentiumIii,
            ))),
        ];
        for model in &models {
            let a = sample_targets(model.as_ref(), public(9, 8, 7, 6), 42, 32);
            let b = sample_targets(model.as_ref(), public(9, 8, 7, 6), 42, 32);
            assert_eq!(a, b, "{} not deterministic", model.name());
            let c = sample_targets(model.as_ref(), public(9, 8, 7, 6), 43, 32);
            assert_ne!(a, c, "{} ignores host seed", model.name());
        }
    }

    #[test]
    fn codered2_uses_locus_local_address() {
        // A NATed CRII instance must prefer its *private* /8 (192/8).
        let locus = Locus::Private {
            realm: hotspots_netmodel::RealmId(0),
            ip: Ip::from_octets(192, 168, 3, 4),
        };
        let targets = sample_targets(&CodeRed2Worm, locus, 7, 4000);
        let in_192 = targets.iter().filter(|t| t.octets()[0] == 192).count();
        let frac = in_192 as f64 / targets.len() as f64;
        assert!(frac > 0.7, "NATed CRII local preference missing: {frac}");
    }

    #[test]
    fn hitlist_worm_stays_in_list() {
        let list = HitList::new(vec!["20.0.0.0/16".parse().unwrap()]).unwrap();
        let model = HitListWorm::new(list.clone());
        for t in sample_targets(&model, public(1, 1, 1, 1), 3, 1000) {
            assert!(list.contains(t));
        }
        assert!(std::sync::Arc::strong_count(&model.list) >= 1);
    }

    #[test]
    fn blaster_worm_reboot_band_restricts_starts() {
        let model = BlasterWorm::new(SeedModel::blaster_reboot(
            hotspots_prng::entropy::HardwareGeneration::PentiumIv,
        ));
        // Hosts launched at boot pick starts from a narrow deterministic
        // set; different host seeds may still collide on starting /24s.
        let mut starts = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let first = sample_targets(&model, public(5, 5, 5, 5), seed, 1)[0];
            starts.insert(first);
        }
        assert!(
            starts.len() < 200,
            "expected tick-count collisions to repeat some starts"
        );
    }

    #[test]
    fn bot_worm_drones_resolve_their_own_sessions() {
        let cmd: hotspots_botnet::BotCommand = "ipscan 192.s.s.s dcom2 -s".parse().unwrap();
        let worm = BotWorm::new(cmd);
        assert_eq!(worm.service(), Service::BLASTER_RPC); // dcom2 → tcp/135
                                                          // two drones pick different sticky /24s, both inside 192/8
        let a = sample_targets(&worm, public(1, 1, 1, 1), 5, 64);
        let b = sample_targets(&worm, public(1, 1, 1, 1), 6, 64);
        assert_ne!(a, b);
        for t in a.iter().chain(&b) {
            assert_eq!(t.octets()[0], 192, "drone escaped the hit-list");
        }
        // each drone stays inside one /24 session
        let a24: std::collections::HashSet<_> = a.iter().map(|t| t.bucket24()).collect();
        assert_eq!(a24.len(), 1);
    }

    #[test]
    fn bot_worm_local_pattern_targets_home() {
        let cmd: hotspots_botnet::BotCommand = "ipscan i.i.x.x dcom2 -s".parse().unwrap();
        let worm = BotWorm::new(cmd);
        for t in sample_targets(&worm, public(141, 20, 3, 4), 9, 128) {
            assert_eq!(&t.octets()[..2], &[141, 20]);
        }
    }

    #[test]
    fn hitlist_service_override() {
        let list = HitList::new(vec!["20.0.0.0/16".parse().unwrap()]).unwrap();
        let tcp = HitListWorm::new(list.clone());
        let udp = HitListWorm::new(list).with_service(Service::SLAMMER_SQL);
        assert_eq!(tcp.service(), Service::CODERED_HTTP);
        assert_eq!(udp.service(), Service::SLAMMER_SQL);
    }

    #[test]
    fn services_match_worm_lore() {
        assert_eq!(SlammerWorm.service(), Service::SLAMMER_SQL);
        assert_eq!(CodeRed2Worm.service(), Service::CODERED_HTTP);
        assert_eq!(
            BlasterWorm::new(SeedModel::blaster_reboot(
                hotspots_prng::entropy::HardwareGeneration::PentiumIi
            ))
            .service(),
            Service::BLASTER_RPC
        );
    }
}
