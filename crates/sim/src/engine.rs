//! The discrete-time outbreak engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

#[cfg(feature = "telemetry")]
use std::time::{Duration, Instant};

use hotspots_netmodel::{DeliveryLedger, Environment};
use hotspots_prng::SplitMix;
use hotspots_stats::TimeSeries;
#[cfg(feature = "telemetry")]
use hotspots_telemetry::{Histogram, PhaseTimes, TraceSink};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use crate::bitset::HostBits;
use crate::executor::{InfectedHost, ShardExecutor, StepCtx, StepPipeline};
use crate::observers::SimObserver;
use crate::population::Population;
use crate::worms::WormModel;

/// Engine configuration. Defaults mirror the paper's simulation platform:
/// 10 probes/second per infected host, 25 seed hosts, no removal, no
/// rate dispersion.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Mean probes per second per infected host.
    pub scan_rate: f64,
    /// Log-normal dispersion (σ of log) of per-host scan rates around
    /// `scan_rate`, mean-preserving. `0.0` = every host scans at exactly
    /// `scan_rate`; Slammer-style bandwidth-limited populations are
    /// better described by σ ≈ 1.
    pub scan_rate_sigma: f64,
    /// Initial infected host count (sampled uniformly from the
    /// population).
    pub seeds: usize,
    /// Simulation step in seconds.
    pub dt: f64,
    /// Hard stop time in seconds.
    pub max_time: f64,
    /// Optional early stop once this ever-infected fraction is reached.
    pub stop_at_fraction: Option<f64>,
    /// Removal (patching/cleaning) rate: each infected host becomes
    /// permanently immune with this per-second probability — the paper's
    /// third host population. `0.0` disables removal (pure SI dynamics).
    pub removal_rate: f64,
    /// Master seed: two runs with equal configs and inputs are
    /// bit-identical.
    pub rng_seed: u64,
    /// Worker threads for the probe phase. `1` (the default) runs the
    /// staged pipeline serially; larger values shard active hosts across
    /// a persistent [`ShardExecutor`] pool when the `parallel` cargo
    /// feature is enabled (without it, any value runs serially). Every
    /// RNG stream is keyed by host id and shard results merge in fixed
    /// order, so this is a pure throughput knob: results are
    /// bit-identical at any setting.
    pub threads: usize,
    /// Record a span trace of the run (run → step → phase spans with
    /// per-shard attribution) into [`EngineTelemetry::trace`]. Without
    /// the `telemetry` cargo feature this flag is inert: the trace code
    /// does not exist in the build and no clock is read.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            scan_rate: 10.0,
            scan_rate_sigma: 0.0,
            seeds: 25,
            dt: 1.0,
            max_time: 10_000.0,
            stop_at_fraction: Some(0.999),
            removal_rate: 0.0,
            rng_seed: 0x4d53_2006,
            threads: 1,
            trace: false,
        }
    }
}

impl SimConfig {
    fn validate(&self) {
        assert!(self.scan_rate > 0.0, "scan_rate must be positive");
        assert!(
            self.scan_rate_sigma >= 0.0 && self.scan_rate_sigma.is_finite(),
            "scan_rate_sigma must be non-negative"
        );
        assert!(self.seeds > 0, "need at least one seed host");
        assert!(self.dt > 0.0, "dt must be positive");
        assert!(self.max_time >= self.dt, "max_time shorter than one step");
        assert!(
            self.removal_rate >= 0.0 && self.removal_rate.is_finite(),
            "removal_rate must be non-negative"
        );
        if let Some(f) = self.stop_at_fraction {
            assert!((0.0..=1.0).contains(&f), "stop fraction out of range");
        }
        assert!(self.threads >= 1, "threads must be at least 1");
    }
}

/// Wall-clock accounting for one run's engine phases (only collected
/// under the `telemetry` cargo feature; without it no clock is read in
/// the step loop).
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    /// Per-phase wall totals: `target_gen` (drawing targets), `routing`
    /// (environment verdicts), `lookup` (victim resolution), `observe`
    /// (observer dispatch), `merge` (the serial tail of every step:
    /// ledger merge, infection bookkeeping, and host spawning — the
    /// prime suspect for parallel slowdown). Together they cover the
    /// whole probe path. With the `parallel` feature and `threads > 1`,
    /// the first three sum across worker threads (CPU time, not wall
    /// time); `observe` and `merge` are always serial wall time. Runs
    /// that actually dispatched shards to pool workers also report
    /// `park` (worker idle time between jobs) and `wake`
    /// (dispatch-to-pickup latency); effectively serial runs omit both.
    pub phases: PhaseTimes,
    /// Per-step wall time in microseconds, log-bucketed.
    pub step_micros: Histogram,
    /// Slowest single step in wall seconds.
    pub peak_step_seconds: f64,
    /// Span trace of the run (only when [`SimConfig::trace`] was set):
    /// run → step spans on track 0, per-shard phase leaves on tracks
    /// `shard + 1`. Span IDs are deterministic; only `dur_micros`
    /// carries wall time.
    pub trace: Option<TraceSink>,
}

/// The result of one outbreak run.
#[derive(Debug)]
pub struct SimResult {
    /// Fraction of the vulnerable population ever infected, vs time
    /// (monotone; removal does not decrease it).
    pub infection_curve: TimeSeries,
    /// Hosts ever infected (seeds included; removed hosts still count).
    pub infected: usize,
    /// Hosts removed (patched/cleaned — the immune population).
    pub removed: usize,
    /// Population size.
    pub population: usize,
    /// Total probes emitted.
    pub probes_sent: u64,
    /// Every probe's verdict: deliveries (public/local) and drops by
    /// reason. `ledger.probes() == probes_sent` always.
    pub ledger: DeliveryLedger,
    /// Infection time per host id (`None` = never infected). With
    /// latency, this is the *activation* time.
    pub infection_times: Vec<Option<f64>>,
    /// Simulated seconds elapsed.
    pub elapsed: f64,
    /// Engine phase timings (`telemetry` feature only).
    #[cfg(feature = "telemetry")]
    pub telemetry: EngineTelemetry,
}

impl SimResult {
    /// Final ever-infected fraction.
    pub fn infected_fraction(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.infected as f64 / self.population as f64
        }
    }

    /// Time until `fraction` of the population was infected, if reached.
    pub fn time_to_fraction(&self, fraction: f64) -> Option<f64> {
        self.infection_curve.time_to_reach(fraction)
    }
}

// Domain-separation salts: each per-host stream family is keyed by
// (master seed, salt, host id), so streams never collide across families
// and never depend on infection order or thread count.
const HOST_STREAM_SALT: u64 = 0x7072_6f62_6573_7472;
const GENERATOR_SALT: u64 = 0x5eed_5eed_5eed_5eed;
const LATENCY_SALT: u64 = 0x6c61_7465_6e63_7921;

/// Derives an independent 64-bit seed from the master seed, a stream
/// salt, and a counter, via one SplitMix64 finalizer pass.
fn derive_seed(master: u64, salt: u64, counter: u64) -> u64 {
    let mut mix = SplitMix::new(master ^ salt ^ counter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    mix.next_u64()
}

/// The outbreak engine: drives infected hosts' generators through the
/// environment into the population and the observers.
///
/// # Examples
///
/// See the crate-level example.
pub struct Engine {
    config: SimConfig,
    population: Arc<Population>,
    env: Arc<Environment>,
    worm: Box<dyn WormModel>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("population", &self.population.len())
            .field("worm", &self.worm.name())
            .finish()
    }
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid, the population is empty, or there
    /// are fewer hosts than seeds.
    pub fn new(
        config: SimConfig,
        population: Population,
        env: Environment,
        worm: Box<dyn WormModel>,
    ) -> Engine {
        config.validate();
        assert!(!population.is_empty(), "population must be non-empty");
        assert!(
            population.len() >= config.seeds,
            "population smaller than seed count"
        );
        Engine {
            config,
            population: Arc::new(population),
            env: Arc::new(env),
            worm,
        }
    }

    /// The configured worm model.
    pub fn worm(&self) -> &dyn WormModel {
        self.worm.as_ref()
    }

    /// The population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Per-host probes per step: the mean rate, optionally log-normally
    /// dispersed (mean-preserving).
    fn host_rate<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let base = self.config.scan_rate * self.config.dt;
        if self.config.scan_rate_sigma == 0.0 {
            return base;
        }
        let sigma = self.config.scan_rate_sigma;
        // mean-preserving log-normal: E[exp(σZ − σ²/2)] = 1
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        base * (sigma * z - sigma * sigma / 2.0).exp()
    }

    /// Builds the engine-side state for a newly infected host. All of
    /// the host's randomness comes from streams keyed by its id, so it
    /// behaves identically regardless of infection order or thread
    /// count.
    fn spawn_host(&self, id: usize) -> InfectedHost {
        let locus = self.population.locus(id);
        let mut rng = StdRng::seed_from_u64(derive_seed(
            self.config.rng_seed,
            HOST_STREAM_SALT,
            id as u64,
        ));
        let probes_per_step = self.host_rate(&mut rng);
        InfectedHost {
            id,
            locus,
            public_src: locus.public_source(&self.env),
            generator: self.worm.generator(
                locus,
                derive_seed(self.config.rng_seed, GENERATOR_SALT, id as u64),
            ),
            rng,
            probes_per_step,
            probe_credit: 0.0,
        }
    }

    /// Runs the outbreak to completion, feeding every probe to
    /// `observer`.
    ///
    /// Creates a [`ShardExecutor`] sized to [`SimConfig::threads`] for
    /// the duration of the run; to amortize pool start-up across many
    /// runs (sweeps, benchmarks), build one executor and use
    /// [`Engine::run_on`].
    pub fn run<O: SimObserver>(&mut self, observer: &mut O) -> SimResult {
        let mut executor = ShardExecutor::new(self.config.threads);
        self.run_on(&mut executor, observer)
    }

    /// Runs the outbreak to completion on a caller-provided executor,
    /// feeding every probe to `observer`.
    ///
    /// The probe path is a staged pipeline: each host draws a step's
    /// worth of targets in one batch
    /// ([`hotspots_targeting::TargetGenerator::fill_targets`]), the
    /// environment verdicts the whole slice
    /// ([`Environment::route_batch`]), victims are resolved, and the
    /// batch reaches the observer via [`SimObserver::on_probe_batch`].
    /// With the `parallel` cargo feature and [`SimConfig::threads`] > 1,
    /// active hosts are sharded across `executor`'s persistent workers
    /// and results merge in fixed shard order; because every RNG stream
    /// is keyed by host id, the run is bit-identical to a serial one
    /// (only observer batch boundaries vary with thread count).
    ///
    /// The executor holds no simulation state — reusing one across runs
    /// is bit-identical to building a fresh engine and pool per run.
    /// Shard concurrency is the *minimum* of [`SimConfig::threads`] and
    /// [`ShardExecutor::parallelism`], so a small pool caps a larger
    /// thread setting.
    pub fn run_on<O: SimObserver>(
        &mut self,
        executor: &mut ShardExecutor,
        observer: &mut O,
    ) -> SimResult {
        let n = self.population.len();
        let service = self.worm.service();
        let latency = self.env.latency();
        let removal_prob = self.config.removal_rate * self.config.dt;
        let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
        // Latency draws happen at the serial merge, in candidate order,
        // from a dedicated stream — the same sequence whether the probe
        // phase ran on one thread or many.
        let mut lat_rng = StdRng::seed_from_u64(derive_seed(self.config.rng_seed, LATENCY_SALT, 0));

        // Packed infection-state bits: the whole per-host state of a
        // 1M-host run is ~375 KB across the three sets, streamed from
        // cache by the batched lookup/merge phases. Wrapped in `Arc` so
        // the step fan-out can hand workers a snapshot without copying;
        // every worker clone is dropped before the merge starts, so the
        // serial mutation sites below (`Arc::make_mut`) always find a
        // unique Arc and mutate in place.
        let mut infected_flags = Arc::new(HostBits::new(n));
        let mut removed_flags = Arc::new(HostBits::new(n));
        let mut pending_flags = Arc::new(HostBits::new(n));
        let mut infection_times: Vec<Option<f64>> = vec![None; n];
        let mut active: Vec<InfectedHost> = Vec::new();
        // pending activations ordered by time (microseconds for total order)
        let mut pending: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut curve = TimeSeries::new(format!("{} infected fraction", self.worm.name()));
        let mut ever_infected = 0usize;
        let mut removed = 0usize;
        let mut ledger = DeliveryLedger::new();

        #[cfg(feature = "telemetry")]
        let (mut tel_target, mut tel_route, mut tel_lookup, mut tel_observe, mut tel_merge) = (
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
        );
        #[cfg(feature = "telemetry")]
        let mut step_micros = Histogram::new();
        #[cfg(feature = "telemetry")]
        let mut peak_step = Duration::ZERO;
        #[cfg(feature = "telemetry")]
        #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
        let run_start = Instant::now();
        #[cfg(feature = "telemetry")]
        let mut trace = self.config.trace.then(TraceSink::new);
        #[cfg(feature = "telemetry")]
        let run_span = trace.as_mut().map(|t| t.open("run", 0, 0, 0));
        #[cfg(feature = "telemetry")]
        let mut step_index: u64 = 0;

        // Seed hosts.
        for idx in sample(&mut rng, n, self.config.seeds) {
            Arc::make_mut(&mut infected_flags).set(idx);
            infection_times[idx] = Some(0.0);
            ever_infected += 1;
            let host = self.spawn_host(idx);
            observer.on_infection(0.0, idx, host.locus);
            active.push(host);
        }
        curve.push(0.0, ever_infected as f64 / n as f64);

        let mut pipeline = StepPipeline::new(self.config.threads);

        let mut time = 0.0;
        let mut newly_infected: Vec<usize> = Vec::new();

        while time < self.config.max_time {
            time += self.config.dt;
            #[cfg(feature = "telemetry")]
            #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
            let step_start = Instant::now();

            // Activate pending (latency-delayed) infections due by now.
            let mut activated = false;
            while let Some(&Reverse((due_us, idx))) = pending.peek() {
                let due = due_us as f64 / 1e6;
                if due > time {
                    break;
                }
                pending.pop();
                Arc::make_mut(&mut pending_flags).clear(idx);
                if infected_flags.get(idx) || removed_flags.get(idx) {
                    continue;
                }
                Arc::make_mut(&mut infected_flags).set(idx);
                infection_times[idx] = Some(due);
                ever_infected += 1;
                activated = true;
                let host = self.spawn_host(idx);
                observer.on_infection(due, idx, host.locus);
                active.push(host);
            }

            if let Some(stop) = self.config.stop_at_fraction {
                if ever_infected as f64 / n as f64 >= stop {
                    break;
                }
            }
            // The outbreak can die out entirely under removal.
            if active.is_empty() && pending.is_empty() {
                break;
            }

            // Opened only after the break checks above so every step
            // span is closed; its duration still covers the whole step
            // (measured from `step_start`).
            #[cfg(feature = "telemetry")]
            let step_span = trace.as_mut().map(|t| t.open("step", step_index, 0, 0));
            #[cfg(feature = "telemetry")]
            let mut step_merge = Duration::ZERO;

            // Removal: infected hosts get patched/cleaned and turn
            // immune. Each host draws from its own stream, so outcomes
            // are independent of iteration interleaving.
            if removal_prob > 0.0 {
                let flags = Arc::make_mut(&mut removed_flags);
                active.retain_mut(|host| {
                    if host.rng.gen::<f64>() < removal_prob {
                        flags.set(host.id);
                        removed += 1;
                        false
                    } else {
                        true
                    }
                });
            }

            // Stages 1–3 (target-gen / routing / victim lookup), sharded
            // across the persistent pool when parallel. The ctx and all
            // its Arc clones are consumed inside `run_step`, so the
            // flag Arcs are unique again when the merge below mutates
            // them.
            let shard_count = {
                let ctx = StepCtx {
                    env: Arc::clone(&self.env),
                    population: Arc::clone(&self.population),
                    service,
                    time,
                    infected: Arc::clone(&infected_flags),
                    removed: Arc::clone(&removed_flags),
                    pending: Arc::clone(&pending_flags),
                };
                pipeline.run_step(executor, ctx, &mut active)
            };

            // Stage 4 (observe) and infection bookkeeping: serial merge
            // in fixed shard order.
            newly_infected.clear();
            #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
            for (shard, batch) in pipeline.batches_mut()[..shard_count].iter_mut().enumerate() {
                #[cfg(feature = "telemetry")]
                #[allow(clippy::disallowed_methods)]
                // telemetry-gated: legal clock site
                let t_batch = Instant::now();
                #[cfg(feature = "telemetry")]
                let obs_dur: Duration;
                ledger.merge(&batch.ledger);
                #[cfg(feature = "telemetry")]
                {
                    tel_target += batch.target_gen;
                    tel_route += batch.routing;
                    tel_lookup += batch.lookup;
                    if let Some(t) = trace.as_mut() {
                        let (s, lane) = (shard as u32, shard as u32 + 1);
                        t.leaf("target_gen", step_index, s, lane, batch.target_gen);
                        t.leaf("routing", step_index, s, lane, batch.routing);
                        t.leaf("lookup", step_index, s, lane, batch.lookup);
                    }
                    batch.target_gen = Duration::ZERO;
                    batch.routing = Duration::ZERO;
                    batch.lookup = Duration::ZERO;
                }
                #[cfg(feature = "telemetry")]
                #[allow(clippy::disallowed_methods)]
                // telemetry-gated: legal clock site
                let t_obs = Instant::now();
                observer.on_probe_batch(time, &batch.probes, &batch.ledger);
                #[cfg(feature = "telemetry")]
                {
                    obs_dur = t_obs.elapsed();
                    tel_observe += obs_dur;
                    if let Some(t) = trace.as_mut() {
                        t.leaf("observe", step_index, shard as u32, 0, obs_dur);
                    }
                }
                batch.ledger = DeliveryLedger::new();
                batch.probes.clear();

                // Candidates carry start-of-step flag state; re-check
                // against live flags so duplicates collapse exactly as
                // in a fully serial probe loop.
                for &v in &batch.candidates {
                    if infected_flags.get(v) || removed_flags.get(v) || pending_flags.get(v) {
                        continue;
                    }
                    let delay = latency.sample(&mut lat_rng);
                    if delay <= 0.0 {
                        Arc::make_mut(&mut infected_flags).set(v);
                        infection_times[v] = Some(time);
                        ever_infected += 1;
                        newly_infected.push(v);
                        observer.on_infection(time, v, self.population.locus(v));
                    } else {
                        Arc::make_mut(&mut pending_flags).set(v);
                        let due_us = ((time + delay) * 1e6) as u64;
                        pending.push(Reverse((due_us, v)));
                    }
                }
                batch.candidates.clear();
                // Everything in the batch body except the observer call
                // is merge work: ledger fold, candidate re-check,
                // latency draws, scratch resets.
                #[cfg(feature = "telemetry")]
                {
                    step_merge += t_batch.elapsed().saturating_sub(obs_dur);
                }
            }

            #[cfg(feature = "telemetry")]
            #[allow(clippy::disallowed_methods)] // telemetry-gated: legal clock site
            let t_spawn = Instant::now();
            for &idx in &newly_infected {
                active.push(self.spawn_host(idx));
            }
            if !newly_infected.is_empty() || activated || curve.is_empty() {
                curve.push(time, ever_infected as f64 / n as f64);
            }
            #[cfg(feature = "telemetry")]
            {
                // Host spawning and curve bookkeeping are part of the
                // serial merge tail.
                step_merge += t_spawn.elapsed();
                tel_merge += step_merge;
                let step = step_start.elapsed();
                step_micros.record(step.as_micros() as u64);
                peak_step = peak_step.max(step);
                if let Some(t) = trace.as_mut() {
                    t.leaf("merge", step_index, 0, 0, step_merge);
                    if let Some(span) = step_span {
                        t.close(span, step);
                    }
                }
                step_index += 1;
            }
        }
        curve.push(time, ever_infected as f64 / n as f64);
        #[cfg(feature = "telemetry")]
        if let Some(t) = trace.as_mut() {
            if let Some(span) = run_span {
                t.close(span, run_start.elapsed());
            }
        }

        SimResult {
            infected: ever_infected,
            removed,
            population: n,
            infection_curve: curve,
            probes_sent: ledger.probes(),
            ledger,
            infection_times,
            elapsed: time,
            #[cfg(feature = "telemetry")]
            telemetry: {
                let mut phases = PhaseTimes::new();
                phases.record("target_gen", tel_target);
                phases.record("routing", tel_route);
                phases.record("lookup", tel_lookup);
                phases.record("observe", tel_observe);
                phases.record("merge", tel_merge);
                // Pool-only phases, absent in effectively-serial runs:
                // how long workers sat parked between jobs, and the
                // dispatch-to-pickup wake latency.
                if let Some((park, wake)) = pipeline.pool_phases() {
                    phases.record("park", park);
                    phases.record("wake", wake);
                }
                EngineTelemetry {
                    phases,
                    step_micros,
                    peak_step_seconds: peak_step.as_secs_f64(),
                    trace,
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observers::{DropTally, NullObserver};
    use crate::population::apply_nat;
    use crate::worms::{CodeRed2Worm, HitListWorm, UniformWorm};
    use hotspots_ipspace::Ip;
    use hotspots_netmodel::{Delivery, DropReason, LatencyModel};
    use hotspots_targeting::HitList;

    /// A dense population inside one /16 so uniform worms still make
    /// progress at test scale.
    fn dense_population(n: u32) -> Population {
        Population::from_public((0..n).map(|i| Ip::new(0x0b0b_0000 + i)))
    }

    fn hitlist_config() -> SimConfig {
        SimConfig {
            scan_rate: 10.0,
            seeds: 5,
            dt: 1.0,
            max_time: 2_000.0,
            stop_at_fraction: Some(0.95),
            rng_seed: 99,
            ..SimConfig::default()
        }
    }

    fn hitlist() -> HitList {
        HitList::new(vec!["11.11.0.0/16".parse().unwrap()]).unwrap()
    }

    #[test]
    fn hitlist_outbreak_infects_population() {
        let pop = dense_population(400);
        let mut engine = Engine::new(
            hitlist_config(),
            pop,
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        assert!(
            result.infected_fraction() >= 0.95,
            "only {} infected",
            result.infected_fraction()
        );
        let first = result.infection_curve.iter().next().unwrap();
        assert!((first.1 - 5.0 / 400.0).abs() < 1e-9);
        let pts: Vec<(f64, f64)> = result.infection_curve.iter().collect();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve not monotone");
        }
        assert_eq!(result.removed, 0, "no removal configured");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(
                hitlist_config(),
                dense_population(300),
                Environment::new(),
                Box::new(HitListWorm::new(hitlist())),
            );
            engine.run(&mut NullObserver)
        };
        let a = run();
        let b = run();
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.infected, b.infected);
        assert_eq!(a.infection_times, b.infection_times);
    }

    #[test]
    fn pool_reuse_is_bit_identical_to_fresh_engines() {
        // Two back-to-back runs on ONE executor must match two runs on
        // fresh engines (and each other): the pool holds no simulation
        // state, and carrier/scratch reuse never leaks across runs.
        let config = SimConfig {
            threads: 4,
            ..hitlist_config()
        };
        let make = || {
            Engine::new(
                config,
                dense_population(300),
                Environment::new(),
                Box::new(HitListWorm::new(hitlist())),
            )
        };
        let fresh = make().run(&mut NullObserver);
        let mut pool = ShardExecutor::new(config.threads);
        let a = make().run_on(&mut pool, &mut NullObserver);
        let b = make().run_on(&mut pool, &mut NullObserver);
        for run in [&a, &b] {
            assert_eq!(run.probes_sent, fresh.probes_sent);
            assert_eq!(run.infected, fresh.infected);
            assert_eq!(run.removed, fresh.removed);
            assert_eq!(run.ledger, fresh.ledger);
            assert_eq!(run.infection_times, fresh.infection_times);
            assert_eq!(run.elapsed, fresh.elapsed);
        }
    }

    #[test]
    fn stop_fraction_halts_early() {
        let config = SimConfig {
            stop_at_fraction: Some(0.5),
            ..hitlist_config()
        };
        let mut engine = Engine::new(
            config,
            dense_population(400),
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        assert!(result.infected_fraction() >= 0.5);
        assert!(result.elapsed < 2_000.0, "did not stop early");
    }

    #[test]
    fn max_time_bounds_run() {
        let pop = dense_population(50);
        let config = SimConfig {
            scan_rate: 1.0,
            seeds: 1,
            dt: 1.0,
            max_time: 20.0,
            stop_at_fraction: None,
            rng_seed: 1,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, pop, Environment::new(), Box::new(UniformWorm));
        let result = engine.run(&mut NullObserver);
        assert!((result.elapsed - 20.0).abs() < 1.5);
        assert_eq!(result.probes_sent, 20);
    }

    #[test]
    fn fractional_scan_rates_accumulate() {
        let pop = dense_population(50);
        let config = SimConfig {
            scan_rate: 0.25,
            seeds: 1,
            dt: 1.0,
            max_time: 40.0,
            stop_at_fraction: None,
            rng_seed: 1,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, pop, Environment::new(), Box::new(UniformWorm));
        let result = engine.run(&mut NullObserver);
        assert_eq!(result.probes_sent, 10);
    }

    #[test]
    fn loss_injection_slows_infection() {
        let run = |loss: f64| {
            let mut env = Environment::new();
            env.set_loss(hotspots_netmodel::LossModel::new(loss).unwrap());
            let config = SimConfig {
                stop_at_fraction: Some(0.9),
                ..hitlist_config()
            };
            let mut engine = Engine::new(
                config,
                dense_population(300),
                env,
                Box::new(HitListWorm::new(hitlist())),
            );
            let result = engine.run(&mut NullObserver);
            result.time_to_fraction(0.9).unwrap_or(f64::INFINITY)
        };
        let clean = run(0.0);
        let lossy = run(0.8);
        assert!(
            lossy > clean * 1.5,
            "80% loss should clearly slow the outbreak: clean={clean} lossy={lossy}"
        );
    }

    #[test]
    fn blackhole_window_stalls_outbreak_and_is_accounted() {
        use hotspots_netmodel::{FaultEvent, FaultKind, FaultPlan, FaultWindow};
        let run = |blackhole_until: f64| {
            let mut env = Environment::new();
            if blackhole_until > 0.0 {
                let mut plan = FaultPlan::new();
                plan.push(FaultEvent::new(
                    FaultKind::Blackhole {
                        prefix: "11.11.0.0/16".parse().unwrap(),
                    },
                    FaultWindow::new(0.0, blackhole_until),
                ));
                env.set_faults(plan);
            }
            let config = SimConfig {
                stop_at_fraction: Some(0.9),
                ..hitlist_config()
            };
            let mut engine = Engine::new(
                config,
                dense_population(300),
                env,
                Box::new(HitListWorm::new(hitlist())),
            );
            engine.run(&mut NullObserver)
        };
        let clean = run(0.0);
        let faulted = run(40.0);
        // while the population prefix is blackholed nothing spreads, so
        // reaching 90% takes most of the window longer (the scanners'
        // generator state still advances during it)
        let clean_t = clean.time_to_fraction(0.9).unwrap();
        let faulted_t = faulted.time_to_fraction(0.9).unwrap();
        assert!(
            faulted_t >= clean_t + 30.0,
            "blackhole window should stall the outbreak: clean={clean_t} faulted={faulted_t}"
        );
        // every probe the blackhole consumed is filed under its verdict
        assert_eq!(
            clean
                .ledger
                .dropped(hotspots_netmodel::DropReason::UpstreamBlackhole),
            0
        );
        assert!(
            faulted
                .ledger
                .dropped(hotspots_netmodel::DropReason::UpstreamBlackhole)
                > 0
        );
        assert_eq!(
            faulted.ledger.delivered() + faulted.ledger.dropped_total(),
            faulted.ledger.probes()
        );
    }

    #[test]
    fn latency_delays_the_outbreak() {
        let run = |base: f64| {
            let mut env = Environment::new();
            env.set_latency(LatencyModel::new(base, 0.0).unwrap());
            let mut engine = Engine::new(
                hitlist_config(),
                dense_population(300),
                env,
                Box::new(HitListWorm::new(hitlist())),
            );
            let result = engine.run(&mut NullObserver);
            (
                result.time_to_fraction(0.5).unwrap_or(f64::INFINITY),
                result.infected_fraction(),
            )
        };
        let (instant, frac_a) = run(0.0);
        let (delayed, frac_b) = run(10.0);
        assert!(
            delayed > instant + 5.0,
            "10s infection latency should shift the curve: {instant} vs {delayed}"
        );
        // but not stop it
        assert!(frac_a >= 0.95 && frac_b >= 0.95);
    }

    #[test]
    fn latency_never_double_infects() {
        let mut env = Environment::new();
        env.set_latency(LatencyModel::new(0.5, 3.0).unwrap());
        let mut engine = Engine::new(
            hitlist_config(),
            dense_population(200),
            env,
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        let count = result.infection_times.iter().flatten().count();
        assert_eq!(count, result.infected);
        assert!(result.infected <= 200);
    }

    #[test]
    fn removal_above_threshold_kills_the_outbreak() {
        // R0 = (scan_rate·N/Ω) / γ: with γ large the epidemic dies early.
        let run = |removal_rate: f64| {
            let config = SimConfig {
                removal_rate,
                stop_at_fraction: None,
                max_time: 3_000.0,
                ..hitlist_config()
            };
            let mut engine = Engine::new(
                config,
                dense_population(400),
                Environment::new(),
                Box::new(HitListWorm::new(hitlist())),
            );
            engine.run(&mut NullObserver)
        };
        let no_removal = run(0.0);
        assert!(no_removal.infected_fraction() > 0.9);

        // β·N = 10/65536·400 ≈ 0.061/s; γ = 0.6 → R0 ≈ 0.1 ≪ 1
        let heavy = run(0.6);
        assert!(
            heavy.infected_fraction() < 0.2,
            "super-critical removal failed to contain: {}",
            heavy.infected_fraction()
        );
        assert!(heavy.removed > 0);
        assert!(
            heavy.elapsed < 3_000.0,
            "run should end when the outbreak dies"
        );

        // sub-critical removal slows but does not stop it
        let light = run(0.005);
        assert!(light.infected_fraction() > 0.5);
        assert!(light.removed > 0);
    }

    #[test]
    fn heterogeneous_rates_preserve_determinism() {
        let run = |sigma: f64| {
            let config = SimConfig {
                scan_rate_sigma: sigma,
                ..hitlist_config()
            };
            let mut engine = Engine::new(
                config,
                dense_population(300),
                Environment::new(),
                Box::new(HitListWorm::new(hitlist())),
            );
            engine.run(&mut NullObserver)
        };
        let a = run(1.0);
        let b = run(1.0);
        assert_eq!(a.probes_sent, b.probes_sent, "dispersed runs must replay");
        assert!(a.infected_fraction() > 0.9, "dispersion should not stall");
    }

    #[test]
    fn nat_blocks_external_infection_but_allows_internal() {
        let mut env = Environment::new();
        let mut nat_rng = StdRng::seed_from_u64(5);
        let publics: Vec<Ip> = (0..50u32).map(|i| Ip::new(0x0c0c_0000 + i)).collect();
        let loci = apply_nat(&mut env, &publics, 1.0, &mut nat_rng);
        let pop = Population::from_loci(loci);
        let config = SimConfig {
            scan_rate: 50.0,
            seeds: 1,
            dt: 1.0,
            max_time: 400.0,
            stop_at_fraction: None,
            rng_seed: 3,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, pop, env, Box::new(CodeRed2Worm));
        let mut tally = DropTally::new();
        let result = engine.run(&mut tally);
        assert_eq!(result.infected, 1);
        assert!(tally.dropped(DropReason::UnroutableDestination) > 0);
    }

    #[test]
    fn infection_times_are_consistent() {
        let mut engine = Engine::new(
            hitlist_config(),
            dense_population(200),
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        let infected_count = result
            .infection_times
            .iter()
            .filter(|t| t.is_some())
            .count();
        assert_eq!(infected_count, result.infected);
        let zeros = result
            .infection_times
            .iter()
            .filter(|t| **t == Some(0.0))
            .count();
        assert_eq!(zeros, 5);
    }

    #[test]
    #[should_panic(expected = "population smaller than seed count")]
    fn seed_count_validated() {
        let _ = Engine::new(
            SimConfig {
                seeds: 100,
                ..SimConfig::default()
            },
            dense_population(10),
            Environment::new(),
            Box::new(UniformWorm),
        );
    }

    #[test]
    #[should_panic(expected = "removal_rate")]
    fn negative_removal_rate_rejected() {
        let _ = Engine::new(
            SimConfig {
                removal_rate: -0.1,
                ..SimConfig::default()
            },
            dense_population(30),
            Environment::new(),
            Box::new(UniformWorm),
        );
    }

    #[test]
    fn ledger_accounts_for_every_probe() {
        let mut env = Environment::new();
        env.set_loss(hotspots_netmodel::LossModel::new(0.3).unwrap());
        let mut engine = Engine::new(
            hitlist_config(),
            dense_population(200),
            env,
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        assert_eq!(result.ledger.probes(), result.probes_sent);
        assert_eq!(
            result.ledger.delivered() + result.ledger.dropped_total(),
            result.probes_sent
        );
        assert!(result.ledger.dropped(DropReason::PacketLoss) > 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_feature_collects_phase_times() {
        let mut engine = Engine::new(
            hitlist_config(),
            dense_population(200),
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        let tel = &result.telemetry;
        for phase in ["target_gen", "routing", "lookup", "observe", "merge"] {
            assert_eq!(tel.phases.spans(phase), 1, "{phase} missing");
        }
        assert!(tel.step_micros.count() > 0);
        assert!(tel.peak_step_seconds > 0.0);
        assert!(
            tel.peak_step_seconds * 1e6 >= tel.step_micros.max().unwrap() as f64,
            "peak must bound the histogram"
        );
        assert!(tel.trace.is_none(), "no trace unless SimConfig::trace");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn trace_spans_are_balanced_and_deterministic() {
        let run_once = || {
            let mut engine = Engine::new(
                SimConfig {
                    trace: true,
                    ..hitlist_config()
                },
                dense_population(200),
                Environment::new(),
                Box::new(HitListWorm::new(hitlist())),
            );
            engine.run(&mut NullObserver)
        };
        let a = run_once();
        let b = run_once();
        let ta = a.telemetry.trace.as_ref().expect("trace requested");
        let tb = b.telemetry.trace.as_ref().expect("trace requested");
        assert!(ta.is_balanced(), "open/close spans must balance");
        assert!(!ta.is_empty());
        let names: Vec<&str> = ta.spans().iter().map(|s| s.name).collect();
        for expected in [
            "run",
            "step",
            "target_gen",
            "routing",
            "lookup",
            "observe",
            "merge",
        ] {
            assert!(names.contains(&expected), "missing {expected} span");
        }
        // Determinism contract: identical runs produce identical span
        // sequences — IDs, names, coordinates — differing only in the
        // dur_micros timing fields.
        let shape = |t: &hotspots_telemetry::TraceSink| {
            t.spans()
                .iter()
                .map(|s| (s.id, s.name, s.step, s.shard, s.track, s.depth, s.parent))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(ta), shape(tb));
    }

    #[cfg(all(feature = "telemetry", feature = "parallel"))]
    #[test]
    fn trace_attributes_shards_in_parallel_runs() {
        let mut engine = Engine::new(
            SimConfig {
                trace: true,
                threads: 4,
                ..hitlist_config()
            },
            dense_population(200),
            Environment::new(),
            Box::new(HitListWorm::new(hitlist())),
        );
        let result = engine.run(&mut NullObserver);
        let trace = result.telemetry.trace.as_ref().expect("trace requested");
        assert!(trace.is_balanced());
        let shards: std::collections::BTreeSet<u32> = trace
            .spans()
            .iter()
            .filter(|s| s.name == "target_gen")
            .map(|s| s.shard)
            .collect();
        assert!(
            shards.len() > 1,
            "expected multi-shard attribution, got {shards:?}"
        );
        assert!(result.telemetry.phases.total("merge") > Duration::ZERO);
    }

    #[test]
    fn observer_sees_every_probe() {
        #[derive(Default)]
        struct Counter(u64);
        impl SimObserver for Counter {
            fn on_probe(&mut self, _t: f64, _s: Ip, _d: Delivery) {
                self.0 += 1;
            }
        }
        let pop = dense_population(50);
        let config = SimConfig {
            scan_rate: 3.0,
            seeds: 2,
            dt: 1.0,
            max_time: 10.0,
            stop_at_fraction: None,
            rng_seed: 8,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, pop, Environment::new(), Box::new(UniformWorm));
        let mut counter = Counter::default();
        let result = engine.run(&mut counter);
        assert_eq!(counter.0, result.probes_sent);
    }
}
