//! Observer hooks: what watches the probe stream.

use std::collections::BTreeMap;

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, DeliveryLedger, DropReason, Locus, Proto, Service};
use hotspots_telescope::{DetectorField, Observatory};

/// A passive observer of the outbreak's probe and infection stream.
///
/// The engine is generic over its observer, so observation costs nothing
/// when unused ([`NullObserver`]) and composes by nesting (tuples of
/// observers are observers).
pub trait SimObserver {
    /// Called for every probe after routing: the source as seen on the
    /// wire and the delivery verdict.
    fn on_probe(&mut self, time: f64, public_src: Ip, delivery: Delivery);

    /// Called once per engine pipeline batch with every probe routed in
    /// it, in emission order. All probes in a batch share one simulation
    /// step, hence one `time`. `ledger` holds the verdict counts for
    /// exactly these probes, already aggregated by the routing stage —
    /// accounting observers can merge it instead of re-tallying the
    /// slice.
    ///
    /// The default delegates to [`SimObserver::on_probe`] per probe, so
    /// per-probe observers keep exact accounting without changes;
    /// observers with per-probe overhead can override the batch hook
    /// instead.
    fn on_probe_batch(&mut self, time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        let _ = ledger;
        for &(public_src, delivery) in probes {
            self.on_probe(time, public_src, delivery);
        }
    }

    /// Called when a host becomes infected.
    fn on_infection(&mut self, time: f64, host: usize, locus: Locus) {
        let _ = (time, host, locus);
    }
}

/// An observer that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    #[inline]
    fn on_probe(&mut self, _time: f64, _public_src: Ip, _delivery: Delivery) {}

    #[inline]
    fn on_probe_batch(&mut self, _time: f64, _probes: &[(Ip, Delivery)], _ledger: &DeliveryLedger) {
    }
}

/// Observers can be borrowed across runs instead of moved into each one.
impl<T: SimObserver + ?Sized> SimObserver for &mut T {
    #[inline]
    fn on_probe(&mut self, time: f64, public_src: Ip, delivery: Delivery) {
        (**self).on_probe(time, public_src, delivery);
    }

    #[inline]
    fn on_probe_batch(&mut self, time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        (**self).on_probe_batch(time, probes, ledger);
    }

    #[inline]
    fn on_infection(&mut self, time: f64, host: usize, locus: Locus) {
        (**self).on_infection(time, host, locus);
    }
}

/// Boxed (dynamically chosen) observers are observers.
impl<T: SimObserver + ?Sized> SimObserver for Box<T> {
    #[inline]
    fn on_probe(&mut self, time: f64, public_src: Ip, delivery: Delivery) {
        (**self).on_probe(time, public_src, delivery);
    }

    #[inline]
    fn on_probe_batch(&mut self, time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        (**self).on_probe_batch(time, probes, ledger);
    }

    #[inline]
    fn on_infection(&mut self, time: f64, host: usize, locus: Locus) {
        (**self).on_infection(time, host, locus);
    }
}

impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    fn on_probe(&mut self, time: f64, public_src: Ip, delivery: Delivery) {
        self.0.on_probe(time, public_src, delivery);
        self.1.on_probe(time, public_src, delivery);
    }

    fn on_infection(&mut self, time: f64, host: usize, locus: Locus) {
        self.0.on_infection(time, host, locus);
        self.1.on_infection(time, host, locus);
    }
}

/// Feeds publicly delivered probes into a [`DetectorField`]
/// (the Figure 5 sensor fields).
#[derive(Debug)]
pub struct FieldObserver {
    field: DetectorField,
    /// Whether the worm's first packet carries its payload (UDP yes,
    /// TCP no) — what passive sensors can identify.
    first_packet_payload: bool,
}

impl FieldObserver {
    /// Wraps a detector field, treating every probe's payload as
    /// identifiable (the right model for active sensor fields).
    pub fn new(field: DetectorField) -> FieldObserver {
        FieldObserver {
            field,
            first_packet_payload: true,
        }
    }

    /// Wraps a detector field for a worm probing `service`: payload
    /// visibility at passive sensors follows the transport (UDP worms
    /// carry their payload in the first packet; TCP worms do not).
    pub fn with_service(field: DetectorField, service: Service) -> FieldObserver {
        FieldObserver {
            field,
            first_packet_payload: service.proto() == Proto::Udp,
        }
    }

    /// The wrapped field (for reading alert state after a run).
    pub fn field(&self) -> &DetectorField {
        &self.field
    }

    /// Consumes the observer, returning the field.
    pub fn into_field(self) -> DetectorField {
        self.field
    }
}

impl SimObserver for FieldObserver {
    #[inline]
    fn on_probe(&mut self, time: f64, _public_src: Ip, delivery: Delivery) {
        if let Delivery::Public(dst) = delivery {
            self.field
                .observe_packet(time, dst, self.first_packet_payload);
        }
    }
}

/// Feeds publicly delivered probes into an [`Observatory`]
/// (the IMS-style measurement figures).
#[derive(Debug)]
pub struct TelescopeObserver {
    observatory: Observatory,
}

impl TelescopeObserver {
    /// Wraps an observatory.
    pub fn new(observatory: Observatory) -> TelescopeObserver {
        TelescopeObserver { observatory }
    }

    /// The wrapped observatory.
    pub fn observatory(&self) -> &Observatory {
        &self.observatory
    }

    /// Consumes the observer, returning the observatory.
    pub fn into_observatory(self) -> Observatory {
        self.observatory
    }
}

impl SimObserver for TelescopeObserver {
    #[inline]
    fn on_probe(&mut self, time: f64, public_src: Ip, delivery: Delivery) {
        if let Delivery::Public(dst) = delivery {
            self.observatory.observe(time, public_src, dst);
        }
    }
}

/// Counts drops by reason (failure-injection analysis).
#[derive(Debug, Clone, Default)]
pub struct DropTally {
    counts: BTreeMap<DropReason, u64>,
    delivered: u64,
}

impl DropTally {
    /// Creates an empty tally.
    pub fn new() -> DropTally {
        DropTally::default()
    }

    /// Count of drops with the given reason.
    pub fn dropped(&self, reason: DropReason) -> u64 {
        self.counts.get(&reason).copied().unwrap_or(0)
    }

    /// Count of probes that were delivered (publicly or locally).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl SimObserver for DropTally {
    fn on_probe(&mut self, _time: f64, _public_src: Ip, delivery: Delivery) {
        match delivery {
            Delivery::Dropped(reason) => *self.counts.entry(reason).or_insert(0) += 1,
            Delivery::Public(_) | Delivery::Local { .. } => self.delivered += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_ipspace::AddressBlock;

    #[test]
    fn null_observer_is_inert() {
        let mut o = NullObserver;
        o.on_probe(0.0, Ip::MIN, Delivery::Public(Ip::MAX));
        o.on_infection(0.0, 3, Locus::Public(Ip::MIN));
    }

    #[test]
    fn tuple_observer_fans_out() {
        let mut pair = (DropTally::new(), DropTally::new());
        pair.on_probe(0.0, Ip::MIN, Delivery::Dropped(DropReason::PacketLoss));
        assert_eq!(pair.0.dropped(DropReason::PacketLoss), 1);
        assert_eq!(pair.1.dropped(DropReason::PacketLoss), 1);
    }

    #[test]
    fn borrowed_and_boxed_observers_delegate() {
        let mut tally = DropTally::new();
        {
            let borrowed: &mut DropTally = &mut tally;
            borrowed.on_probe(0.0, Ip::MIN, Delivery::Public(Ip::MAX));
        }
        // same observer, reused after the borrow ended (the engine can
        // take `&mut tally` once per run instead of consuming it)
        {
            let borrowed: &mut DropTally = &mut tally;
            borrowed.on_probe(1.0, Ip::MIN, Delivery::Dropped(DropReason::PacketLoss));
        }
        assert_eq!(tally.delivered(), 1);
        assert_eq!(tally.dropped(DropReason::PacketLoss), 1);

        let mut boxed: Box<dyn SimObserver> = Box::new(DropTally::new());
        boxed.on_probe(0.0, Ip::MIN, Delivery::Public(Ip::MAX));
        boxed.on_infection(0.0, 1, Locus::Public(Ip::MIN));
    }

    #[test]
    fn field_observer_counts_public_only() {
        let field = DetectorField::new(vec!["10.0.0.0/24".parse().unwrap()], 1);
        let mut obs = FieldObserver::new(field);
        let dst = Ip::from_octets(10, 0, 0, 5);
        obs.on_probe(1.0, Ip::MIN, Delivery::Dropped(DropReason::EgressFiltered));
        assert_eq!(obs.field().alerted(), 0);
        obs.on_probe(2.0, Ip::MIN, Delivery::Public(dst));
        assert_eq!(obs.field().alerted(), 1);
    }

    #[test]
    fn passive_field_blind_to_tcp_worms_via_with_service() {
        use hotspots_telescope::SensorMode;
        let blocks: Vec<hotspots_ipspace::Prefix> = vec!["10.0.0.0/24".parse().unwrap()];
        let dst = Ip::from_octets(10, 0, 0, 5);
        // TCP worm against a passive field: never alerts
        let passive = DetectorField::with_mode(blocks.clone(), 1, SensorMode::Passive);
        let mut obs = FieldObserver::with_service(passive, Service::BLASTER_RPC);
        obs.on_probe(1.0, Ip::MIN, Delivery::Public(dst));
        assert_eq!(obs.field().alerted(), 0);
        // UDP worm against the same passive field: alerts
        let passive = DetectorField::with_mode(blocks.clone(), 1, SensorMode::Passive);
        let mut obs = FieldObserver::with_service(passive, Service::SLAMMER_SQL);
        obs.on_probe(1.0, Ip::MIN, Delivery::Public(dst));
        assert_eq!(obs.field().alerted(), 1);
        // TCP worm against an active field: alerts (the IMS design)
        let active = DetectorField::with_mode(blocks, 1, SensorMode::Active);
        let mut obs = FieldObserver::with_service(active, Service::BLASTER_RPC);
        obs.on_probe(1.0, Ip::MIN, Delivery::Public(dst));
        assert_eq!(obs.field().alerted(), 1);
    }

    #[test]
    fn telescope_observer_records() {
        let obs_inner = Observatory::new(vec![AddressBlock::new(
            "T",
            "198.51.100.0/24".parse().unwrap(),
        )]);
        let mut obs = TelescopeObserver::new(obs_inner);
        obs.on_probe(
            0.5,
            Ip::from_octets(4, 4, 4, 4),
            Delivery::Public(Ip::from_octets(198, 51, 100, 9)),
        );
        assert_eq!(
            obs.observatory()
                .log_by_label("T")
                .unwrap()
                .unique_source_count(),
            1
        );
    }

    #[test]
    fn drop_tally_separates_outcomes() {
        let mut tally = DropTally::new();
        tally.on_probe(0.0, Ip::MIN, Delivery::Public(Ip::MAX));
        tally.on_probe(
            0.0,
            Ip::MIN,
            Delivery::Local {
                realm: hotspots_netmodel::RealmId(0),
                ip: Ip::MIN,
            },
        );
        tally.on_probe(0.0, Ip::MIN, Delivery::Dropped(DropReason::IngressFiltered));
        assert_eq!(tally.delivered(), 2);
        assert_eq!(tally.dropped(DropReason::IngressFiltered), 1);
        assert_eq!(tally.dropped(DropReason::PacketLoss), 0);
    }
}
