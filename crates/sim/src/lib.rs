//! Discrete-time worm outbreak engine with per-probe fidelity.
//!
//! Hotspots are per-address phenomena, so this simulator models every
//! probe individually instead of integrating an epidemic ODE: each
//! infected host owns a faithful target generator
//! (`hotspots-targeting`), every generated target is routed through the
//! network environment (`hotspots-netmodel`), and observers — telescopes
//! and detector fields (`hotspots-telescope`) — see exactly the probes a
//! real deployment would.
//!
//! The paper's Figure 5 parameters are the defaults: 10 probes/second per
//! infected host, 25 random seed hosts.
//!
//! # Examples
//!
//! ```
//! use hotspots_sim::{Engine, NullObserver, Population, SimConfig, UniformWorm};
//!
//! // A toy uniform outbreak over a dense /16: every probe that lands in
//! // the population infects.
//! let pop = Population::from_public(
//!     (0..500u32).map(|i| hotspots_ipspace::Ip::new(0x0a00_0000 + i * 131)),
//! );
//! let config = SimConfig {
//!     scan_rate: 10.0,
//!     seeds: 5,
//!     max_time: 50.0,
//!     ..SimConfig::default()
//! };
//! let mut engine = Engine::new(config, pop, Default::default(), Box::new(UniformWorm));
//! let result = engine.run(&mut NullObserver);
//! assert!(result.probes_sent > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bitset;
mod engine;
mod executor;
mod ipmap;
mod observers;
mod population;
mod telemetry;
mod worms;

pub use bitset::HostBits;
#[cfg(feature = "telemetry")]
pub use engine::EngineTelemetry;
pub use engine::{Engine, SimConfig, SimResult};
pub use executor::ShardExecutor;
pub use ipmap::IpMap;
pub use observers::{DropTally, FieldObserver, NullObserver, SimObserver, TelescopeObserver};
pub use population::{
    apply_nat, apply_nat_shared, canonical_parts, occupied_slash16s, paper_codered_population,
    synthetic_codered_population, zipf_slash8_population, Population, PopulationError,
    PublicAddresses,
};
pub use telemetry::{fold_ledger, TelemetryObserver};
pub use worms::{
    BlasterWorm, BotWorm, CodeRed2Worm, HitListWorm, LocalPreferenceWorm, SlammerWorm, UniformWorm,
    WormModel,
};
