//! Vulnerable populations and their placement in the topology.
//!
//! A [`Population`] hides one of two stores behind the same lookup API:
//!
//! * the **dense** store — per-host [`Locus`] records plus an
//!   open-addressed address→id hash index ([`IpMap`]) and a flat /16
//!   occupancy bitmap pre-filter. Supports arbitrary locus orderings
//!   (NAT topologies interleave public and private hosts) at ~28 bytes
//!   per host.
//! * the **compressed** store — public addresses held in a rank-indexed
//!   [`HostSet`] (/8 → /16 → /24 occupancy hierarchy, ~1 byte per
//!   host). Host ids for public hosts *are* their ranks in sorted
//!   address order, so `find_public` is a hierarchy probe + rank query
//!   with no hash table at all; private (NATed) hosts follow the public
//!   block. This is the store Internet-scale populations (1M+ hosts)
//!   run on.
//!
//! Both stores answer [`Population::find_public`],
//! [`Population::find_private`], and [`Population::locus`] identically;
//! the engine is store-agnostic and results are bit-identical (see the
//! cross-store suite in `hotspots-scenario`).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use hotspots_ipspace::{special, HostSet, HostSetError, HostSetIter, Ip, Prefix};
use hotspots_netmodel::{Environment, Locus, NatRealm, RealmId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ipmap::IpMap;

/// Error returned by the fallible [`Population`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationError {
    /// Two hosts share an address (public, or private within one realm).
    Duplicate {
        /// The clashing locus.
        locus: Locus,
    },
    /// The compressed store requires its public addresses in ascending
    /// order; this one was not.
    UnsortedPublic {
        /// The out-of-order address.
        ip: Ip,
    },
    /// More hosts than the 32-bit host-id space.
    TooLarge {
        /// The offending host count.
        hosts: usize,
    },
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopulationError::Duplicate { locus } => {
                write!(f, "duplicate host address at {locus}")
            }
            PopulationError::UnsortedPublic { ip } => {
                write!(
                    f,
                    "public address {ip} out of sorted order for the compressed store"
                )
            }
            PopulationError::TooLarge { hosts } => {
                write!(f, "{hosts} hosts exceed the 32-bit host-id space")
            }
        }
    }
}

impl Error for PopulationError {}

impl From<HostSetError> for PopulationError {
    fn from(e: HostSetError) -> PopulationError {
        match e {
            HostSetError::Duplicate { ip, .. } => PopulationError::Duplicate {
                locus: Locus::Public(ip),
            },
            HostSetError::Unsorted { ip, .. } => PopulationError::UnsortedPublic { ip },
        }
    }
}

/// The two population representations. See the [module docs](self).
#[derive(Debug, Clone)]
enum Store {
    Dense {
        loci: Vec<Locus>,
        public_index: IpMap,
        /// Occupancy bitmap over /16 prefixes of the public hosts
        /// (8 KiB, cache-resident). Worm scans cover far more address
        /// space than any population occupies, so most `find_public`
        /// calls are misses; one bit test rejects them without touching
        /// the hash table.
        public_slash16: Box<[u64; 1024]>,
    },
    Compressed {
        /// Public hosts; host id = rank in sorted address order.
        public: HostSet,
        /// Private hosts, ids `public.len()..len`, in input order.
        private_loci: Vec<(RealmId, Ip)>,
    },
}

/// The vulnerable host population: each host's [`Locus`] plus fast
/// address→host lookup for probe resolution.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_sim::Population;
///
/// let pop = Population::from_public([Ip::from_octets(10, 0, 0, 1)]);
/// assert_eq!(pop.len(), 1);
/// assert_eq!(pop.find_public(Ip::from_octets(10, 0, 0, 1)), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    store: Store,
    /// (realm, private ip) → host, keyed by realm in the outer map.
    /// A `BTreeMap` so any iteration over realms is deterministic by
    /// construction.
    realm_index: BTreeMap<RealmId, IpMap>,
}

impl Population {
    /// Builds a population of directly connected public hosts.
    ///
    /// # Panics
    ///
    /// Panics on duplicate addresses; [`Population::try_from_public`]
    /// is the fallible form.
    pub fn from_public<I: IntoIterator<Item = Ip>>(addrs: I) -> Population {
        Population::from_loci(addrs.into_iter().map(Locus::Public))
    }

    /// Builds a population from explicit loci.
    ///
    /// # Panics
    ///
    /// Panics if two hosts share an address (public, or private within
    /// one realm); [`Population::try_from_loci`] is the fallible form.
    pub fn from_loci<I: IntoIterator<Item = Locus>>(loci: I) -> Population {
        match Population::try_from_loci(loci) {
            Ok(pop) => pop,
            Err(e) => panic!("{e}"), // hotspots-lint: allow(panic-path) reason="documented panicking constructor; the scenario build path uses try_from_loci"
        }
    }

    /// Builds a dense-store population of public hosts, reporting
    /// duplicates as typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::Duplicate`] on address clashes.
    pub fn try_from_public<I: IntoIterator<Item = Ip>>(
        addrs: I,
    ) -> Result<Population, PopulationError> {
        Population::try_from_loci(addrs.into_iter().map(Locus::Public))
    }

    /// Builds a dense-store population from explicit loci, reporting
    /// duplicates as typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::Duplicate`] if two hosts share an
    /// address (public, or private within one realm), and
    /// [`PopulationError::TooLarge`] past 2³² hosts.
    pub fn try_from_loci<I: IntoIterator<Item = Locus>>(
        loci: I,
    ) -> Result<Population, PopulationError> {
        let loci: Vec<Locus> = loci.into_iter().collect();
        if u32::try_from(loci.len()).is_err() {
            return Err(PopulationError::TooLarge { hosts: loci.len() });
        }
        let mut public_index = IpMap::with_capacity(loci.len());
        let mut realm_index: BTreeMap<RealmId, IpMap> = BTreeMap::new();
        let mut public_slash16 = Box::new([0u64; 1024]);
        for (i, locus) in loci.iter().enumerate() {
            let idx = i as u32;
            let clash = match *locus {
                Locus::Public(ip) => {
                    let slash16 = (ip.value() >> 16) as usize;
                    public_slash16[slash16 >> 6] |= 1u64 << (slash16 & 63);
                    public_index.insert(ip.value(), idx)
                }
                Locus::Private { realm, ip } => realm_index
                    .entry(realm)
                    .or_insert_with(|| IpMap::with_capacity(16))
                    .insert(ip.value(), idx),
            };
            if clash.is_some() {
                return Err(PopulationError::Duplicate { locus: *locus });
            }
        }
        Ok(Population {
            store: Store::Dense {
                loci,
                public_index,
                public_slash16,
            },
            realm_index,
        })
    }

    /// Builds a compressed-store population of public hosts. Host ids
    /// are ranks in sorted address order, so `public` must be strictly
    /// ascending.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::UnsortedPublic`] /
    /// [`PopulationError::Duplicate`] when the input is not strictly
    /// ascending.
    pub fn try_compressed_from_public(public: &[Ip]) -> Result<Population, PopulationError> {
        Population::try_compressed_from_parts(public, [])
    }

    /// Builds a compressed-store population from strictly ascending
    /// public addresses plus private (NATed) hosts. Public host ids are
    /// ranks `0..public.len()`; private hosts take the following ids in
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::UnsortedPublic`] when `public` is not
    /// ascending, [`PopulationError::Duplicate`] on any address clash,
    /// and [`PopulationError::TooLarge`] past 2³² hosts.
    pub fn try_compressed_from_parts<I: IntoIterator<Item = (RealmId, Ip)>>(
        public: &[Ip],
        private: I,
    ) -> Result<Population, PopulationError> {
        let set = HostSet::from_sorted_unique(public)?;
        let private_loci: Vec<(RealmId, Ip)> = private.into_iter().collect();
        let total = public.len() + private_loci.len();
        if u32::try_from(total).is_err() {
            return Err(PopulationError::TooLarge { hosts: total });
        }
        let mut realm_index: BTreeMap<RealmId, IpMap> = BTreeMap::new();
        for (i, &(realm, ip)) in private_loci.iter().enumerate() {
            let idx = (public.len() + i) as u32;
            let clash = realm_index
                .entry(realm)
                .or_insert_with(|| IpMap::with_capacity(16))
                .insert(ip.value(), idx);
            if clash.is_some() {
                return Err(PopulationError::Duplicate {
                    locus: Locus::Private { realm, ip },
                });
            }
        }
        Ok(Population {
            store: Store::Compressed {
                public: set,
                private_loci,
            },
            realm_index,
        })
    }

    /// Number of vulnerable hosts.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Dense { loci, .. } => loci.len(),
            Store::Compressed {
                public,
                private_loci,
            } => public.len() as usize + private_loci.len(),
        }
    }

    /// Returns `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of public (directly connected) hosts.
    pub fn public_len(&self) -> usize {
        match &self.store {
            Store::Dense { public_index, .. } => public_index.len(),
            Store::Compressed { public, .. } => public.len() as usize,
        }
    }

    /// The locus of host `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn locus(&self, id: usize) -> Locus {
        match &self.store {
            Store::Dense { loci, .. } => loci[id],
            Store::Compressed {
                public,
                private_loci,
            } => {
                let npub = public.len() as usize;
                if id < npub {
                    match public.select(id as u32) {
                        Some(ip) => Locus::Public(ip),
                        None => unreachable!("rank {id} below set length"),
                    }
                } else {
                    let (realm, ip) = private_loci[id - npub];
                    Locus::Private { realm, ip }
                }
            }
        }
    }

    /// Finds the host with public address `ip`, if any.
    #[inline]
    pub fn find_public(&self, ip: Ip) -> Option<usize> {
        match &self.store {
            Store::Dense {
                public_index,
                public_slash16,
                ..
            } => {
                let slash16 = (ip.value() >> 16) as usize;
                if public_slash16[slash16 >> 6] & (1u64 << (slash16 & 63)) == 0 {
                    return None;
                }
                public_index.get(ip.value()).map(|v| v as usize)
            }
            Store::Compressed { public, .. } => public.find(ip).map(|rank| rank as usize),
        }
    }

    /// Finds the host with private address `ip` inside `realm`, if any.
    #[inline]
    pub fn find_private(&self, realm: RealmId, ip: Ip) -> Option<usize> {
        self.realm_index
            .get(&realm)
            .and_then(|m| m.get(ip.value()))
            .map(|v| v as usize)
    }

    /// Iterates the public addresses of all public hosts without
    /// allocating (the hit-list and placement builders' input).
    ///
    /// Order is store-defined: insertion order on the dense store, rank
    /// (ascending address) order on the compressed store.
    pub fn public_addresses_iter(&self) -> PublicAddresses<'_> {
        PublicAddresses {
            inner: match &self.store {
                Store::Dense { loci, .. } => PublicAddressesInner::Dense(loci.iter()),
                Store::Compressed { public, .. } => PublicAddressesInner::Compressed(public.iter()),
            },
        }
    }

    /// Which store backs this population: `"dense"` or `"compressed"`.
    pub fn store_label(&self) -> &'static str {
        match &self.store {
            Store::Dense { .. } => "dense",
            Store::Compressed { .. } => "compressed",
        }
    }

    /// Heap bytes held by the store and its indices. Deterministic
    /// (computed from capacities, no allocator probing) — the number
    /// `BENCH_engine.json` records as `store_bytes`.
    pub fn store_bytes(&self) -> usize {
        let realm_bytes: usize = self.realm_index.values().map(IpMap::heap_bytes).sum();
        let store = match &self.store {
            Store::Dense {
                loci,
                public_index,
                public_slash16,
            } => {
                loci.capacity() * std::mem::size_of::<Locus>()
                    + public_index.heap_bytes()
                    + std::mem::size_of_val(&**public_slash16)
            }
            Store::Compressed {
                public,
                private_loci,
            } => {
                public.heap_bytes() + private_loci.capacity() * std::mem::size_of::<(RealmId, Ip)>()
            }
        };
        store + realm_bytes
    }

    /// What the same population would cost in the dense store: per-host
    /// `Locus` records, the public hash index at its power-of-two table
    /// size, and the flat /16 bitmap. The compressed-vs-dense memory
    /// ratio in `BENCH_engine.json` is `store_bytes / this`.
    pub fn dense_equivalent_bytes(&self) -> usize {
        let realm_bytes: usize = self.realm_index.values().map(IpMap::heap_bytes).sum();
        self.len() * std::mem::size_of::<Locus>()
            + IpMap::table_bytes_for(self.len())
            + std::mem::size_of::<[u64; 1024]>()
            + realm_bytes
    }
}

/// Non-allocating iterator over a population's public addresses,
/// created by [`Population::public_addresses_iter`].
#[derive(Debug, Clone)]
pub struct PublicAddresses<'a> {
    inner: PublicAddressesInner<'a>,
}

#[derive(Debug, Clone)]
enum PublicAddressesInner<'a> {
    Dense(std::slice::Iter<'a, Locus>),
    Compressed(HostSetIter<'a>),
}

impl Iterator for PublicAddresses<'_> {
    type Item = Ip;

    fn next(&mut self) -> Option<Ip> {
        match &mut self.inner {
            PublicAddressesInner::Dense(iter) => iter.find_map(|locus| match locus {
                Locus::Public(ip) => Some(*ip),
                Locus::Private { .. } => None,
            }),
            PublicAddressesInner::Compressed(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            PublicAddressesInner::Dense(iter) => (0, Some(iter.len())),
            PublicAddressesInner::Compressed(iter) => iter.size_hint(),
        }
    }
}

/// Splits loci into the compressed store's canonical shape: sorted
/// public addresses first, then private hosts in input order. Feeding
/// the canonical shape to [`Population::from_loci`] (as
/// `Locus::Public` entries followed by `Locus::Private`) and to
/// [`Population::try_compressed_from_parts`] yields identical host-id
/// assignments, which is what the cross-store bit-identity tests pin.
pub fn canonical_parts(loci: &[Locus]) -> (Vec<Ip>, Vec<(RealmId, Ip)>) {
    let mut public = Vec::new();
    let mut private = Vec::new();
    for locus in loci {
        match *locus {
            Locus::Public(ip) => public.push(ip),
            Locus::Private { realm, ip } => private.push((realm, ip)),
        }
    }
    public.sort_unstable();
    (public, private)
}

/// Synthesizes a CodeRedII-style vulnerable population: `n` unique public
/// addresses clustered into `slash8s` /8 networks with a Zipf-like
/// weighting (the paper's population: 134,586 addresses in 47 /8s, with
/// the top 20 /8s holding 94% of hosts), and within each /8 clustered
/// into a handful of /16s.
///
/// Returned addresses are globally routable, deduplicated, and sorted.
///
/// # Panics
///
/// Panics if `n == 0` or `slash8s == 0` or `slash8s > 200`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let pop = hotspots_sim::synthetic_codered_population(10_000, 47, &mut rng);
/// assert_eq!(pop.len(), 10_000);
/// ```
pub fn synthetic_codered_population<R: Rng + ?Sized>(
    n: usize,
    slash8s: usize,
    rng: &mut R,
) -> Vec<Ip> {
    assert!(n > 0, "population size must be positive");
    assert!((1..=200).contains(&slash8s), "slash8s out of range");

    // Choose distinct routable /8s.
    let mut first_octets: Vec<u8> = (1u8..224)
        .filter(|&o| {
            let probe = Ip::from_octets(o, 1, 0, 0);
            special::is_globally_routable(probe)
        })
        .collect();
    first_octets.shuffle(rng);
    first_octets.truncate(slash8s);

    // Zipf-ish weights: tuned so ~20 of 47 /8s hold ≈94% of hosts.
    const ZIPF_EXPONENT: f64 = 1.9;
    let weights: Vec<f64> = (0..slash8s)
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    // Each /8 clusters its hosts into a few /16s.
    let mut out: std::collections::BTreeSet<Ip> = std::collections::BTreeSet::new();
    let mut remaining = n;
    for (i, &octet) in first_octets.iter().enumerate() {
        let share = if i + 1 == first_octets.len() {
            remaining
        } else {
            ((n as f64) * weights[i] / total_weight).round() as usize
        };
        let share = share.min(remaining);
        remaining -= share;
        if share == 0 {
            continue;
        }
        let slash16s = rng.gen_range(4..=40usize);
        let subnets: Vec<u8> = (0..slash16s).map(|_| rng.gen::<u8>()).collect();
        let mut placed = 0usize;
        while placed < share {
            let b = *subnets.choose(rng).expect("non-empty"); // hotspots-lint: allow(panic-path) reason="choice list is a non-empty literal"
            let ip = Ip::from_octets(octet, b, rng.gen(), rng.gen());
            if out.insert(ip) {
                placed += 1;
            }
        }
    }
    // Rounding may leave a few unplaced: scatter them in the heaviest /8.
    while out.len() < n {
        let ip = Ip::from_octets(first_octets[0], rng.gen(), rng.gen(), rng.gen());
        out.insert(ip);
    }
    out.into_iter().collect()
}

/// Synthesizes an Internet-scale vulnerable population: `n` unique
/// public addresses Zipf-distributed over `slash8s` /8 networks (Chen &
/// Ji's measured shape: a handful of /8s hold most vulnerable hosts)
/// with per-/16 clustering inside each /8.
///
/// Unlike [`synthetic_codered_population`] — which rejection-samples
/// into a dedup set and stalls once a /8's chosen /16s approach
/// saturation — this generator apportions counts up front (largest
/// shares first, capacity-capped), sizes each /8's /16 count to keep
/// fill below ~35%, and draws distinct host offsets by
/// sampling-without-replacement. It is exact and O(n · log n), so it
/// synthesizes 1M+ hosts in well under a second.
///
/// Returned addresses are globally routable, deduplicated by
/// construction, and sorted ascending — exactly the canonical input
/// [`Population::try_compressed_from_public`] wants.
///
/// # Panics
///
/// Panics if `n == 0`, `slash8s` is outside `1..=200`, or `n` exceeds
/// the chosen /8s' total address capacity.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pop = hotspots_sim::zipf_slash8_population(100_000, 47, &mut rng);
/// assert_eq!(pop.len(), 100_000);
/// assert!(pop.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn zipf_slash8_population<R: Rng + ?Sized>(n: usize, slash8s: usize, rng: &mut R) -> Vec<Ip> {
    assert!(n > 0, "population size must be positive");
    assert!((1..=200).contains(&slash8s), "slash8s out of range");

    let mut first_octets: Vec<u8> = (1u8..224)
        .filter(|&o| special::is_globally_routable(Ip::from_octets(o, 1, 0, 0)))
        .collect();
    first_octets.shuffle(rng);
    first_octets.truncate(slash8s);
    let slash8s = first_octets.len();

    const SLASH8_CAP: usize = 256 * 65_536;
    assert!(
        n <= SLASH8_CAP * slash8s,
        "{n} hosts exceed the capacity of {slash8s} /8s"
    );

    // Zipf apportionment over the /8s, capacity-capped, with the
    // rounding remainder dealt round-robin (heaviest /8s first).
    const ZIPF_EXPONENT: f64 = 1.9;
    let weights: Vec<f64> = (0..slash8s)
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut shares: Vec<usize> = weights
        .iter()
        .map(|w| (((n as f64) * w / total_weight) as usize).min(SLASH8_CAP))
        .collect();
    let mut assigned: usize = shares.iter().sum();
    let mut i = 0usize;
    while assigned < n {
        if shares[i] < SLASH8_CAP {
            shares[i] += 1;
            assigned += 1;
        }
        i = (i + 1) % slash8s;
    }

    // Per-/16 clustering: enough /16s to keep fill below the load
    // target (so distinct-offset sampling has room), at least 4 when
    // the /8 holds enough hosts to spread.
    const SLASH16_LOAD: f64 = 0.35;
    let mut out: Vec<Ip> = Vec::with_capacity(n);
    for (&octet, &share) in first_octets.iter().zip(&shares) {
        if share == 0 {
            continue;
        }
        let needed = ((share as f64) / (65_536.0 * SLASH16_LOAD)).ceil() as usize;
        let slash16s = needed.clamp(4, 256).min(share);
        let seconds = rand::seq::index::sample(rng, 256, slash16s);
        let base = share / slash16s;
        let extra = share % slash16s;
        for (j, second) in seconds.iter().enumerate() {
            let count = base + usize::from(j < extra);
            if count == 0 {
                continue;
            }
            for offset in rand::seq::index::sample(rng, 1 << 16, count).iter() {
                out.push(Ip::from_octets(
                    octet,
                    second as u8,
                    (offset >> 8) as u8,
                    (offset & 0xff) as u8,
                ));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Synthesizes the CodeRedII vulnerable population calibrated to the
/// paper's published **coverage profile**: 134,586 addresses across
/// 4,481 occupied /16s, where the top-10 /16s hold 10.60% of hosts, the
/// top-100 hold 50.49%, and the top-1000 hold 91.33% (the paper's
/// greedy-hit-list coverages) — with the /16s dealt into 47 /8s so the
/// top-20 /8s hold ≈94% of the population.
///
/// Use this for paper-scale Figure 5 runs;
/// [`synthetic_codered_population`] remains the knob-tunable generator
/// for everything else.
///
/// # Examples
///
/// ```no_run
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pop = hotspots_sim::paper_codered_population(&mut rng);
/// assert_eq!(pop.len(), 134_586);
/// ```
pub fn paper_codered_population<R: Rng + ?Sized>(rng: &mut R) -> Vec<Ip> {
    const N: usize = 134_586;
    // Rank bands with the paper's cumulative coverages at 10/100/1000/4481:
    // hosts are spread evenly within each band, so the greedy top-k
    // coverages match the published numbers exactly by construction.
    const BANDS: [(usize, f64); 4] = [
        (10, 0.1060),   // ranks 1..=10
        (90, 0.3989),   // ranks 11..=100   (0.5049 - 0.1060)
        (900, 0.4084),  // ranks 101..=1000 (0.9133 - 0.5049)
        (3481, 0.0867), // ranks 1001..=4481
    ];
    let mut counts: Vec<usize> = Vec::with_capacity(4_481);
    for (width, mass) in BANDS {
        let band_hosts = (mass * N as f64).round() as usize;
        let base = band_hosts / width;
        let extra = band_hosts % width;
        for i in 0..width {
            counts.push((base + usize::from(i < extra)).max(1));
        }
    }
    // rounding fix-up to land on exactly N, adjusting the tail band
    let mut total: isize = counts.iter().sum::<usize>() as isize;
    let mut i = counts.len();
    while total != N as isize {
        i = if i == 0 { counts.len() - 1 } else { i - 1 };
        let adjust: isize = if total > N as isize { -1 } else { 1 };
        if counts[i] as isize + adjust >= 1 {
            counts[i] = (counts[i] as isize + adjust) as usize;
            total += adjust;
        }
    }

    // choose 47 routable /8s and deal the ranked /16s into them with a
    // Zipf weighting so the heavy /16s concentrate in the top /8s
    let mut first_octets: Vec<u8> = (1u8..224)
        .filter(|&o| special::is_globally_routable(Ip::from_octets(o, 1, 0, 0)))
        .collect();
    first_octets.shuffle(rng);
    first_octets.truncate(47);
    let weights: Vec<f64> = (0..47).map(|i| 1.0 / ((i + 1) as f64).powf(1.3)).collect();
    let weight_sum: f64 = weights.iter().sum();
    // track used second octets per /8 to keep /16s distinct
    let mut used: Vec<std::collections::HashSet<u8>> =
        (0..47).map(|_| std::collections::HashSet::new()).collect();

    let mut out: std::collections::BTreeSet<Ip> = std::collections::BTreeSet::new();
    for count in counts {
        // weighted /8 pick with room for another /16
        let slot = loop {
            let mut draw = rng.gen::<f64>() * weight_sum;
            let mut pick = 0usize;
            for (k, w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = k;
                    break;
                }
            }
            if used[pick].len() < 256 {
                break pick;
            }
        };
        let second = loop {
            let b: u8 = rng.gen();
            if used[slot].insert(b) {
                break b;
            }
        };
        let mut placed = 0usize;
        while placed < count {
            let ip = Ip::from_octets(first_octets[slot], second, rng.gen(), rng.gen());
            if out.insert(ip) {
                placed += 1;
            }
        }
    }
    out.into_iter().collect()
}

/// Moves a fraction of a public population behind home NATs: each
/// selected host gets a random `192.168.x.y` address in its own
/// single-host realm whose gateway is the host's original public address
/// (Figure 5(c): "we configured 15% of vulnerable hosts as if they were
/// NATed with 192.168/16 addresses").
///
/// Realms are registered into `env`; the returned loci parallel the input
/// order.
///
/// # Panics
///
/// Panics if `fraction` is outside `0.0..=1.0`.
pub fn apply_nat<R: Rng + ?Sized>(
    env: &mut Environment,
    public_addrs: &[Ip],
    fraction: f64,
    rng: &mut R,
) -> Vec<Locus> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "NAT fraction {fraction} out of [0, 1]"
    );
    public_addrs
        .iter()
        .map(|&ip| {
            if rng.gen::<f64>() < fraction {
                let realm = env.add_realm(
                    NatRealm::home_192_168(ip).expect("population addresses are public"), // hotspots-lint: allow(panic-path) reason="population addresses are public"
                );
                let private = Ip::from_octets(192, 168, rng.gen(), rng.gen());
                Locus::Private { realm, ip: private }
            } else {
                Locus::Public(ip)
            }
        })
        .collect()
}

/// Moves a fraction of a public population into **one shared** private
/// space: every selected host gets a distinct random `192.168.x.y`
/// address inside a single realm.
///
/// This is the topology the paper's Figure 5(c) simulation implies: the
/// NATed 15% of the vulnerable population live together in `192.168/16`,
/// so a NATed instance's /16-preferring probes can infect other NATed
/// hosts (igniting the private cluster whose /8 probes then flood public
/// `192/8`). Use [`apply_nat`] instead to model strictly isolated
/// per-home NATs — the stricter-isolation ablation.
///
/// # Panics
///
/// Panics if `fraction` is out of `0.0..=1.0`, or if the selected host
/// count exceeds the realm's 65,536 private addresses.
pub fn apply_nat_shared<R: Rng + ?Sized>(
    env: &mut Environment,
    public_addrs: &[Ip],
    fraction: f64,
    rng: &mut R,
) -> Vec<Locus> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "NAT fraction {fraction} out of [0, 1]"
    );
    let selected: Vec<bool> = public_addrs
        .iter()
        .map(|_| rng.gen::<f64>() < fraction)
        .collect();
    let count = selected.iter().filter(|&&s| s).count();
    assert!(
        count <= (1 << 16),
        "{count} NATed hosts exceed the 192.168/16 realm capacity"
    );
    // The shared realm's gateway: a documentation-range public address
    // (sources of NATed probes are irrelevant to the detection studies
    // this topology serves).
    let realm = env.add_realm(
        NatRealm::home_192_168(Ip::from_octets(198, 51, 100, 1))
            .expect("documentation gateway is public"), // hotspots-lint: allow(panic-path) reason="documentation gateway is public"
    );
    // distinct private addresses without replacement
    let slots = rand::seq::index::sample(rng, 1 << 16, count);
    let mut slot_iter = slots.iter();
    public_addrs
        .iter()
        .zip(selected)
        .map(|(&ip, natted)| {
            if natted {
                let slot = slot_iter.next().expect("one slot per NATed host") as u32; // hotspots-lint: allow(panic-path) reason="one slot per NATed host"
                let private = Ip::from_octets(192, 168, (slot >> 8) as u8, (slot & 0xff) as u8);
                Locus::Private { realm, ip: private }
            } else {
                Locus::Public(ip)
            }
        })
        .collect()
}

/// Convenience: the /16 prefixes occupied by at least one population
/// address (the sensor-placement input for Figure 5(b)).
pub fn occupied_slash16s(addrs: &[Ip]) -> Vec<Prefix> {
    let mut set: std::collections::BTreeSet<Prefix> = std::collections::BTreeSet::new();
    for &ip in addrs {
        set.insert(ip.bucket16().prefix());
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_ipspace::Bucket8;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_public_addresses_rejected() {
        let ip = Ip::from_octets(1, 2, 3, 4);
        let _ = Population::from_public([ip, ip]);
    }

    #[test]
    fn duplicate_addresses_are_typed_errors() {
        let ip = Ip::from_octets(1, 2, 3, 4);
        let err = Population::try_from_public([ip, ip]).unwrap_err();
        assert_eq!(
            err,
            PopulationError::Duplicate {
                locus: Locus::Public(ip)
            }
        );
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn compressed_store_requires_sorted_publics() {
        let a = Ip::from_octets(9, 0, 0, 1);
        let b = Ip::from_octets(9, 0, 0, 2);
        assert!(Population::try_compressed_from_public(&[a, b]).is_ok());
        let err = Population::try_compressed_from_public(&[b, a]).unwrap_err();
        assert_eq!(err, PopulationError::UnsortedPublic { ip: a });
        let err = Population::try_compressed_from_public(&[a, a]).unwrap_err();
        assert!(matches!(err, PopulationError::Duplicate { .. }));
    }

    #[test]
    fn compressed_store_lookups_match_dense() {
        let addrs: Vec<Ip> = (0..500u32).map(|i| Ip::new(0x0b0b_0000 + i * 7)).collect();
        let dense = Population::from_public(addrs.iter().copied());
        let compressed = Population::try_compressed_from_public(&addrs).unwrap();
        assert_eq!(compressed.store_label(), "compressed");
        assert_eq!(dense.store_label(), "dense");
        assert_eq!(dense.len(), compressed.len());
        assert_eq!(dense.public_len(), compressed.public_len());
        for (id, &ip) in addrs.iter().enumerate() {
            assert_eq!(dense.find_public(ip), Some(id));
            assert_eq!(compressed.find_public(ip), Some(id));
            assert_eq!(dense.locus(id), compressed.locus(id));
        }
        assert_eq!(compressed.find_public(Ip::new(0x0b0b_0001)), None);
    }

    #[test]
    fn compressed_store_with_private_hosts() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(Ip::from_octets(9, 0, 0, 1)).unwrap());
        let publics = [Ip::from_octets(9, 0, 0, 2), Ip::from_octets(9, 0, 0, 3)];
        let private = Ip::from_octets(192, 168, 1, 1);
        let pop = Population::try_compressed_from_parts(&publics, [(realm, private)]).unwrap();
        assert_eq!(pop.len(), 3);
        assert_eq!(pop.public_len(), 2);
        assert_eq!(pop.find_private(realm, private), Some(2));
        assert_eq!(pop.locus(2), Locus::Private { realm, ip: private });
        // duplicate private in the same realm is a typed error
        let err =
            Population::try_compressed_from_parts(&publics, [(realm, private), (realm, private)])
                .unwrap_err();
        assert!(matches!(err, PopulationError::Duplicate { .. }));
    }

    #[test]
    fn compressed_store_memory_is_far_below_dense() {
        let addrs: Vec<Ip> = (0..100_000u32)
            .map(|i| Ip::new(0x0b00_0000 + i * 11))
            .collect();
        let compressed = Population::try_compressed_from_public(&addrs).unwrap();
        let dense = Population::from_public(addrs.iter().copied());
        assert!(
            compressed.store_bytes() * 4 <= compressed.dense_equivalent_bytes(),
            "compressed {} vs dense-equivalent {}",
            compressed.store_bytes(),
            compressed.dense_equivalent_bytes()
        );
        // the analytic dense equivalent tracks the real dense store
        let actual = dense.store_bytes() as f64;
        let analytic = dense.dense_equivalent_bytes() as f64;
        let ratio = analytic / actual;
        assert!(
            (0.8..1.2).contains(&ratio),
            "analytic {analytic} vs actual {actual}"
        );
    }

    #[test]
    fn canonical_parts_sorts_publics_and_keeps_private_order() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(Ip::from_octets(9, 0, 0, 1)).unwrap());
        let loci = [
            Locus::Public(Ip::from_octets(9, 0, 0, 5)),
            Locus::Private {
                realm,
                ip: Ip::from_octets(192, 168, 0, 2),
            },
            Locus::Public(Ip::from_octets(9, 0, 0, 1)),
            Locus::Private {
                realm,
                ip: Ip::from_octets(192, 168, 0, 1),
            },
        ];
        let (public, private) = canonical_parts(&loci);
        assert_eq!(
            public,
            vec![Ip::from_octets(9, 0, 0, 1), Ip::from_octets(9, 0, 0, 5)]
        );
        assert_eq!(
            private,
            vec![
                (realm, Ip::from_octets(192, 168, 0, 2)),
                (realm, Ip::from_octets(192, 168, 0, 1)),
            ]
        );
    }

    #[test]
    fn private_lookup_is_realm_scoped() {
        let mut env = Environment::new();
        let ra = env.add_realm(NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 1)).unwrap());
        let rb = env.add_realm(NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 2)).unwrap());
        let shared_private = Ip::from_octets(192, 168, 1, 1);
        let pop = Population::from_loci([
            Locus::Private {
                realm: ra,
                ip: shared_private,
            },
            Locus::Private {
                realm: rb,
                ip: shared_private,
            },
        ]);
        assert_eq!(pop.find_private(ra, shared_private), Some(0));
        assert_eq!(pop.find_private(rb, shared_private), Some(1));
        assert_eq!(pop.find_public(shared_private), None);
    }

    #[test]
    fn synthetic_population_is_clustered_like_the_paper() {
        let mut rng = StdRng::seed_from_u64(2006);
        let pop = synthetic_codered_population(50_000, 47, &mut rng);
        assert_eq!(pop.len(), 50_000);
        // all unique (BTreeSet) and routable
        assert!(pop.iter().all(|&ip| special::is_globally_routable(ip)));
        // occupies ≤ 47 /8s, and the top 20 hold ~94%
        let mut per8: std::collections::HashMap<Bucket8, u64> = std::collections::HashMap::new();
        for &ip in &pop {
            *per8.entry(ip.bucket8()).or_insert(0) += 1;
        }
        assert!(per8.len() <= 47);
        let mut counts: Vec<u64> = per8.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = counts.iter().take(20).sum();
        let share = top20 as f64 / 50_000.0;
        assert!(
            (0.88..=0.99).contains(&share),
            "top-20 /8 share {share} outside the paper's ~94% ballpark"
        );
    }

    #[test]
    fn zipf_population_is_sorted_unique_and_clustered() {
        let mut rng = StdRng::seed_from_u64(2006);
        let pop = zipf_slash8_population(200_000, 47, &mut rng);
        assert_eq!(pop.len(), 200_000);
        assert!(
            pop.windows(2).all(|w| w[0] < w[1]),
            "sorted and deduplicated by construction"
        );
        assert!(pop.iter().all(|&ip| special::is_globally_routable(ip)));
        // Zipf over /8s: heavy concentration in the top blocks.
        let mut per8: std::collections::BTreeMap<u8, u64> = std::collections::BTreeMap::new();
        for &ip in &pop {
            *per8.entry(ip.octets()[0]).or_insert(0) += 1;
        }
        assert!(per8.len() <= 47);
        let mut counts: Vec<u64> = per8.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top5: u64 = counts.iter().take(5).sum();
        assert!(
            top5 as f64 / 200_000.0 > 0.80,
            "Zipf 1.9 should concentrate the top-5 /8s, got {top5}"
        );
        // per-/16 clustering: hosts sit in few /16s relative to spread
        let slash16s: std::collections::BTreeSet<u32> =
            pop.iter().map(|ip| ip.value() >> 16).collect();
        assert!(
            slash16s.len() < 2_000,
            "expected clustering, got {} /16s",
            slash16s.len()
        );
    }

    #[test]
    fn zipf_population_feeds_the_compressed_store() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = zipf_slash8_population(50_000, 20, &mut rng);
        let compressed = Population::try_compressed_from_public(&pop).unwrap();
        assert_eq!(compressed.len(), 50_000);
        assert_eq!(compressed.find_public(pop[499]), Some(499));
    }

    #[test]
    fn paper_profile_matches_published_coverages() {
        let mut rng = StdRng::seed_from_u64(2006);
        let pop = paper_codered_population(&mut rng);
        assert_eq!(pop.len(), 134_586);
        // occupied /16 count matches the paper
        let mut per16: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut per8: std::collections::HashMap<u8, u64> = std::collections::HashMap::new();
        for &ip in &pop {
            *per16.entry(ip.value() >> 16).or_insert(0) += 1;
            *per8.entry(ip.octets()[0]).or_insert(0) += 1;
        }
        assert_eq!(per16.len(), 4_481, "occupied /16s");
        assert!(per8.len() <= 47);
        // greedy top-k coverages within 2 points of the paper's numbers
        let mut counts: Vec<u64> = per16.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = 134_586f64;
        let cov = |k: usize| counts.iter().take(k).sum::<u64>() as f64 / total;
        assert!((cov(10) - 0.1060).abs() < 0.02, "top10 {}", cov(10));
        assert!((cov(100) - 0.5049).abs() < 0.02, "top100 {}", cov(100));
        assert!((cov(1000) - 0.9133).abs() < 0.02, "top1000 {}", cov(1000));
        // top-20 /8s hold ~94%
        let mut c8: Vec<u64> = per8.values().copied().collect();
        c8.sort_unstable_by(|a, b| b.cmp(a));
        let top20 = c8.iter().take(20).sum::<u64>() as f64 / total;
        assert!((0.85..=1.0).contains(&top20), "top-20 /8 share {top20}");
    }

    #[test]
    fn apply_nat_fraction_and_realms() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(15);
        let addrs: Vec<Ip> = (0..2000u32).map(|i| Ip::new(0x0101_0000 + i)).collect();
        let loci = apply_nat(&mut env, &addrs, 0.15, &mut rng);
        let natted = loci
            .iter()
            .filter(|l| matches!(l, Locus::Private { .. }))
            .count();
        let frac = natted as f64 / loci.len() as f64;
        assert!((0.10..0.20).contains(&frac), "NAT fraction {frac}");
        assert_eq!(env.realm_count(), natted);
        for locus in &loci {
            if let Locus::Private { ip, .. } = locus {
                assert!(special::PRIVATE_192.contains(*ip));
            }
        }
    }

    #[test]
    fn apply_nat_zero_and_one() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(1);
        let addrs = vec![Ip::from_octets(1, 1, 1, 1), Ip::from_octets(2, 2, 2, 2)];
        let none = apply_nat(&mut env, &addrs, 0.0, &mut rng);
        assert!(none.iter().all(|l| matches!(l, Locus::Public(_))));
        let all = apply_nat(&mut env, &addrs, 1.0, &mut rng);
        assert!(all.iter().all(|l| matches!(l, Locus::Private { .. })));
    }

    #[test]
    fn apply_nat_shared_one_realm_distinct_addresses() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(8);
        let addrs: Vec<Ip> = (0..5000u32).map(|i| Ip::new(0x1716_0000 + i)).collect();
        let loci = apply_nat_shared(&mut env, &addrs, 0.3, &mut rng);
        assert_eq!(env.realm_count(), 1, "shared topology uses one realm");
        let mut privates = std::collections::HashSet::new();
        let mut natted = 0usize;
        for locus in &loci {
            if let Locus::Private { ip, .. } = locus {
                natted += 1;
                assert!(special::PRIVATE_192.contains(*ip));
                assert!(privates.insert(*ip), "duplicate private address {ip}");
            }
        }
        let frac = natted as f64 / loci.len() as f64;
        assert!((0.25..0.35).contains(&frac), "NAT fraction {frac}");
        // the population indexes cleanly (no collisions)
        let pop = Population::from_loci(loci);
        assert_eq!(pop.len(), 5000);
    }

    #[test]
    fn occupied_slash16s_deduplicates() {
        let addrs = vec![
            Ip::from_octets(10, 1, 0, 1),
            Ip::from_octets(10, 1, 200, 1),
            Ip::from_octets(10, 2, 0, 1),
        ];
        let subs = occupied_slash16s(&addrs);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].to_string(), "10.1.0.0/16");
    }

    proptest::proptest! {
        /// Satellite coverage: the dense and compressed stores agree on
        /// `find_public` / `find_private` / `locus` for arbitrary mixed
        /// populations, and rank ids round-trip through the /8→/16→/24
        /// hierarchy (`select(find(ip)) == ip`).
        #[test]
        fn stores_agree_for_arbitrary_populations(
            raw in proptest::collection::vec(proptest::prelude::any::<u32>(), 1..400)
        ) {
            use proptest::prop_assert_eq;
            use std::collections::BTreeSet;

            let values: BTreeSet<u32> = raw.into_iter().collect();
            let mut env = Environment::new();
            let ra = env.add_realm(
                NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 1)).unwrap(),
            );
            let rb = env.add_realm(
                NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 2)).unwrap(),
            );
            let mut public: BTreeSet<Ip> = BTreeSet::new();
            let mut private: Vec<(RealmId, Ip)> = Vec::new();
            let mut seen_private: BTreeSet<(RealmId, Ip)> = BTreeSet::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 3 == 0 {
                    let realm = if i % 2 == 0 { ra } else { rb };
                    let ip = Ip::from_octets(192, 168, (v >> 8) as u8, v as u8);
                    if seen_private.insert((realm, ip)) {
                        private.push((realm, ip));
                    }
                } else {
                    // scatter publics across several /8s and /16s
                    public.insert(Ip::new(0x0900_0000 | (v & 0x03ff_ffff)));
                }
            }
            let public: Vec<Ip> = public.into_iter().collect();
            let loci: Vec<Locus> = public
                .iter()
                .copied()
                .map(Locus::Public)
                .chain(private.iter().map(|&(realm, ip)| Locus::Private { realm, ip }))
                .collect();
            let dense = Population::try_from_loci(loci.iter().copied()).unwrap();
            let compressed =
                Population::try_compressed_from_parts(&public, private.iter().copied()).unwrap();
            prop_assert_eq!(dense.len(), compressed.len());
            prop_assert_eq!(dense.public_len(), compressed.public_len());
            for (id, &ip) in public.iter().enumerate() {
                prop_assert_eq!(dense.find_public(ip), Some(id));
                prop_assert_eq!(compressed.find_public(ip), Some(id));
                // rank id round-trips through the hierarchy
                prop_assert_eq!(compressed.locus(id), Locus::Public(ip));
                prop_assert_eq!(dense.locus(id), compressed.locus(id));
            }
            for (i, &(realm, ip)) in private.iter().enumerate() {
                let id = public.len() + i;
                prop_assert_eq!(dense.find_private(realm, ip), Some(id));
                prop_assert_eq!(compressed.find_private(realm, ip), Some(id));
                prop_assert_eq!(dense.locus(id), compressed.locus(id));
                // private addresses never resolve as public
                prop_assert_eq!(dense.find_public(ip), compressed.find_public(ip));
            }
            // probes that miss the population agree across stores too
            for &v in values.iter().take(64) {
                let probe = Ip::new(0x0d00_0000 | (v & 0x00ff_ffff));
                prop_assert_eq!(dense.find_public(probe), compressed.find_public(probe));
            }
            // both stores iterate the same public addresses
            let dense_iter: Vec<Ip> = dense.public_addresses_iter().collect();
            let compressed_iter: Vec<Ip> = compressed.public_addresses_iter().collect();
            prop_assert_eq!(dense_iter, public.clone());
            prop_assert_eq!(compressed_iter, public);
        }
    }

    #[test]
    fn public_addresses_iter_filters_private_without_allocating() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(Ip::from_octets(9, 0, 0, 1)).unwrap());
        let pop = Population::from_loci([
            Locus::Public(Ip::from_octets(1, 1, 1, 1)),
            Locus::Private {
                realm,
                ip: Ip::from_octets(192, 168, 0, 1),
            },
            Locus::Public(Ip::from_octets(2, 2, 2, 2)),
        ]);
        let publics: Vec<Ip> = pop.public_addresses_iter().collect();
        assert_eq!(
            publics,
            vec![Ip::from_octets(1, 1, 1, 1), Ip::from_octets(2, 2, 2, 2)]
        );
        // compressed store iterates in rank order
        let compressed = Population::try_compressed_from_parts(
            &[Ip::from_octets(1, 1, 1, 1), Ip::from_octets(2, 2, 2, 2)],
            [(realm, Ip::from_octets(192, 168, 0, 1))],
        )
        .unwrap();
        let ranks: Vec<Ip> = compressed.public_addresses_iter().collect();
        assert_eq!(ranks, publics);
    }
}
