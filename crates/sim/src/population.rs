//! Vulnerable populations and their placement in the topology.

use hotspots_ipspace::{special, Ip, Prefix};
use hotspots_netmodel::{Environment, Locus, NatRealm, RealmId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ipmap::IpMap;

/// The vulnerable host population: each host's [`Locus`] plus fast
/// address→host lookup for probe resolution.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_sim::Population;
///
/// let pop = Population::from_public([Ip::from_octets(10, 0, 0, 1)]);
/// assert_eq!(pop.len(), 1);
/// assert_eq!(pop.find_public(Ip::from_octets(10, 0, 0, 1)), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    loci: Vec<Locus>,
    public_index: IpMap,
    /// (realm, private ip) → host, keyed by realm in the outer map.
    realm_index: std::collections::HashMap<RealmId, IpMap>,
    /// Occupancy bitmap over /16 prefixes of the public hosts (8 KiB,
    /// cache-resident). Worm scans cover far more address space than any
    /// population occupies, so most `find_public` calls are misses; one
    /// bit test rejects them without touching the hash table.
    public_slash16: Box<[u64; 1024]>,
}

impl Population {
    /// Builds a population of directly connected public hosts.
    ///
    /// # Panics
    ///
    /// Panics on duplicate addresses.
    pub fn from_public<I: IntoIterator<Item = Ip>>(addrs: I) -> Population {
        Population::from_loci(addrs.into_iter().map(Locus::Public))
    }

    /// Builds a population from explicit loci.
    ///
    /// # Panics
    ///
    /// Panics if two hosts share an address (public, or private within
    /// one realm).
    pub fn from_loci<I: IntoIterator<Item = Locus>>(loci: I) -> Population {
        let loci: Vec<Locus> = loci.into_iter().collect();
        let mut public_index = IpMap::with_capacity(loci.len());
        let mut realm_index: std::collections::HashMap<RealmId, IpMap> =
            std::collections::HashMap::new();
        let mut public_slash16 = Box::new([0u64; 1024]);
        for (i, locus) in loci.iter().enumerate() {
            let idx = u32::try_from(i).expect("fewer than 2^32 hosts"); // hotspots-lint: allow(panic-path) reason="populations are bounded far below 2^32 hosts"
            let clash = match *locus {
                Locus::Public(ip) => {
                    let slash16 = (ip.value() >> 16) as usize;
                    public_slash16[slash16 >> 6] |= 1u64 << (slash16 & 63);
                    public_index.insert(ip.value(), idx)
                }
                Locus::Private { realm, ip } => realm_index
                    .entry(realm)
                    .or_insert_with(|| IpMap::with_capacity(16))
                    .insert(ip.value(), idx),
            };
            assert!(clash.is_none(), "duplicate host address at {locus}");
        }
        Population {
            loci,
            public_index,
            realm_index,
            public_slash16,
        }
    }

    /// Number of vulnerable hosts.
    pub fn len(&self) -> usize {
        self.loci.len()
    }

    /// Returns `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.loci.is_empty()
    }

    /// The hosts' loci, indexed by host id.
    pub fn loci(&self) -> &[Locus] {
        &self.loci
    }

    /// The locus of host `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn locus(&self, id: usize) -> Locus {
        self.loci[id]
    }

    /// Finds the host with public address `ip`, if any.
    #[inline]
    pub fn find_public(&self, ip: Ip) -> Option<usize> {
        let slash16 = (ip.value() >> 16) as usize;
        if self.public_slash16[slash16 >> 6] & (1u64 << (slash16 & 63)) == 0 {
            return None;
        }
        self.public_index.get(ip.value()).map(|v| v as usize)
    }

    /// Finds the host with private address `ip` inside `realm`, if any.
    #[inline]
    pub fn find_private(&self, realm: RealmId, ip: Ip) -> Option<usize> {
        self.realm_index
            .get(&realm)
            .and_then(|m| m.get(ip.value()))
            .map(|v| v as usize)
    }

    /// The public addresses of all public hosts (used to build hit-lists
    /// and placement inputs).
    pub fn public_addresses(&self) -> Vec<Ip> {
        self.loci
            .iter()
            .filter_map(|l| match l {
                Locus::Public(ip) => Some(*ip),
                Locus::Private { .. } => None,
            })
            .collect()
    }
}

/// Synthesizes a CodeRedII-style vulnerable population: `n` unique public
/// addresses clustered into `slash8s` /8 networks with a Zipf-like
/// weighting (the paper's population: 134,586 addresses in 47 /8s, with
/// the top 20 /8s holding 94% of hosts), and within each /8 clustered
/// into a handful of /16s.
///
/// Returned addresses are globally routable, deduplicated, and sorted.
///
/// # Panics
///
/// Panics if `n == 0` or `slash8s == 0` or `slash8s > 200`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let pop = hotspots_sim::synthetic_codered_population(10_000, 47, &mut rng);
/// assert_eq!(pop.len(), 10_000);
/// ```
pub fn synthetic_codered_population<R: Rng + ?Sized>(
    n: usize,
    slash8s: usize,
    rng: &mut R,
) -> Vec<Ip> {
    assert!(n > 0, "population size must be positive");
    assert!((1..=200).contains(&slash8s), "slash8s out of range");

    // Choose distinct routable /8s.
    let mut first_octets: Vec<u8> = (1u8..224)
        .filter(|&o| {
            let probe = Ip::from_octets(o, 1, 0, 0);
            special::is_globally_routable(probe)
        })
        .collect();
    first_octets.shuffle(rng);
    first_octets.truncate(slash8s);

    // Zipf-ish weights: tuned so ~20 of 47 /8s hold ≈94% of hosts.
    const ZIPF_EXPONENT: f64 = 1.9;
    let weights: Vec<f64> = (0..slash8s)
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    // Each /8 clusters its hosts into a few /16s.
    let mut out: std::collections::BTreeSet<Ip> = std::collections::BTreeSet::new();
    let mut remaining = n;
    for (i, &octet) in first_octets.iter().enumerate() {
        let share = if i + 1 == first_octets.len() {
            remaining
        } else {
            ((n as f64) * weights[i] / total_weight).round() as usize
        };
        let share = share.min(remaining);
        remaining -= share;
        if share == 0 {
            continue;
        }
        let slash16s = rng.gen_range(4..=40usize);
        let subnets: Vec<u8> = (0..slash16s).map(|_| rng.gen::<u8>()).collect();
        let mut placed = 0usize;
        while placed < share {
            let b = *subnets.choose(rng).expect("non-empty"); // hotspots-lint: allow(panic-path) reason="choice list is a non-empty literal"
            let ip = Ip::from_octets(octet, b, rng.gen(), rng.gen());
            if out.insert(ip) {
                placed += 1;
            }
        }
    }
    // Rounding may leave a few unplaced: scatter them in the heaviest /8.
    while out.len() < n {
        let ip = Ip::from_octets(first_octets[0], rng.gen(), rng.gen(), rng.gen());
        out.insert(ip);
    }
    out.into_iter().collect()
}

/// Synthesizes the CodeRedII vulnerable population calibrated to the
/// paper's published **coverage profile**: 134,586 addresses across
/// 4,481 occupied /16s, where the top-10 /16s hold 10.60% of hosts, the
/// top-100 hold 50.49%, and the top-1000 hold 91.33% (the paper's
/// greedy-hit-list coverages) — with the /16s dealt into 47 /8s so the
/// top-20 /8s hold ≈94% of the population.
///
/// Use this for paper-scale Figure 5 runs;
/// [`synthetic_codered_population`] remains the knob-tunable generator
/// for everything else.
///
/// # Examples
///
/// ```no_run
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pop = hotspots_sim::paper_codered_population(&mut rng);
/// assert_eq!(pop.len(), 134_586);
/// ```
pub fn paper_codered_population<R: Rng + ?Sized>(rng: &mut R) -> Vec<Ip> {
    const N: usize = 134_586;
    // Rank bands with the paper's cumulative coverages at 10/100/1000/4481:
    // hosts are spread evenly within each band, so the greedy top-k
    // coverages match the published numbers exactly by construction.
    const BANDS: [(usize, f64); 4] = [
        (10, 0.1060),   // ranks 1..=10
        (90, 0.3989),   // ranks 11..=100   (0.5049 - 0.1060)
        (900, 0.4084),  // ranks 101..=1000 (0.9133 - 0.5049)
        (3481, 0.0867), // ranks 1001..=4481
    ];
    let mut counts: Vec<usize> = Vec::with_capacity(4_481);
    for (width, mass) in BANDS {
        let band_hosts = (mass * N as f64).round() as usize;
        let base = band_hosts / width;
        let extra = band_hosts % width;
        for i in 0..width {
            counts.push((base + usize::from(i < extra)).max(1));
        }
    }
    // rounding fix-up to land on exactly N, adjusting the tail band
    let mut total: isize = counts.iter().sum::<usize>() as isize;
    let mut i = counts.len();
    while total != N as isize {
        i = if i == 0 { counts.len() - 1 } else { i - 1 };
        let adjust: isize = if total > N as isize { -1 } else { 1 };
        if counts[i] as isize + adjust >= 1 {
            counts[i] = (counts[i] as isize + adjust) as usize;
            total += adjust;
        }
    }

    // choose 47 routable /8s and deal the ranked /16s into them with a
    // Zipf weighting so the heavy /16s concentrate in the top /8s
    let mut first_octets: Vec<u8> = (1u8..224)
        .filter(|&o| special::is_globally_routable(Ip::from_octets(o, 1, 0, 0)))
        .collect();
    first_octets.shuffle(rng);
    first_octets.truncate(47);
    let weights: Vec<f64> = (0..47).map(|i| 1.0 / ((i + 1) as f64).powf(1.3)).collect();
    let weight_sum: f64 = weights.iter().sum();
    // track used second octets per /8 to keep /16s distinct
    let mut used: Vec<std::collections::HashSet<u8>> =
        (0..47).map(|_| std::collections::HashSet::new()).collect();

    let mut out: std::collections::BTreeSet<Ip> = std::collections::BTreeSet::new();
    for count in counts {
        // weighted /8 pick with room for another /16
        let slot = loop {
            let mut draw = rng.gen::<f64>() * weight_sum;
            let mut pick = 0usize;
            for (k, w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = k;
                    break;
                }
            }
            if used[pick].len() < 256 {
                break pick;
            }
        };
        let second = loop {
            let b: u8 = rng.gen();
            if used[slot].insert(b) {
                break b;
            }
        };
        let mut placed = 0usize;
        while placed < count {
            let ip = Ip::from_octets(first_octets[slot], second, rng.gen(), rng.gen());
            if out.insert(ip) {
                placed += 1;
            }
        }
    }
    out.into_iter().collect()
}

/// Moves a fraction of a public population behind home NATs: each
/// selected host gets a random `192.168.x.y` address in its own
/// single-host realm whose gateway is the host's original public address
/// (Figure 5(c): "we configured 15% of vulnerable hosts as if they were
/// NATed with 192.168/16 addresses").
///
/// Realms are registered into `env`; the returned loci parallel the input
/// order.
///
/// # Panics
///
/// Panics if `fraction` is outside `0.0..=1.0`.
pub fn apply_nat<R: Rng + ?Sized>(
    env: &mut Environment,
    public_addrs: &[Ip],
    fraction: f64,
    rng: &mut R,
) -> Vec<Locus> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "NAT fraction {fraction} out of [0, 1]"
    );
    public_addrs
        .iter()
        .map(|&ip| {
            if rng.gen::<f64>() < fraction {
                let realm = env.add_realm(
                    NatRealm::home_192_168(ip).expect("population addresses are public"), // hotspots-lint: allow(panic-path) reason="population addresses are public"
                );
                let private = Ip::from_octets(192, 168, rng.gen(), rng.gen());
                Locus::Private { realm, ip: private }
            } else {
                Locus::Public(ip)
            }
        })
        .collect()
}

/// Moves a fraction of a public population into **one shared** private
/// space: every selected host gets a distinct random `192.168.x.y`
/// address inside a single realm.
///
/// This is the topology the paper's Figure 5(c) simulation implies: the
/// NATed 15% of the vulnerable population live together in `192.168/16`,
/// so a NATed instance's /16-preferring probes can infect other NATed
/// hosts (igniting the private cluster whose /8 probes then flood public
/// `192/8`). Use [`apply_nat`] instead to model strictly isolated
/// per-home NATs — the stricter-isolation ablation.
///
/// # Panics
///
/// Panics if `fraction` is out of `0.0..=1.0`, or if the selected host
/// count exceeds the realm's 65,536 private addresses.
pub fn apply_nat_shared<R: Rng + ?Sized>(
    env: &mut Environment,
    public_addrs: &[Ip],
    fraction: f64,
    rng: &mut R,
) -> Vec<Locus> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "NAT fraction {fraction} out of [0, 1]"
    );
    let selected: Vec<bool> = public_addrs
        .iter()
        .map(|_| rng.gen::<f64>() < fraction)
        .collect();
    let count = selected.iter().filter(|&&s| s).count();
    assert!(
        count <= (1 << 16),
        "{count} NATed hosts exceed the 192.168/16 realm capacity"
    );
    // The shared realm's gateway: a documentation-range public address
    // (sources of NATed probes are irrelevant to the detection studies
    // this topology serves).
    let realm = env.add_realm(
        NatRealm::home_192_168(Ip::from_octets(198, 51, 100, 1))
            .expect("documentation gateway is public"), // hotspots-lint: allow(panic-path) reason="documentation gateway is public"
    );
    // distinct private addresses without replacement
    let slots = rand::seq::index::sample(rng, 1 << 16, count);
    let mut slot_iter = slots.iter();
    public_addrs
        .iter()
        .zip(selected)
        .map(|(&ip, natted)| {
            if natted {
                let slot = slot_iter.next().expect("one slot per NATed host") as u32; // hotspots-lint: allow(panic-path) reason="one slot per NATed host"
                let private = Ip::from_octets(192, 168, (slot >> 8) as u8, (slot & 0xff) as u8);
                Locus::Private { realm, ip: private }
            } else {
                Locus::Public(ip)
            }
        })
        .collect()
}

/// Convenience: the /16 prefixes occupied by at least one population
/// address (the sensor-placement input for Figure 5(b)).
pub fn occupied_slash16s(addrs: &[Ip]) -> Vec<Prefix> {
    let mut set: std::collections::BTreeSet<Prefix> = std::collections::BTreeSet::new();
    for &ip in addrs {
        set.insert(ip.bucket16().prefix());
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_ipspace::Bucket8;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_public_addresses_rejected() {
        let ip = Ip::from_octets(1, 2, 3, 4);
        let _ = Population::from_public([ip, ip]);
    }

    #[test]
    fn private_lookup_is_realm_scoped() {
        let mut env = Environment::new();
        let ra = env.add_realm(NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 1)).unwrap());
        let rb = env.add_realm(NatRealm::home_192_168(Ip::from_octets(7, 0, 0, 2)).unwrap());
        let shared_private = Ip::from_octets(192, 168, 1, 1);
        let pop = Population::from_loci([
            Locus::Private {
                realm: ra,
                ip: shared_private,
            },
            Locus::Private {
                realm: rb,
                ip: shared_private,
            },
        ]);
        assert_eq!(pop.find_private(ra, shared_private), Some(0));
        assert_eq!(pop.find_private(rb, shared_private), Some(1));
        assert_eq!(pop.find_public(shared_private), None);
    }

    #[test]
    fn synthetic_population_is_clustered_like_the_paper() {
        let mut rng = StdRng::seed_from_u64(2006);
        let pop = synthetic_codered_population(50_000, 47, &mut rng);
        assert_eq!(pop.len(), 50_000);
        // all unique (BTreeSet) and routable
        assert!(pop.iter().all(|&ip| special::is_globally_routable(ip)));
        // occupies ≤ 47 /8s, and the top 20 hold ~94%
        let mut per8: std::collections::HashMap<Bucket8, u64> = std::collections::HashMap::new();
        for &ip in &pop {
            *per8.entry(ip.bucket8()).or_insert(0) += 1;
        }
        assert!(per8.len() <= 47);
        let mut counts: Vec<u64> = per8.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = counts.iter().take(20).sum();
        let share = top20 as f64 / 50_000.0;
        assert!(
            (0.88..=0.99).contains(&share),
            "top-20 /8 share {share} outside the paper's ~94% ballpark"
        );
    }

    #[test]
    fn paper_profile_matches_published_coverages() {
        let mut rng = StdRng::seed_from_u64(2006);
        let pop = paper_codered_population(&mut rng);
        assert_eq!(pop.len(), 134_586);
        // occupied /16 count matches the paper
        let mut per16: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut per8: std::collections::HashMap<u8, u64> = std::collections::HashMap::new();
        for &ip in &pop {
            *per16.entry(ip.value() >> 16).or_insert(0) += 1;
            *per8.entry(ip.octets()[0]).or_insert(0) += 1;
        }
        assert_eq!(per16.len(), 4_481, "occupied /16s");
        assert!(per8.len() <= 47);
        // greedy top-k coverages within 2 points of the paper's numbers
        let mut counts: Vec<u64> = per16.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = 134_586f64;
        let cov = |k: usize| counts.iter().take(k).sum::<u64>() as f64 / total;
        assert!((cov(10) - 0.1060).abs() < 0.02, "top10 {}", cov(10));
        assert!((cov(100) - 0.5049).abs() < 0.02, "top100 {}", cov(100));
        assert!((cov(1000) - 0.9133).abs() < 0.02, "top1000 {}", cov(1000));
        // top-20 /8s hold ~94%
        let mut c8: Vec<u64> = per8.values().copied().collect();
        c8.sort_unstable_by(|a, b| b.cmp(a));
        let top20 = c8.iter().take(20).sum::<u64>() as f64 / total;
        assert!((0.85..=1.0).contains(&top20), "top-20 /8 share {top20}");
    }

    #[test]
    fn apply_nat_fraction_and_realms() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(15);
        let addrs: Vec<Ip> = (0..2000u32).map(|i| Ip::new(0x0101_0000 + i)).collect();
        let loci = apply_nat(&mut env, &addrs, 0.15, &mut rng);
        let natted = loci
            .iter()
            .filter(|l| matches!(l, Locus::Private { .. }))
            .count();
        let frac = natted as f64 / loci.len() as f64;
        assert!((0.10..0.20).contains(&frac), "NAT fraction {frac}");
        assert_eq!(env.realm_count(), natted);
        for locus in &loci {
            if let Locus::Private { ip, .. } = locus {
                assert!(special::PRIVATE_192.contains(*ip));
            }
        }
    }

    #[test]
    fn apply_nat_zero_and_one() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(1);
        let addrs = vec![Ip::from_octets(1, 1, 1, 1), Ip::from_octets(2, 2, 2, 2)];
        let none = apply_nat(&mut env, &addrs, 0.0, &mut rng);
        assert!(none.iter().all(|l| matches!(l, Locus::Public(_))));
        let all = apply_nat(&mut env, &addrs, 1.0, &mut rng);
        assert!(all.iter().all(|l| matches!(l, Locus::Private { .. })));
    }

    #[test]
    fn apply_nat_shared_one_realm_distinct_addresses() {
        let mut env = Environment::new();
        let mut rng = StdRng::seed_from_u64(8);
        let addrs: Vec<Ip> = (0..5000u32).map(|i| Ip::new(0x1716_0000 + i)).collect();
        let loci = apply_nat_shared(&mut env, &addrs, 0.3, &mut rng);
        assert_eq!(env.realm_count(), 1, "shared topology uses one realm");
        let mut privates = std::collections::HashSet::new();
        let mut natted = 0usize;
        for locus in &loci {
            if let Locus::Private { ip, .. } = locus {
                natted += 1;
                assert!(special::PRIVATE_192.contains(*ip));
                assert!(privates.insert(*ip), "duplicate private address {ip}");
            }
        }
        let frac = natted as f64 / loci.len() as f64;
        assert!((0.25..0.35).contains(&frac), "NAT fraction {frac}");
        // the population indexes cleanly (no collisions)
        let pop = Population::from_loci(loci);
        assert_eq!(pop.len(), 5000);
    }

    #[test]
    fn occupied_slash16s_deduplicates() {
        let addrs = vec![
            Ip::from_octets(10, 1, 0, 1),
            Ip::from_octets(10, 1, 200, 1),
            Ip::from_octets(10, 2, 0, 1),
        ];
        let subs = occupied_slash16s(&addrs);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].to_string(), "10.1.0.0/16");
    }

    #[test]
    fn population_public_addresses_filters_private() {
        let mut env = Environment::new();
        let realm = env.add_realm(NatRealm::home_192_168(Ip::from_octets(9, 0, 0, 1)).unwrap());
        let pop = Population::from_loci([
            Locus::Public(Ip::from_octets(1, 1, 1, 1)),
            Locus::Private {
                realm,
                ip: Ip::from_octets(192, 168, 0, 1),
            },
        ]);
        assert_eq!(pop.public_addresses(), vec![Ip::from_octets(1, 1, 1, 1)]);
    }
}
