//! Packed per-host state bits for the engine's streaming phases.
//!
//! The step loop tracks three boolean facts per host (infected,
//! removed, pending activation). As populations grow to millions of
//! hosts, `Vec<bool>` burns a cache line per 64 hosts; a packed
//! [`HostBits`] keeps the whole infection state of a 1M-host run in
//! ~125 KB per flag — small enough that the batched lookup/observe
//! phases stream it from L2 instead of main memory.

/// A fixed-length packed bitset indexed by host id.
///
/// # Examples
///
/// ```
/// use hotspots_sim::HostBits;
///
/// let mut bits = HostBits::new(100);
/// assert!(!bits.get(7));
/// bits.set(7);
/// assert!(bits.get(7));
/// bits.clear(7);
/// assert!(!bits.get(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBits {
    words: Vec<u64>,
    len: usize,
}

impl HostBits {
    /// Creates a bitset of `len` zero bits.
    pub fn new(len: usize) -> HostBits {
        HostBits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (same bounds discipline as slice indexing).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range");
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range");
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Sets bit `i` to 0.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range");
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes held by the bitset.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_across_word_boundaries() {
        let mut bits = HostBits::new(200);
        assert_eq!(bits.len(), 200);
        assert!(!bits.is_empty());
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!bits.get(i));
            bits.set(i);
            assert!(bits.get(i));
        }
        assert_eq!(bits.count_ones(), 8);
        bits.clear(64);
        assert!(!bits.get(64));
        assert!(bits.get(63) && bits.get(65), "neighbours untouched");
        assert_eq!(bits.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let bits = HostBits::new(64);
        let _ = bits.get(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_bounds_checked() {
        let mut bits = HostBits::new(0);
        bits.set(0);
    }

    #[test]
    fn heap_bytes_packs_64_per_word() {
        assert_eq!(HostBits::new(64).heap_bytes(), 8);
        assert_eq!(HostBits::new(65).heap_bytes(), 16);
        assert_eq!(HostBits::new(1_000_000).heap_bytes(), 125_000);
    }
}
