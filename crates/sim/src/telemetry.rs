//! The telemetry observer: full probe-stream accounting as a
//! [`SimObserver`].
//!
//! Verdict counts merge from the engine's per-batch ledger in O(1);
//! only the per-/8 landing counts aggregate per probe (one array
//! increment). [`Sink`] events fire only on infections, which are
//! bounded by the population, not the probe count. Parameterized over
//! [`NullSink`] the event path compiles to nothing, so the observer
//! stays within ~15% of [`crate::NullObserver`] even against the
//! batched engine's throughput (see `crates/bench`'s `telemetry`
//! bench).

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, DeliveryLedger, Locus};
use hotspots_telemetry::{Event, NullSink, ReportBuilder, Sink};

use crate::observers::SimObserver;

/// Accounts every [`Delivery`] verdict by reason, every delivered
/// probe by destination /8 (the hotspot surface itself), and every
/// infection by [`Locus`] — and emits one sink event per infection.
///
/// Composes with the existing observers via the tuple impl:
/// `(TelemetryObserver::new(...), FieldObserver::new(...))`.
///
/// # Examples
///
/// ```
/// use hotspots_sim::{Engine, Population, SimConfig, TelemetryObserver, UniformWorm};
///
/// let pop = Population::from_public(
///     (0..300u32).map(|i| hotspots_ipspace::Ip::new(0x0a00_0000 + i * 7)),
/// );
/// let config = SimConfig { max_time: 30.0, seeds: 3, ..SimConfig::default() };
/// let mut engine = Engine::new(config, pop, Default::default(), Box::new(UniformWorm));
/// let mut telemetry = TelemetryObserver::disabled();
/// let result = engine.run(&mut telemetry);
/// assert_eq!(telemetry.ledger().probes(), result.probes_sent);
/// ```
#[derive(Debug)]
pub struct TelemetryObserver<S: Sink = NullSink> {
    ledger: DeliveryLedger,
    slash8: Box<[u64; 256]>,
    infections_public: u64,
    infections_private: u64,
    sink: S,
}

impl TelemetryObserver<NullSink> {
    /// An observer that keeps all counters but emits no events —
    /// the cheapest full-accounting configuration.
    pub fn disabled() -> TelemetryObserver<NullSink> {
        TelemetryObserver::new(NullSink)
    }
}

impl<S: Sink> TelemetryObserver<S> {
    /// An observer emitting infection events into `sink`.
    pub fn new(sink: S) -> TelemetryObserver<S> {
        TelemetryObserver {
            ledger: DeliveryLedger::new(),
            slash8: Box::new([0; 256]),
            infections_public: 0,
            infections_private: 0,
            sink,
        }
    }

    /// The verdict ledger (`delivered + dropped == probes` by
    /// construction).
    pub fn ledger(&self) -> &DeliveryLedger {
        &self.ledger
    }

    /// Delivered-probe counts per destination /8: index `i` counts
    /// probes that landed (publicly or locally) in `i.0.0.0/8`.
    pub fn slash8_counts(&self) -> &[u64; 256] {
        &self.slash8
    }

    /// The `k` most-probed destination /8s as `(first octet, count)`,
    /// busiest first (ties broken low octet first), zero rows omitted.
    pub fn top_slash8s(&self, k: usize) -> Vec<(u8, u64)> {
        let mut rows: Vec<(u8, u64)> = self
            .slash8
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
        rows.sort_by_key(|&(octet, n)| (std::cmp::Reverse(n), octet));
        rows.truncate(k);
        rows
    }

    /// Infections of publicly addressed hosts.
    pub fn infections_public(&self) -> u64 {
        self.infections_public
    }

    /// Infections of NATed (private) hosts.
    pub fn infections_private(&self) -> u64 {
        self.infections_private
    }

    /// Total infections observed.
    pub fn infections(&self) -> u64 {
        self.infections_public + self.infections_private
    }

    /// The sink, for reading buffered events back.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Flushes the sink and returns it, dropping the counters.
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }

    /// Folds the accounting into a run report: probes, delivered,
    /// per-reason drops (stable `snake_case` labels), infections.
    pub fn fold_into(&self, report: &mut ReportBuilder) {
        fold_ledger(report, &self.ledger);
        report.add_infections(self.infections());
    }
}

/// Folds a verdict ledger into a run report: probes, deliveries, and
/// the per-reason drop breakdown under stable `snake_case` labels
/// (zero-count reasons omitted).
pub fn fold_ledger(report: &mut ReportBuilder, ledger: &DeliveryLedger) {
    report
        .add_probes(ledger.probes())
        .add_delivered(ledger.delivered());
    for (reason, count) in ledger.drops() {
        if count > 0 {
            report.add_dropped(reason.snake_label(), count);
        }
    }
}

impl<S: Sink> SimObserver for TelemetryObserver<S> {
    #[inline]
    fn on_probe(&mut self, _time: f64, _public_src: Ip, delivery: Delivery) {
        self.ledger.record(delivery);
        match delivery {
            Delivery::Public(dst) => self.slash8[dst.octets()[0] as usize] += 1,
            Delivery::Local { ip, .. } => self.slash8[ip.octets()[0] as usize] += 1,
            Delivery::Dropped(_) => {}
        }
    }

    /// Batch accounting: the verdict breakdown merges from the
    /// engine-aggregated batch ledger in O(1); only the per-/8 landing
    /// counts still walk the probes.
    fn on_probe_batch(&mut self, _time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        self.ledger.merge(ledger);
        for &(_, delivery) in probes {
            match delivery {
                Delivery::Public(dst) => self.slash8[dst.octets()[0] as usize] += 1,
                Delivery::Local { ip, .. } => self.slash8[ip.octets()[0] as usize] += 1,
                Delivery::Dropped(_) => {}
            }
        }
    }

    fn on_infection(&mut self, time: f64, host: usize, locus: Locus) {
        let locus_label = match locus {
            Locus::Public(_) => {
                self.infections_public += 1;
                "public"
            }
            Locus::Private { .. } => {
                self.infections_private += 1;
                "private"
            }
        };
        self.sink.emit(
            &Event::new("infection", time)
                .field("host", host as u64)
                .field("locus", locus_label)
                .field("slash8", locus.local_address().octets()[0] as u64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_netmodel::{DropReason, RealmId};
    use hotspots_telemetry::MemorySink;

    fn public(a: u8) -> Delivery {
        Delivery::Public(Ip::from_octets(a, 1, 2, 3))
    }

    #[test]
    fn ledger_and_slash8_counts_agree() {
        let mut obs = TelemetryObserver::disabled();
        obs.on_probe(0.0, Ip::MIN, public(11));
        obs.on_probe(0.0, Ip::MIN, public(11));
        obs.on_probe(0.0, Ip::MIN, public(192));
        obs.on_probe(
            0.0,
            Ip::MIN,
            Delivery::Local {
                realm: RealmId(0),
                ip: Ip::from_octets(192, 168, 0, 9),
            },
        );
        obs.on_probe(0.0, Ip::MIN, Delivery::Dropped(DropReason::PacketLoss));
        assert_eq!(obs.ledger().probes(), 5);
        assert_eq!(obs.ledger().delivered(), 4);
        assert_eq!(obs.slash8_counts()[11], 2);
        assert_eq!(obs.slash8_counts()[192], 2, "local landings count too");
        assert_eq!(
            obs.slash8_counts().iter().sum::<u64>(),
            obs.ledger().delivered()
        );
        assert_eq!(obs.top_slash8s(1), [(11, 2)]);
    }

    #[test]
    fn infections_split_by_locus_and_emit_events() {
        let mut obs = TelemetryObserver::new(MemorySink::new());
        obs.on_infection(1.0, 7, Locus::Public(Ip::from_octets(9, 9, 9, 9)));
        obs.on_infection(
            2.0,
            8,
            Locus::Private {
                realm: RealmId(0),
                ip: Ip::from_octets(10, 0, 0, 5),
            },
        );
        assert_eq!(obs.infections_public(), 1);
        assert_eq!(obs.infections_private(), 1);
        assert_eq!(obs.infections(), 2);
        let sink = obs.into_sink();
        let events: Vec<_> = sink.of_kind("infection").collect();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].to_jsonl(),
            r#"{"kind":"infection","t":2,"host":8,"locus":"private","slash8":10}"#
        );
    }

    #[test]
    fn fold_into_balances_the_report() {
        let mut obs = TelemetryObserver::disabled();
        obs.on_probe(0.0, Ip::MIN, public(4));
        obs.on_probe(0.0, Ip::MIN, Delivery::Dropped(DropReason::EgressFiltered));
        obs.on_probe(0.0, Ip::MIN, Delivery::Dropped(DropReason::EgressFiltered));
        let mut builder = ReportBuilder::new("test", "unit");
        obs.fold_into(&mut builder);
        let report = builder.build();
        assert_eq!(report.accounting_error(), None);
        assert_eq!(report.probes_sent, 3);
        assert_eq!(report.dropped, [("egress_filtered".to_owned(), 2)]);
    }
}
