//! Ad-hoc phase profile of the Slammer bench workload.

use hotspots_ipspace::Ip;
use hotspots_netmodel::Environment;
use hotspots_sim::{Engine, NullObserver, Population, SimConfig, SlammerWorm};
use std::time::Instant;

fn main() {
    let config = SimConfig {
        scan_rate: 2_000.0,
        seeds: 25,
        dt: 1.0,
        max_time: 300.0,
        stop_at_fraction: None,
        rng_seed: 7,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(
        config,
        Population::from_public((0..5_000u32).map(|i| Ip::new(0x0b00_0000 + i * 37))),
        Environment::new(),
        Box::new(SlammerWorm),
    );
    #[allow(clippy::disallowed_methods)] // profiling example measures wall time by design
    let start = Instant::now();
    let result = engine.run(&mut NullObserver);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{} probes in {secs:.3}s = {:.0} probes/sec",
        result.probes_sent,
        result.probes_sent as f64 / secs
    );
    #[cfg(feature = "telemetry")]
    for (name, d, calls) in result.telemetry.phases.iter() {
        println!("  {name:<12} {:.3}s  ({calls} windows)", d.as_secs_f64());
    }
}
