//! Criterion benchmarks live in `benches/`; see `DESIGN.md` for the
//! experiment-to-bench mapping.

#![forbid(unsafe_code)]
