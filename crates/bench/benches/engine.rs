//! Outbreak engine throughput.
//!
//! The workloads are the `bench-*` registry presets from
//! `hotspots-scenario` (at paper scale), so the exact configurations
//! being timed are inspectable (`hotspots spec bench-slammer`) and stay
//! in lockstep with what `hotspots run` executes. Besides the usual
//! Criterion groups, the custom `main` times a fixed Slammer outbreak
//! (serial, and with `--features parallel` also multi-threaded) and
//! writes the probes/sec numbers to `BENCH_engine.json` at the
//! repository root. Set `HOTSPOTS_BENCH_BASELINE=<probes/sec>` to record
//! a pre-batching baseline alongside them.

use criterion::{black_box, criterion_group, BatchSize, Criterion};
use hotspots_ipspace::Ip;
use hotspots_scenario::{find_preset, Built, Scale};
use hotspots_sim::{Engine, FieldObserver, NullObserver};
use hotspots_telescope::DetectorField;
use std::time::Instant;

/// Builds a bench preset fresh (engines are consumed per run).
fn built(preset: &str) -> Built {
    find_preset(preset)
        .expect("registered bench preset")
        .spec(Scale::Paper)
        .build()
        .expect("bench presets build")
}

fn engine_from(b: Built) -> Engine {
    Engine::new(b.config, b.population, b.environment, b.worm)
}

fn outbreak(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    group.bench_function("run_5k_hosts_100s_null_observer", |b| {
        b.iter_batched(
            || engine_from(built("bench-hitlist")),
            |mut engine| black_box(engine.run(&mut NullObserver)),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("run_5k_hosts_100s_detector_field", |b| {
        let sensors: Vec<hotspots_ipspace::Prefix> = (0..1_000u32)
            .map(|i| hotspots_ipspace::Prefix::containing(Ip::new(0x0b00_0000 + i * 4096), 24))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        b.iter_batched(
            || {
                (
                    engine_from(built("bench-hitlist")),
                    FieldObserver::new(DetectorField::new(sensors.clone(), 5)),
                )
            },
            |(mut engine, mut observer)| black_box(engine.run(&mut observer)),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, outbreak);

/// One timed Slammer outbreak (the `bench-slammer` preset): 25 seeds
/// LCG-walking the full IPv4 space over a 5k-host population.
/// Infections are rare (the population is a ~1e-6 sliver of the scanned
/// space), so the measurement is dominated by the probe pipeline —
/// exactly the path the batched engine restructures.
fn slammer_run(threads: usize) -> (f64, u64) {
    let mut best_probes_per_sec = 0.0f64;
    let mut probes_sent = 0u64;
    for _ in 0..3 {
        let mut b = built("bench-slammer");
        b.config.threads = threads;
        let mut engine = engine_from(b);
        #[allow(clippy::disallowed_methods)] // benches measure wall time by design
        let start = Instant::now();
        let result = black_box(engine.run(&mut NullObserver));
        let secs = start.elapsed().as_secs_f64();
        probes_sent = result.probes_sent;
        best_probes_per_sec = best_probes_per_sec.max(result.probes_sent as f64 / secs);
    }
    (best_probes_per_sec, probes_sent)
}

fn main() {
    benches();

    let (serial, probes) = slammer_run(1);
    println!("slammer_throughput/serial              {serial:>12.0} probes/sec ({probes} probes)");

    #[cfg(feature = "parallel")]
    let parallel = {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
        let (rate, _) = slammer_run(threads);
        println!(
            "slammer_throughput/parallel x{threads}          {rate:>12.0} probes/sec (speedup {:.2}x)",
            rate / serial
        );
        Some((threads, rate))
    };
    #[cfg(not(feature = "parallel"))]
    let parallel: Option<(usize, f64)> = None;

    let mut fields = vec![
        format!("\"probes\": {probes}"),
        format!("\"serial_probes_per_sec\": {serial:.0}"),
    ];
    if let Ok(baseline) = std::env::var("HOTSPOTS_BENCH_BASELINE") {
        if let Ok(rate) = baseline.parse::<f64>() {
            fields.push(format!("\"seed_probes_per_sec\": {rate:.0}"));
            fields.push(format!("\"serial_speedup_vs_seed\": {:.3}", serial / rate));
        }
    }
    if let Some((threads, rate)) = parallel {
        fields.push(format!("\"parallel_threads\": {threads}"));
        fields.push(format!("\"parallel_probes_per_sec\": {rate:.0}"));
        fields.push(format!("\"parallel_speedup\": {:.3}", rate / serial));
    }
    let json = format!(
        "{{\"benchmark\": \"slammer_5k_hosts_300s\", {}}}\n",
        fields.join(", ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
