//! Outbreak engine throughput.
//!
//! The workloads are the `bench-*` registry presets from
//! `hotspots-scenario` (at paper scale), so the exact configurations
//! being timed are inspectable (`hotspots spec bench-slammer`) and stay
//! in lockstep with what `hotspots run` executes. Besides the usual
//! Criterion groups, the custom `main` times a fixed Slammer outbreak
//! at each thread count (serial only unless built with `--features
//! parallel`) and writes the scaling curve to `BENCH_engine.json` at
//! the repository root, in the same [`BenchSummary`] schema the
//! `hotspots profile --scaling` harness writes, plus a memory block
//! recording the `bench-million` compressed store against its
//! dense-equivalent bytes. Overrides:
//! `HOTSPOTS_BENCH_BASELINE=<probes/sec>` records a pre-batching seed
//! baseline (else the existing file's baseline is carried forward);
//! `HOTSPOTS_BENCH_THREADS=2,4,8` picks the parallel points.

use criterion::{black_box, criterion_group, BatchSize, Criterion};
use hotspots_ipspace::Ip;
use hotspots_scenario::{find_preset, Built, Scale};
use hotspots_sim::{Engine, FieldObserver, NullObserver};
use hotspots_telemetry::{BenchSummary, MemoryStats, ScalingPoint};
use hotspots_telescope::DetectorField;
use std::time::Instant;

/// Builds a bench preset fresh (engines are consumed per run).
fn built(preset: &str) -> Built {
    find_preset(preset)
        .expect("registered bench preset")
        .spec(Scale::Paper)
        .build()
        .expect("bench presets build")
}

fn engine_from(b: Built) -> Engine {
    Engine::new(b.config, b.population, b.environment, b.worm)
}

fn outbreak(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    group.bench_function("run_5k_hosts_100s_null_observer", |b| {
        b.iter_batched(
            || engine_from(built("bench-hitlist")),
            |mut engine| black_box(engine.run(&mut NullObserver)),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("run_5k_hosts_100s_detector_field", |b| {
        let sensors: Vec<hotspots_ipspace::Prefix> = (0..1_000u32)
            .map(|i| hotspots_ipspace::Prefix::containing(Ip::new(0x0b00_0000 + i * 4096), 24))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        b.iter_batched(
            || {
                (
                    engine_from(built("bench-hitlist")),
                    FieldObserver::new(DetectorField::new(sensors.clone(), 5)),
                )
            },
            |(mut engine, mut observer)| black_box(engine.run(&mut observer)),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, outbreak);

/// One timed Slammer outbreak (the `bench-slammer` preset): 25 seeds
/// LCG-walking the full IPv4 space over a 5k-host population.
/// Infections are rare (the population is a ~1e-6 sliver of the scanned
/// space), so the measurement is dominated by the probe pipeline —
/// exactly the path the batched engine restructures. Best of three;
/// with the `telemetry` feature the best run's phase breakdown rides
/// along.
fn slammer_run(threads: usize) -> ScalingPoint {
    let mut point = ScalingPoint {
        threads: threads as u64,
        probes_per_sec: 0.0,
        speedup: 0.0,
        phase_breakdown: Vec::new(),
    };
    for _ in 0..3 {
        let mut b = built("bench-slammer");
        b.config.threads = threads;
        let mut engine = engine_from(b);
        #[allow(clippy::disallowed_methods)] // benches measure wall time by design
        let start = Instant::now();
        let result = black_box(engine.run(&mut NullObserver));
        let secs = start.elapsed().as_secs_f64();
        let rate = result.probes_sent as f64 / secs;
        if rate > point.probes_per_sec {
            point.probes_per_sec = rate;
            #[cfg(feature = "telemetry")]
            {
                point.phase_breakdown = result
                    .telemetry
                    .phases
                    .iter()
                    .map(|(name, total, _)| (name.to_owned(), total.as_secs_f64()))
                    .collect();
            }
        }
    }
    point
}

/// Probes one `bench-slammer` run emits (bit-identical at any thread
/// count, so one cheap serial run suffices).
fn slammer_probes() -> u64 {
    let mut engine = engine_from(built("bench-slammer"));
    engine.run(&mut NullObserver).probes_sent
}

fn main() {
    benches();

    let serial = slammer_run(1);
    println!(
        "slammer_throughput/serial              {:>12.0} probes/sec",
        serial.probes_per_sec
    );
    #[cfg_attr(not(feature = "parallel"), allow(unused_variables))]
    let serial_rate = serial.probes_per_sec;
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut points = vec![serial];

    #[cfg(feature = "parallel")]
    {
        let counts: Vec<usize> = match std::env::var("HOTSPOTS_BENCH_THREADS") {
            Ok(list) => list
                .split(',')
                .filter_map(|part| part.trim().parse().ok())
                .filter(|&n| n > 1)
                .collect(),
            Err(_) => {
                let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
                [2usize, 4, 8, 16]
                    .into_iter()
                    .filter(|&n| n <= (2 * cores).max(2))
                    .collect()
            }
        };
        for threads in counts {
            let point = slammer_run(threads);
            println!(
                "slammer_throughput/parallel x{threads:<2}         {:>12.0} probes/sec (speedup {:.2}x)",
                point.probes_per_sec,
                point.probes_per_sec / serial_rate
            );
            points.push(point);
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    // Seed baseline: the env override wins, else carry the existing
    // file's baseline forward across rewrites.
    let seed = std::env::var("HOTSPOTS_BENCH_BASELINE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .or_else(|| {
            std::fs::read_to_string(path)
                .ok()
                .and_then(|text| BenchSummary::from_json(&text).ok())
                .and_then(|old| old.seed_probes_per_sec)
        });
    // The memory block tracks the million-host compressed store (the
    // scaling curve's 5k-host population is noise next to it).
    let population = &built("bench-million").population;
    let summary = BenchSummary::from_points("bench-slammer_paper", slammer_probes(), seed, points)
        .with_memory(MemoryStats {
            hosts: population.len() as u64,
            store: population.store_label().to_owned(),
            store_bytes: population.store_bytes() as u64,
            dense_store_bytes: population.dense_equivalent_bytes() as u64,
            resident_bytes: hotspots_telemetry::resident_bytes(),
        });
    std::fs::write(path, summary.to_json()).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
