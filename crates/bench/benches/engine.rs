//! Outbreak engine throughput.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hotspots_ipspace::Ip;
use hotspots_netmodel::Environment;
use hotspots_sim::{Engine, FieldObserver, HitListWorm, NullObserver, Population, SimConfig};
use hotspots_targeting::HitList;
use hotspots_telescope::DetectorField;

fn engine_config(max_time: f64) -> SimConfig {
    SimConfig {
        scan_rate: 10.0,
        seeds: 25,
        dt: 1.0,
        max_time,
        stop_at_fraction: None,
        rng_seed: 1,
        ..SimConfig::default()
    }
}

fn population(n: u32) -> Population {
    Population::from_public((0..n).map(|i| Ip::new(0x0b00_0000 + i * 37)))
}

fn outbreak(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let list = HitList::new(vec!["11.0.0.0/12".parse().unwrap()]).unwrap();

    group.bench_function("run_5k_hosts_100s_null_observer", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    engine_config(100.0),
                    population(5_000),
                    Environment::new(),
                    Box::new(HitListWorm::new(list.clone())),
                )
            },
            |mut engine| black_box(engine.run(&mut NullObserver)),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("run_5k_hosts_100s_detector_field", |b| {
        let sensors: Vec<hotspots_ipspace::Prefix> = (0..1_000u32)
            .map(|i| hotspots_ipspace::Prefix::containing(Ip::new(0x0b00_0000 + i * 4096), 24))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        b.iter_batched(
            || {
                (
                    Engine::new(
                        engine_config(100.0),
                        population(5_000),
                        Environment::new(),
                        Box::new(HitListWorm::new(list.clone())),
                    ),
                    FieldObserver::new(DetectorField::new(sensors.clone(), 5)),
                )
            },
            |(mut engine, mut observer)| black_box(engine.run(&mut observer)),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, outbreak);
criterion_main!(benches);
