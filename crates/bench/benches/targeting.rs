//! Target-generation strategy throughput (the simulator's hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotspots_ipspace::{Ip, Prefix};
use hotspots_prng::{SplitMix, SqlsortDll};
use hotspots_targeting::{
    BlasterScanner, CodeRed2Scanner, HitList, HitListScanner, PermutationScanner, SlammerScanner,
    TargetGenerator, UniformScanner,
};

fn strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("targeting");
    group.bench_function("uniform", |b| {
        let mut g = UniformScanner::new(SplitMix::new(1));
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("hitlist_10_prefixes", |b| {
        let prefixes: Vec<Prefix> = (0..10u32)
            .map(|i| Prefix::containing(Ip::from_octets(10 + i as u8, 0, 0, 0), 16))
            .collect();
        let mut g = HitListScanner::new(HitList::new(prefixes).unwrap(), SplitMix::new(1));
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("hitlist_4481_prefixes", |b| {
        // one /16 per step through the space, paper-scale list length
        let prefixes: Vec<Prefix> = (0..4481u32)
            .map(|i| {
                let base = (i * 14_831) % (1 << 16); // spread, distinct /16s
                Prefix::containing(Ip::new(base << 16), 16)
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut g = HitListScanner::new(HitList::new(prefixes).unwrap(), SplitMix::new(1));
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("codered2", |b| {
        let mut g = CodeRed2Scanner::new(Ip::from_octets(57, 20, 3, 9), SplitMix::new(1));
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("blaster_sequential", |b| {
        let mut g = BlasterScanner::from_tick_count(Ip::from_octets(10, 0, 0, 1), 30_000);
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("slammer", |b| {
        let mut g = SlammerScanner::new(SqlsortDll::Sp3, 9);
        b.iter(|| black_box(g.next_target()));
    });
    group.bench_function("permutation", |b| {
        let mut g = PermutationScanner::new(SplitMix::new(1), 1 << 20);
        b.iter(|| black_box(g.next_target()));
    });
    group.finish();
}

criterion_group!(benches, strategies);
criterion_main!(benches);
