//! PRNG substrate throughput and cycle-analysis benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotspots_prng::cycles::{order_mod_pow2, AffineMap};
use hotspots_prng::{MsvcrtRand, Prng32, SlammerPrng, SplitMix, SqlsortDll};

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng");
    group.bench_function("msvcrt_rand15", |b| {
        let mut r = MsvcrtRand::with_seed(1);
        b.iter(|| black_box(r.rand15()));
    });
    group.bench_function("slammer_next_target", |b| {
        let mut r = SlammerPrng::new(SqlsortDll::Gold, 7);
        b.iter(|| black_box(r.next_target()));
    });
    group.bench_function("splitmix_next_u32", |b| {
        let mut r = SplitMix::new(7);
        b.iter(|| black_box(r.next_u32()));
    });
    group.finish();
}

fn cycle_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycles");
    let map = AffineMap::slammer(SqlsortDll::Sp2);
    group.bench_function("cycle_id", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9e37_79b9);
            black_box(map.cycle_id(x).unwrap())
        });
    });
    group.bench_function("cycle_length_algebraic", |b| {
        let mut x = 1u32;
        b.iter(|| {
            x = x.wrapping_add(0x9e37_79b9);
            black_box(map.cycle_length(x).unwrap())
        });
    });
    group.bench_function("order_mod_pow2_32", |b| {
        b.iter(|| black_box(order_mod_pow2(black_box(214013), 32)));
    });
    group.bench_function("jump_1e6_steps", |b| {
        b.iter(|| black_box(map.jump(black_box(12345), 1_000_000)));
    });
    group.bench_function("cycle_structure_full", |b| {
        b.iter(|| black_box(map.cycle_structure().unwrap()));
    });
    group.finish();
}

criterion_group!(benches, generators, cycle_analysis);
criterion_main!(benches);
