//! One micro-bench per paper table/figure: a scaled-down version of each
//! regeneration pipeline, so regressions in any experiment path show up
//! in `cargo bench`. (The full-scale regenerations are the
//! `hotspots-experiments` binaries.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotspots::scenarios::{blaster, codered, detection, filtering, slammer};
use hotspots_botnet::corpus;
use hotspots_ipspace::{ims_deployment, Ip};
use hotspots_prng::SqlsortDll;

fn tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_parse_and_extract", |b| {
        b.iter(|| {
            let cmds = corpus::table1();
            black_box(corpus::hit_list_report(
                &cmds,
                Ip::from_octets(141, 20, 0, 1),
            ))
        });
    });
    group.bench_function("table2_filtering_micro", |b| {
        let study = filtering::FilteringStudy {
            infected_per_enterprise: 10,
            infected_per_isp: 40,
            probes_per_host: 500,
            ..filtering::FilteringStudy::default()
        };
        b.iter(|| black_box(filtering::table2(&study)));
    });
    group.finish();
}

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_blaster_micro", |b| {
        let study = blaster::BlasterStudy {
            hosts: 1_000,
            window_secs: 86_400.0,
            ..blaster::BlasterStudy::default()
        };
        b.iter(|| black_box(blaster::sources_by_block(&study)));
    });
    group.bench_function("fig2_slammer_micro", |b| {
        let study = slammer::SlammerStudy {
            hosts: 2_000,
            ..slammer::SlammerStudy::default()
        }
        .with_m_block_filter();
        b.iter(|| black_box(slammer::sources_by_block(&study)));
    });
    group.bench_function("fig3_host_histogram_micro", |b| {
        let blocks = ims_deployment();
        let seed = Ip::from_octets(96, 1, 2, 3).to_le_state();
        b.iter(|| {
            black_box(slammer::host_histogram(
                SqlsortDll::Gold,
                seed,
                50_000,
                &blocks,
            ))
        });
    });
    group.bench_function("fig3c_cycle_bands", |b| {
        b.iter(|| black_box(slammer::cycle_bands(SqlsortDll::Sp2)));
    });
    group.bench_function("fig4_quarantine_micro", |b| {
        let blocks = ims_deployment();
        b.iter(|| {
            black_box(codered::quarantine_run(
                Ip::from_octets(192, 168, 0, 100),
                100_000,
                &blocks,
                4,
            ))
        });
    });
    group.bench_function("fig5a_hitlist_micro", |b| {
        let study = detection::DetectionStudy {
            population: 1_000,
            slash8s: 8,
            max_time: 500.0,
            stop_at_fraction: 0.8,
            ..detection::DetectionStudy::default()
        };
        b.iter(|| black_box(detection::hitlist_runs(&study, &[Some(3)])));
    });
    group.bench_function("fig5c_nat_micro", |b| {
        let study = detection::DetectionStudy {
            population: 1_000,
            slash8s: 8,
            max_time: 500.0,
            stop_at_fraction: 0.8,
            ..detection::DetectionStudy::default()
        };
        b.iter(|| {
            black_box(detection::nat_run(
                &study,
                0.15,
                detection::Placement::Inside192,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, tables, figures);
criterion_main!(benches);
