//! Telescope lookup and recording throughput, plus the IpMap rationale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotspots_ipspace::{Ip, Prefix};
use hotspots_prng::{Prng32, SplitMix};
use hotspots_sim::IpMap;
use hotspots_telescope::{BlockIndex, DetectorField};
use std::collections::HashMap;

fn block_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_index");
    let ims = BlockIndex::new(
        hotspots_ipspace::ims_deployment()
            .iter()
            .map(|b| b.prefix())
            .collect(),
    );
    group.bench_function("find_ims_11_blocks", |b| {
        let mut g = SplitMix::new(3);
        b.iter(|| black_box(ims.find(Ip::new(g.next_u32()))));
    });
    let ten_k: Vec<Prefix> = (0..10_000u32)
        .map(|i| Prefix::containing(Ip::new(i.wrapping_mul(429_496) << 8), 24))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let field_index = BlockIndex::new(ten_k);
    group.bench_function("find_10k_slash24s", |b| {
        let mut g = SplitMix::new(3);
        b.iter(|| black_box(field_index.find(Ip::new(g.next_u32()))));
    });
    group.finish();
}

fn maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("address_lookup");
    let keys: Vec<u32> = (0..100_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let ipmap: IpMap = keys.iter().map(|&k| (k, k >> 8)).collect();
    let stdmap: HashMap<u32, u32> = keys.iter().map(|&k| (k, k >> 8)).collect();
    group.bench_function("ipmap_get_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(ipmap.get(keys[i]))
        });
    });
    group.bench_function("std_hashmap_get_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(stdmap.get(&keys[i]))
        });
    });
    group.bench_function("ipmap_get_miss", |b| {
        let mut g = SplitMix::new(5);
        b.iter(|| black_box(ipmap.get(g.next_u32() | 1)));
    });
    group.finish();
}

fn detector_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_field");
    let sensors: Vec<Prefix> = (0..4481u32)
        .map(|i| Prefix::containing(Ip::new(i.wrapping_mul(958_111) << 10), 24))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    group.bench_function("observe_4481_sensors", |b| {
        let mut field = DetectorField::new(sensors.clone(), 5);
        let mut g = SplitMix::new(9);
        b.iter(|| black_box(field.observe(0.0, Ip::new(g.next_u32()))));
    });
    group.finish();
}

criterion_group!(benches, block_index, maps, detector_field);
criterion_main!(benches);
