//! Ablations of the design decisions called out in `DESIGN.md`:
//!
//! 1. byte order: Slammer state→IP little-endian (faithful) vs big-endian
//!    (naive) — the LE mapping is what pins sensor blocks onto few cycles;
//! 2. cycle analysis: exact algebra vs brute-force iteration;
//! 3. timer quantization: 16 ms `GetTickCount()` granularity vs an ideal
//!    1 ms timer — quantization drives seed collisions.
//!
//! Each ablation both *times* the alternatives and (in `figures`-style
//! derived statistics printed at bench setup) demonstrates the behavioral
//! difference the design doc claims.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotspots_ipspace::{ims_deployment, Deployment, Ip};
use hotspots_prng::cycles::AffineMap;
use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
use hotspots_prng::SqlsortDll;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn byte_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_byte_order");
    group.sample_size(10);
    let map = AffineMap::slammer(SqlsortDll::Gold);
    let h_block = ims_deployment().by_label("H").expect("H exists").prefix();

    // Behavioral demonstration: distinct cycles through H under the
    // faithful little-endian mapping vs the naive big-endian one.
    let le_cycles = map
        .cycles_through_states(h_block.iter().map(Ip::to_le_state))
        .expect("valid");
    let be_cycles = map
        .cycles_through_states(h_block.iter().map(|ip| ip.value()))
        .expect("valid");
    println!(
        "[ablation] cycles through H: little-endian={} big-endian={}",
        le_cycles.len(),
        be_cycles.len()
    );

    group.bench_function("cycles_through_h_le", |b| {
        b.iter(|| {
            black_box(
                map.cycles_through_states(h_block.iter().map(Ip::to_le_state))
                    .expect("valid"),
            )
        });
    });
    group.bench_function("cycles_through_h_be", |b| {
        b.iter(|| {
            black_box(
                map.cycles_through_states(h_block.iter().map(|ip| ip.value()))
                    .expect("valid"),
            )
        });
    });
    group.finish();
}

fn cycle_length_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cycle_length");
    // a 2^20-bit toy map keeps brute force measurable
    let map = AffineMap::new(214013, 0x5000, 20).expect("valid map");
    let seed = 12_345u32;
    assert_eq!(
        map.cycle_length(seed).expect("algebraic"),
        map.iterated_cycle_length(seed, 1 << 21).expect("brute"),
    );
    group.bench_function("algebraic_2e20", |b| {
        b.iter(|| black_box(map.cycle_length(black_box(seed)).unwrap()));
    });
    group.bench_function("iterated_2e20", |b| {
        b.iter(|| black_box(map.iterated_cycle_length(black_box(seed), 1 << 21).unwrap()));
    });
    group.finish();
}

fn timer_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_timer_resolution");
    let quantized = SeedModel::blaster_reboot(HardwareGeneration::PentiumIii);
    let ideal = quantized.with_resolution_ms(1);

    // Behavioral demonstration: distinct seeds among 10k reboots.
    let distinct = |model: &SeedModel| -> usize {
        let mut rng = StdRng::seed_from_u64(11);
        (0..10_000)
            .map(|_| model.sample_seed(&mut rng))
            .collect::<std::collections::HashSet<u32>>()
            .len()
    };
    println!(
        "[ablation] distinct reboot seeds of 10k machines: 16ms timer={} 1ms timer={}",
        distinct(&quantized),
        distinct(&ideal)
    );

    group.bench_function("sample_seed_quantized", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(quantized.sample_seed(&mut rng)));
    });
    group.bench_function("sample_seed_ideal", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(ideal.sample_seed(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    byte_order,
    cycle_length_methods,
    timer_quantization
);
criterion_main!(benches);
