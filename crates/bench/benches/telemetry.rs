//! Telemetry overhead guard: full probe-stream accounting
//! (`TelemetryObserver` over a `NullSink`) must stay cheap relative to
//! the free observer (`NullObserver`) on a fixed Slammer run — the
//! zero-cost-when-off invariant, measured.
//!
//! Besides the criterion groups, this bench prints an explicit
//! `overhead:` line comparing median step throughput (target < 15%).
//! The target was < 5% against the pre-batching engine; the batched
//! pipeline made the null baseline ~2× faster (and `NullObserver` now
//! skips probe iteration entirely via the batch hook), so the same
//! absolute per-probe accounting cost — one /8 landing count; the
//! verdict ledger merges O(1) per batch — is a larger fraction of a
//! smaller denominator.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hotspots_ipspace::Ip;
use hotspots_netmodel::Environment;
use hotspots_sim::{Engine, NullObserver, Population, SimConfig, SlammerWorm, TelemetryObserver};
use hotspots_telemetry::MemorySink;

/// The fixed workload: 25 Slammer seeds scanning the whole v4 space at
/// 400 probes/s for 100 simulated seconds (~1M routed probes — large
/// enough that the batched engine's ~millisecond runs median out over
/// scheduler noise).
fn slammer_engine() -> Engine {
    slammer_engine_with(false)
}

/// Same workload with `SimConfig::trace` requested. In this bench's
/// default build (no `telemetry` feature on `hotspots-sim`) the flag is
/// inert — the trace code does not exist — so comparing against the
/// plain run measures the zero-cost-when-off contract for the trace
/// path.
fn slammer_engine_with(trace: bool) -> Engine {
    let config = SimConfig {
        scan_rate: 400.0,
        seeds: 25,
        dt: 1.0,
        max_time: 100.0,
        stop_at_fraction: None,
        rng_seed: 20_030_125, // Slammer's release date, for flavor
        trace,
        ..SimConfig::default()
    };
    let pop = Population::from_public((0..2_000u32).map(|i| Ip::new(0x0b00_0000 + i * 61)));
    Engine::new(config, pop, Environment::new(), Box::new(SlammerWorm))
}

fn observers(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);

    group.bench_function("slammer_run_null_observer", |b| {
        b.iter_batched(
            slammer_engine,
            |mut engine| black_box(engine.run(&mut NullObserver)),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("slammer_run_telemetry_nullsink", |b| {
        b.iter_batched(
            slammer_engine,
            |mut engine| {
                let mut telemetry = TelemetryObserver::disabled();
                black_box(engine.run(&mut telemetry));
                black_box(telemetry.ledger().probes())
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("slammer_run_trace_flag_inert", |b| {
        b.iter_batched(
            || slammer_engine_with(true),
            |mut engine| black_box(engine.run(&mut NullObserver)),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("slammer_run_telemetry_memorysink", |b| {
        b.iter_batched(
            slammer_engine,
            |mut engine| {
                let mut telemetry = TelemetryObserver::new(MemorySink::new());
                black_box(engine.run(&mut telemetry));
                black_box(telemetry.into_sink().events().len())
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

/// Medians a few wall-clock samples of `run`.
fn median_secs(mut run: impl FnMut() -> u64, samples: usize) -> (f64, u64) {
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    let mut probes = 0;
    for _ in 0..samples {
        #[allow(clippy::disallowed_methods)] // benches measure wall time by design
        let start = Instant::now();
        probes = run();
        times.push(start.elapsed());
    }
    times.sort();
    (times[samples / 2].as_secs_f64(), probes)
}

/// The guard proper: prints the measured overhead so the bench output
/// documents the invariant (`TelemetryObserver(NullSink)` within 15% of
/// `NullObserver` on the same run).
fn overhead_guard() {
    const SAMPLES: usize = 7;
    let (null_secs, null_probes) = median_secs(
        || {
            let mut engine = slammer_engine();
            black_box(engine.run(&mut NullObserver)).probes_sent
        },
        SAMPLES,
    );
    let (telemetry_secs, telemetry_probes) = median_secs(
        || {
            let mut engine = slammer_engine();
            let mut telemetry = TelemetryObserver::disabled();
            black_box(engine.run(&mut telemetry));
            telemetry.ledger().probes()
        },
        SAMPLES,
    );
    let (trace_secs, trace_probes) = median_secs(
        || {
            let mut engine = slammer_engine_with(true);
            black_box(engine.run(&mut NullObserver)).probes_sent
        },
        SAMPLES,
    );
    assert_eq!(null_probes, telemetry_probes, "identical fixed workloads");
    assert_eq!(
        null_probes, trace_probes,
        "trace flag must not change results"
    );
    let overhead = 100.0 * (telemetry_secs - null_secs) / null_secs;
    let trace_overhead = 100.0 * (trace_secs - null_secs) / null_secs;
    println!(
        "telemetry/overhead_guard: {null_probes} probes, null {:.2} ms, \
         telemetry(NullSink) {:.2} ms — overhead: {overhead:+.2}% (target < 15%)",
        null_secs * 1e3,
        telemetry_secs * 1e3,
    );
    println!(
        "telemetry/overhead_guard: trace flag (inert without the telemetry \
         feature) {:.2} ms — overhead: {trace_overhead:+.2}% (target < 15%)",
        trace_secs * 1e3,
    );
}

fn guard(_c: &mut Criterion) {
    overhead_guard();
}

criterion_group!(benches, observers, guard);
criterion_main!(benches);
