//! `hotspots run <preset> --quick` emits the same run report as the
//! dedicated experiment binary — field for field, modulo the fields
//! that name the binary or measure wall time.
//!
//! This is the acceptance contract for the unified CLI: the registry
//! preset *is* the experiment, and the runner binaries are only
//! alternative entry points to the identical computation.

use hotspots_scenario::value::{self, Value};
use std::process::Command;

/// Runs a binary with args and returns the last JSONL line on stdout
/// (the run report).
fn report_line(bin: &str, args: &[&str]) -> Value {
    let out = Command::new(bin)
        .args(args)
        .env_remove("HOTSPOTS_RUN_REPORT")
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("{bin}: no JSONL report on stdout"));
    value::from_json(line).unwrap_or_else(|e| panic!("{bin}: unparseable report: {e}\n{line}"))
}

/// Strips the fields that legitimately differ between entry points:
/// the binary name and anything measuring host wall time.
fn normalized(mut report: Value) -> Value {
    if let Value::Table(entries) = &mut report {
        entries.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                "binary" | "wall_seconds" | "peak_step_seconds" | "phases"
            )
        });
    }
    report
}

fn assert_parity(preset: &str, dedicated_bin: &str) {
    let cli = report_line(env!("CARGO_BIN_EXE_hotspots"), &["run", preset, "--quick"]);
    let dedicated = report_line(dedicated_bin, &["--quick"]);
    assert_eq!(
        normalized(cli.clone()),
        normalized(dedicated.clone()),
        "{preset}: CLI and dedicated binary reports diverge\n  cli: {}\n  bin: {}",
        value::to_json(&cli),
        value::to_json(&dedicated),
    );
}

#[test]
fn hotspots_run_fig2_matches_fig2_slammer() {
    assert_parity("fig2", env!("CARGO_BIN_EXE_fig2_slammer"));
}

#[test]
fn hotspots_run_table2_matches_table2_filtering() {
    assert_parity("table2", env!("CARGO_BIN_EXE_table2_filtering"));
}

#[test]
fn hotspots_run_fig5a_matches_fig5a_hitlist_infection() {
    assert_parity("fig5a", env!("CARGO_BIN_EXE_fig5a_hitlist_infection"));
}
