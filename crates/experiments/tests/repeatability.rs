//! Run-to-run determinism: two invocations of the same experiment
//! binary must produce byte-identical output, modulo the fields that
//! measure host wall time. This is the regression guard for the
//! hash-iteration fixes enforced by lint rule D2 (unordered-iteration):
//! a `HashMap` leaking into report code shows up here as line churn.

use hotspots_scenario::value::{self, Value};
use std::process::Command;

fn run_stdout(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env_remove("HOTSPOTS_RUN_REPORT")
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Strips wall-time fields from a JSONL run report so the rest can be
/// compared exactly (same normalization as the CLI parity suite).
fn normalized(line: &str) -> String {
    let mut report = value::from_json(line).unwrap_or_else(|e| panic!("bad JSONL: {e}\n{line}"));
    if let Value::Table(entries) = &mut report {
        entries.retain(|(k, _)| {
            !matches!(k.as_str(), "wall_seconds" | "peak_step_seconds" | "phases")
        });
    }
    value::to_json(&report)
}

#[test]
fn fig2_slammer_quick_is_byte_identical_across_runs() {
    let bin = env!("CARGO_BIN_EXE_fig2_slammer");
    let a = run_stdout(bin, &["--quick"]);
    let b = run_stdout(bin, &["--quick"]);
    let (a_lines, b_lines): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    assert_eq!(a_lines.len(), b_lines.len(), "line counts diverge");
    for (i, (la, lb)) in a_lines.iter().zip(&b_lines).enumerate() {
        if la.starts_with('{') || lb.starts_with('{') {
            assert_eq!(
                normalized(la),
                normalized(lb),
                "line {}: JSONL reports diverge beyond wall-time fields",
                i + 1
            );
        } else {
            assert_eq!(la, lb, "line {}: output diverges between runs", i + 1);
        }
    }
}

#[test]
fn fig2_jsonl_report_carries_stable_key_order() {
    // Key order is part of byte-identity: the report builder must emit
    // fields in insertion order, never hash order.
    let bin = env!("CARGO_BIN_EXE_fig2_slammer");
    let report_line = |s: &str| -> String {
        s.lines()
            .rev()
            .find(|l| l.starts_with('{'))
            .expect("run report present")
            .to_owned()
    };
    let a = report_line(&run_stdout(bin, &["--quick"]));
    let b = report_line(&run_stdout(bin, &["--quick"]));
    let keys = |line: &str| -> Vec<String> {
        match value::from_json(line).expect("parseable report") {
            Value::Table(entries) => entries.into_iter().map(|(k, _)| k).collect(),
            other => panic!("report is not a table: {other:?}"),
        }
    };
    assert_eq!(keys(&a), keys(&b), "report key order diverges across runs");
}
