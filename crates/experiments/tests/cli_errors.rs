//! Exit-code contract for the `hotspots` CLI (PR 10 bugfix).
//!
//! `HotspotsError::exit_code` promises that mistakes the caller can
//! fix — bad flags, bad specs, unknown targets — exit 2, while runtime
//! failures — unreadable files, worker losses — exit 1. This table
//! pins every error entry point to its code and stderr shape, so a
//! regression that routes an I/O failure through the usage path (or
//! vice versa) fails loudly.

use std::process::Command;

struct Case {
    /// Human-readable label for failure messages.
    label: &'static str,
    args: &'static [&'static str],
    /// Expected process exit code: 2 usage, 1 runtime.
    code: i32,
    /// A substring the stderr diagnostic must contain.
    stderr_has: &'static str,
    /// Whether stderr should carry the usage dump (`usage: hotspots`).
    /// Usage mistakes about the *shape* of the invocation dump usage;
    /// typed failures about its *content* (bad file, bad value) do not.
    usage_dump: bool,
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hotspots"))
        .args(args)
        .env_remove("HOTSPOTS_RUN_REPORT")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn hotspots {args:?}: {e}"));
    let code = out.status.code().unwrap_or_else(|| {
        panic!("hotspots {args:?} terminated without an exit code");
    });
    (code, String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn error_paths_pin_exit_code_and_stderr_shape() {
    let table = [
        // --- usage errors about the invocation's shape: exit 2 + usage dump
        Case {
            label: "unknown command",
            args: &["frobnicate"],
            code: 2,
            stderr_has: "unknown command",
            usage_dump: true,
        },
        Case {
            label: "run with no target",
            args: &["run"],
            code: 2,
            stderr_has: "exactly one target",
            usage_dump: true,
        },
        Case {
            label: "non-numeric --threads",
            args: &["run", "fig2", "--threads", "lots"],
            code: 2,
            stderr_has: "--threads",
            usage_dump: true,
        },
        // --- typed usage errors about the invocation's content: exit 2, no dump
        Case {
            label: "unknown target",
            args: &["run", "no-such-preset"],
            code: 2,
            stderr_has: "neither a registered preset",
            usage_dump: false,
        },
        Case {
            label: "--param without '='",
            args: &["sweep", "fig2", "--quick", "--param", "noequals"],
            code: 2,
            stderr_has: "needs the form dotted.path=v1,v2,...",
            usage_dump: false,
        },
        Case {
            label: "--param with empty path",
            args: &["sweep", "fig2", "--quick", "--param", "=1,2"],
            code: 2,
            stderr_has: "empty parameter path",
            usage_dump: false,
        },
        Case {
            label: "--param with no values",
            args: &["sweep", "fig2", "--quick", "--param", "worm.rate="],
            code: 2,
            stderr_has: "at least one value",
            usage_dump: false,
        },
        Case {
            label: "--param naming a nonexistent field",
            args: &["sweep", "fig2", "--quick", "--param", "no.such.field=1,2"],
            code: 2,
            stderr_has: "with no.such.field = 1: unknown field",
            usage_dump: false,
        },
        Case {
            label: "sweep without --param on a sweep-less spec",
            args: &["sweep", "fig2", "--quick"],
            code: 2,
            stderr_has: "no [sweep] section",
            usage_dump: false,
        },
        // --- runtime failures: exit 1, no usage dump
        Case {
            label: "spec file that does not exist",
            args: &["run", "no/such/dir/spec.toml"],
            code: 1,
            stderr_has: "reading no/such/dir/spec.toml",
            usage_dump: false,
        },
        Case {
            label: "sweep over an unreadable spec file",
            args: &["sweep", "missing.toml", "--param", "x=1"],
            code: 1,
            stderr_has: "reading missing.toml",
            usage_dump: false,
        },
    ];

    for case in &table {
        let (code, stderr) = run(case.args);
        assert_eq!(
            code, case.code,
            "{}: hotspots {:?} exited {code}, want {}\nstderr:\n{stderr}",
            case.label, case.args, case.code
        );
        assert!(
            stderr.contains(case.stderr_has),
            "{}: stderr missing {:?}:\n{stderr}",
            case.label,
            case.stderr_has
        );
        assert!(
            stderr.starts_with("error: "),
            "{}: stderr should lead with the diagnostic:\n{stderr}",
            case.label
        );
        let dumped = stderr.contains("usage: hotspots");
        assert_eq!(
            dumped, case.usage_dump,
            "{}: usage dump presence was {dumped}, want {}\nstderr:\n{stderr}",
            case.label, case.usage_dump
        );
    }
}

#[test]
fn malformed_spec_files_are_usage_errors() {
    let dir = std::env::temp_dir().join(format!("hotspots-cli-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken.toml");
    std::fs::write(
        &path,
        "[meta]\nname = \"x\"\n[worm]\nkind = \"no-such-worm\"\n",
    )
    .expect("write spec");
    let path_str = path.to_str().expect("utf-8 temp path");

    let (code, stderr) = run(&["run", path_str]);
    assert_eq!(code, 2, "malformed spec should exit 2 (usage):\n{stderr}");
    assert!(
        stderr.contains(path_str),
        "diagnostic should name the file:\n{stderr}"
    );
    assert!(
        !stderr.contains("usage: hotspots"),
        "typed spec errors skip the usage dump:\n{stderr}"
    );

    // a lone surrogate in a spec string is rejected with a typed error
    // (the PR 10 parser fix), not mangled into replacement chars
    let bad_unicode = dir.join("surrogate.toml");
    std::fs::write(
        &bad_unicode,
        "[meta]\nname = \"x\"\ntitle = \"\\uD800\"\n[worm]\nkind = \"uniform\"\n",
    )
    .expect("write spec");
    let (code, stderr) = run(&["run", bad_unicode.to_str().expect("utf-8 temp path")]);
    assert_eq!(code, 2, "lone surrogate should exit 2 (usage):\n{stderr}");
    assert!(
        stderr.contains("surrogate"),
        "diagnostic should name the surrogate problem:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
