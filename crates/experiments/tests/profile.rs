//! Acceptance contract for `hotspots profile`: the Chrome trace and
//! collapsed-stack artifacts are valid, byte-identical across runs
//! once the timing payloads are masked (the golden-schema guarantee),
//! and `--scaling` writes the [`BenchSummary`] schema with the engine's
//! `merge` phase broken out.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use hotspots_telemetry::{json, BenchSummary};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hotspots")
}

/// A fresh per-test scratch directory under the system tmpdir.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspots-profile-{}-{label}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `hotspots <args>` with run-report emission pointed nowhere and
/// asserts success.
fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .env_remove("HOTSPOTS_RUN_REPORT")
        .output()
        .expect("spawn hotspots");
    assert!(
        out.status.success(),
        "hotspots {args:?} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Sorted file names in `dir` with the given suffix.
fn artifacts(dir: &Path, suffix: &str) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("read scratch dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8 name")
        })
        .filter(|n| n.ends_with(suffix))
        .collect();
    names.sort();
    names
}

/// Masks the `"ts":N` / `"dur":N` payloads — the only fields of the
/// Chrome export allowed to differ between two runs of the same spec.
fn mask_timing(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        if let Some(key) = ["\"ts\":", "\"dur\":"]
            .iter()
            .find(|k| rest.starts_with(**k))
        {
            out.push_str(key);
            out.push('#');
            i += key.len();
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char); // exporter output is ASCII
            i += 1;
        }
    }
    out
}

/// Frame paths of a collapsed-stack dump, weights stripped.
fn folded_paths(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| l.rsplit_once(' ').expect("path weight").0.to_owned())
        .collect()
}

#[test]
fn profile_writes_valid_artifacts_and_phase_table() {
    let dir = scratch("valid");
    let stdout = run_ok(&[
        "profile",
        "bench-slammer",
        "--quick",
        "--out",
        dir.to_str().expect("utf-8 path"),
    ]);

    let traces = artifacts(&dir, ".trace.json");
    let folds = artifacts(&dir, ".folded");
    assert_eq!(traces.len(), 1, "one thread count -> one trace: {traces:?}");
    assert_eq!(
        folds.len(),
        1,
        "one thread count -> one folded dump: {folds:?}"
    );

    let chrome = fs::read_to_string(dir.join(&traces[0])).expect("read trace");
    json::parse(&chrome).expect("chrome trace is valid JSON");
    assert!(
        chrome.contains("\"traceEvents\""),
        "missing traceEvents array"
    );
    assert!(chrome.contains("\"ph\":\"X\""), "missing complete events");

    let folded = fs::read_to_string(dir.join(&folds[0])).expect("read folded");
    let paths = folded_paths(&folded);
    let mut sorted = paths.clone();
    sorted.sort();
    assert_eq!(paths, sorted, "collapsed stacks must be sorted");
    assert!(
        paths.iter().any(|p| p.contains("merge")),
        "merge phase missing from collapsed stacks: {paths:?}"
    );

    // The CLI prints a per-phase breakdown with merge broken out.
    assert!(
        stdout.contains("merge"),
        "phase table lacks merge:\n{stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn profile_artifacts_are_deterministic_modulo_timing() {
    let (a, b) = (scratch("det-a"), scratch("det-b"));
    for dir in [&a, &b] {
        run_ok(&[
            "profile",
            "bench-slammer",
            "--quick",
            "--out",
            dir.to_str().expect("utf-8 path"),
        ]);
    }

    let traces = artifacts(&a, ".trace.json");
    assert_eq!(
        traces,
        artifacts(&b, ".trace.json"),
        "artifact names differ"
    );
    for name in &traces {
        let chrome_a = fs::read_to_string(a.join(name)).expect("read a");
        let chrome_b = fs::read_to_string(b.join(name)).expect("read b");
        assert_eq!(
            mask_timing(&chrome_a),
            mask_timing(&chrome_b),
            "{name}: chrome traces differ beyond ts/dur"
        );
    }

    let folds = artifacts(&a, ".folded");
    assert_eq!(folds, artifacts(&b, ".folded"), "artifact names differ");
    for name in &folds {
        let folded_a = fs::read_to_string(a.join(name)).expect("read a");
        let folded_b = fs::read_to_string(b.join(name)).expect("read b");
        assert_eq!(
            folded_paths(&folded_a),
            folded_paths(&folded_b),
            "{name}: collapsed stacks differ beyond weights"
        );
    }
    let _ = fs::remove_dir_all(&a);
    let _ = fs::remove_dir_all(&b);
}

#[test]
fn scaling_writes_bench_summary_with_merge_phase() {
    let dir = scratch("scaling");
    let bench_json = dir.join("bench.json");
    run_ok(&[
        "profile",
        "bench-slammer",
        "--quick",
        "--scaling",
        "1",
        "--out",
        dir.to_str().expect("utf-8 path"),
        "--bench-json",
        bench_json.to_str().expect("utf-8 path"),
    ]);

    let text = fs::read_to_string(&bench_json).expect("read bench json");
    let summary = BenchSummary::from_json(&text).expect("BenchSummary schema");
    assert_eq!(summary.scaling.len(), 1);
    let point = &summary.scaling[0];
    assert_eq!(point.threads, 1);
    assert!((point.speedup - 1.0).abs() < 1e-9, "serial speedup is 1.0");
    assert!(point.probes_per_sec > 0.0);
    assert!(summary.probes > 0);
    assert!(
        point
            .phase_breakdown
            .iter()
            .any(|(name, _)| name == "merge"),
        "merge phase missing from breakdown: {:?}",
        point.phase_breakdown
    );
    let _ = fs::remove_dir_all(&dir);
}
