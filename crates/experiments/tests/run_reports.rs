//! Every experiment binary must emit a parseable `RunReport` JSONL line
//! whose delivery accounting balances (`delivered + Σ dropped =
//! probes_sent`) — the PR's acceptance criterion for observability.

use std::process::Command;

use hotspots_telemetry::RunReport;

/// Runs one binary at `--quick` scale and returns its parsed report.
fn quick_report(exe: &str) -> RunReport {
    let output = Command::new(exe)
        .arg("--quick")
        .env_remove(hotspots_telemetry::RUN_REPORT_ENV)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"kind\":\"run_report\""))
        .unwrap_or_else(|| panic!("no run_report line in {exe} output:\n{stdout}"));
    RunReport::from_jsonl(line).unwrap_or_else(|e| panic!("{exe}: bad report: {e}"))
}

/// The shared assertions: accounting balances, the scale echo is
/// present, and the binary knows its own name.
fn check(exe: &str, name: &str) -> RunReport {
    let report = quick_report(exe);
    assert_eq!(report.binary, name);
    assert_eq!(
        report.accounting_error(),
        None,
        "{name}: {:?}",
        report.accounting_error()
    );
    assert_eq!(
        report.config.iter().find(|(k, _)| k == "scale"),
        Some(&("scale".to_owned(), "quick".to_owned()))
    );
    assert!(report.wall_seconds > 0.0, "{name}: wall clock not stamped");
    report
}

#[test]
fn fig1_blaster_reports() {
    let report = check(env!("CARGO_BIN_EXE_fig1_blaster"), "fig1_blaster");
    assert_eq!(report.probes_sent, 0, "closed-form study routes nothing");
    assert!(report.population > 0);
}

#[test]
fn fig2_slammer_reports() {
    let report = check(env!("CARGO_BIN_EXE_fig2_slammer"), "fig2_slammer");
    assert_eq!(report.probes_sent, 0, "cycle-exact study routes nothing");
    assert!(report.population > 0);
}

#[test]
fn fig3_slammer_hosts_reports() {
    check(
        env!("CARGO_BIN_EXE_fig3_slammer_hosts"),
        "fig3_slammer_hosts",
    );
}

#[test]
fn fig4_codered_nat_reports() {
    let report = check(env!("CARGO_BIN_EXE_fig4_codered_nat"), "fig4_codered_nat");
    // the NATed population probes private space: drops must appear
    assert!(report.probes_sent > 0);
    assert!(report.dropped_total() > 0, "{:?}", report.dropped);
}

#[test]
fn fig5a_hitlist_infection_reports() {
    let report = check(
        env!("CARGO_BIN_EXE_fig5a_hitlist_infection"),
        "fig5a_hitlist_infection",
    );
    assert!(report.probes_sent > 0);
    assert!(report.infections > 0);
    assert!(report.infections_per_sec() > 0.0);
}

#[test]
fn fig5b_hitlist_detection_reports() {
    let report = check(
        env!("CARGO_BIN_EXE_fig5b_hitlist_detection"),
        "fig5b_hitlist_detection",
    );
    assert!(report.probes_sent > 0);
    assert!(report.infections > 0);
}

#[test]
fn fig5c_nat_detection_reports() {
    let report = check(
        env!("CARGO_BIN_EXE_fig5c_nat_detection"),
        "fig5c_nat_detection",
    );
    assert!(report.probes_sent > 0);
    assert!(report.infections > 0);
}

#[test]
fn sensitivity_reports() {
    let report = check(env!("CARGO_BIN_EXE_sensitivity"), "sensitivity");
    assert!(report.probes_sent > 0);
}

#[test]
fn table1_bot_commands_reports() {
    check(
        env!("CARGO_BIN_EXE_table1_bot_commands"),
        "table1_bot_commands",
    );
}

#[test]
fn table2_filtering_reports() {
    let report = check(env!("CARGO_BIN_EXE_table2_filtering"), "table2_filtering");
    assert!(report.probes_sent > 0);
    // enterprise egress filters must show up in the breakdown
    assert!(
        report
            .dropped
            .iter()
            .any(|(r, n)| r == "egress_filtered" && *n > 0),
        "{:?}",
        report.dropped
    );
}

#[test]
fn ablations_reports() {
    let report = check(env!("CARGO_BIN_EXE_ablations"), "ablations");
    assert!(report.probes_sent > 0);
    // engine-driven sections run with the sim's telemetry feature on,
    // so phase timings and the step peak must be present
    assert!(report.peak_step_seconds.is_some());
    for phase in ["target_gen", "routing", "observe"] {
        assert!(
            report.phases.iter().any(|(n, _)| n == phase),
            "missing phase {phase}: {:?}",
            report.phases
        );
    }
}

#[test]
fn run_report_env_appends_jsonl() {
    let dir = std::env::temp_dir().join(format!("hotspots-run-reports-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("reports.jsonl");
    let _ = std::fs::remove_file(&path);
    for _ in 0..2 {
        let output = Command::new(env!("CARGO_BIN_EXE_fig1_blaster"))
            .arg("--quick")
            .env(hotspots_telemetry::RUN_REPORT_ENV, &path)
            .output()
            .expect("spawn");
        assert!(output.status.success());
    }
    let text = std::fs::read_to_string(&path).expect("report file written");
    let reports: Vec<RunReport> = text
        .lines()
        .map(|l| RunReport::from_jsonl(l).expect("each line parses"))
        .collect();
    assert_eq!(reports.len(), 2, "appends, not truncates");
    assert!(reports.iter().all(|r| r.binary == "fig1_blaster"));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
