//! `HOTSPOTS_RUN_REPORT` is a contract: a requested append either
//! succeeds or fails the run loudly — exit 1 with the path in the
//! message — never silently (the pre-PR behavior swallowed the error).

use std::fs;
use std::process::Command;

use hotspots_scenario::value;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hotspots")
}

#[test]
fn unwritable_report_path_fails_the_run() {
    let path = "/nonexistent-hotspots-dir/report.jsonl";
    let out = Command::new(bin())
        .args(["run", "bench-slammer", "--quick"])
        .env("HOTSPOTS_RUN_REPORT", path)
        .output()
        .expect("spawn hotspots");
    assert_eq!(
        out.status.code(),
        Some(1),
        "I/O failure is a runtime error (exit 1), got {}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(path), "stderr must name the path: {stderr}");
    assert!(
        stderr.contains("run report"),
        "stderr must say what was being written: {stderr}"
    );
}

#[test]
fn report_appends_one_parseable_line_per_run() {
    let path =
        std::env::temp_dir().join(format!("hotspots-report-io-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    for _ in 0..2 {
        let out = Command::new(bin())
            .args(["run", "bench-slammer", "--quick"])
            .env("HOTSPOTS_RUN_REPORT", &path)
            .output()
            .expect("spawn hotspots");
        assert!(
            out.status.success(),
            "exit {}:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = fs::read_to_string(&path).expect("report file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "two runs -> two appended lines");
    for line in lines {
        let report = value::from_json(line).expect("each line is valid JSON");
        let value::Value::Table(fields) = &report else {
            panic!("report line is not a table: {line}");
        };
        assert!(
            fields.iter().any(|(k, _)| k == "scenario"),
            "report line lacks a scenario field: {line}"
        );
    }
    let _ = fs::remove_file(&path);
}
