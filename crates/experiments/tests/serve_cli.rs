//! End-to-end contract for `hotspots serve`: the cache round-trip the
//! CI serve job drives. Same preset submitted twice across two server
//! processes → one simulation run, byte-identical responses; `serve
//! --check` re-verifies every entry byte-for-byte and fails loudly on
//! tampering.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn temp_cache(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hotspots-serve-cli-{label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs one `hotspots serve` session over piped stdio: writes the
/// request lines, closes stdin, returns the response lines.
fn serve_session(cache: &Path, requests: &[String]) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hotspots"))
        .args(["serve", "--cache-dir"])
        .arg(cache)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hotspots serve");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        for line in requests {
            writeln!(stdin, "{line}").expect("write request");
        }
    }
    let out = child.wait_with_output().expect("serve session");
    assert!(
        out.status.success(),
        "serve exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf-8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

/// The preset's spec text, via `hotspots spec` (what a client would
/// submit).
fn preset_spec(name: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_hotspots"))
        .args(["spec", name, "--quick"])
        .output()
        .expect("hotspots spec");
    assert!(out.status.success(), "hotspots spec {name} failed");
    String::from_utf8(out.stdout).expect("utf-8 spec")
}

fn submit_line(spec: &str) -> String {
    let mut line = String::from("{\"op\":\"submit\",\"spec\":");
    hotspots_telemetry::json::write_str(&mut line, spec);
    line.push('}');
    line
}

fn run_check(cache: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hotspots"))
        .args(["serve", "--check", "--cache-dir"])
        .arg(cache)
        .output()
        .expect("hotspots serve --check");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cache_round_trip_across_processes_and_check() {
    let cache = temp_cache("roundtrip");
    let spec = preset_spec("xmode-uniform");

    // session 1: miss then hit, one run, identical bytes
    let first = serve_session(
        &cache,
        &[
            submit_line(&spec),
            submit_line(&spec),
            "{\"op\":\"stats\"}".to_owned(),
        ],
    );
    assert_eq!(first.len(), 3, "{first:?}");
    assert_eq!(first[0], first[1], "second submission served from cache");
    assert!(
        first[2].contains("\"runs\":1,"),
        "one simulation run for two submissions: {}",
        first[2]
    );

    // session 2 (fresh process): served from the persisted store, zero runs
    let second = serve_session(
        &cache,
        &[submit_line(&spec), "{\"op\":\"stats\"}".to_owned()],
    );
    assert_eq!(
        second[0], first[0],
        "response bytes stable across processes"
    );
    assert!(
        second[1].contains("\"runs\":0,") && second[1].contains("\"hits\":1,"),
        "no re-run on a warm cache: {}",
        second[1]
    );

    // the determinism audit passes on a clean cache
    let (code, stdout, stderr) = run_check(&cache);
    assert_eq!(code, 0, "clean cache must verify:\n{stderr}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    assert!(stderr.contains("0 diverged"), "{stderr}");

    // tamper with the stored report: --check exits 1 and names the entry
    let hash = first[0]
        .split("\"hash\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("hash in response");
    let report = cache.join(hash).join("report.jsonl");
    let stored = std::fs::read_to_string(&report).expect("read stored report");
    std::fs::write(
        &report,
        stored.replace("\"population\":", "\"population\":9"),
    )
    .expect("tamper");
    let (code, stdout, _) = run_check(&cache);
    assert_eq!(code, 1, "tampered cache must fail the audit");
    assert!(
        stdout.contains("\"ok\":false") && stdout.contains(hash),
        "{stdout}"
    );

    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn serve_rejects_bad_flag_values_as_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_hotspots"))
        .args(["serve", "--max-entries", "many"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--max-entries"), "{stderr}");
}
