//! Figure 1: observed unique source IPs of Blaster infection attempts by
//! destination /24, plus the seed-inference correlation.

use hotspots::scenarios::blaster::{sources_by_block, BlasterStudy};
use hotspots::seed_inference;
use hotspots::HotspotReport;
use hotspots_experiments::{bar, experiment, print_table};
use hotspots_ipspace::Ip;

fn main() {
    let (scale, mut out) = experiment(
        "fig1_blaster",
        "FIGURE 1",
        "Figure 1",
        "Blaster unique sources by destination /24 (boot-time seeding)",
    );

    let study = BlasterStudy {
        hosts: scale.pick(5_000, 60_000),
        window_secs: scale.pick(7.0, 30.0) * 24.0 * 3600.0,
        ..BlasterStudy::default()
    };
    // interval-coverage study: closed-form, nothing routed
    out.config("hosts", study.hosts)
        .config("window_days", study.window_secs / 86_400.0)
        .config("reboot_fraction", study.reboot_fraction)
        .add_population(study.hosts as u64)
        .add_sim_seconds(study.window_secs);
    println!(
        "\n{} infected hosts, {:.0}-day window, {} probes/s, {}% reboot-launched\n",
        study.hosts,
        study.window_secs / 86_400.0,
        study.scan_rate,
        (study.reboot_fraction * 100.0) as u32
    );

    let rows = sources_by_block(&study);
    let max = rows.iter().map(|r| r.unique_sources).max().unwrap_or(1) as f64;

    // figure series: per-/24 (per-/16 for Z) unique source counts
    println!("-- per-bucket unique sources (the figure's y-axis) --");
    let mut current_block = String::new();
    for row in &rows {
        if row.block != current_block {
            current_block.clone_from(&row.block);
            println!("block {current_block}:");
        }
        if row.unique_sources > 0 || row.prefix.len() >= 24 {
            println!(
                "  {:<20} {:>7}  {}",
                row.prefix.to_string(),
                row.unique_sources,
                bar(row.unique_sources as f64, max, 50)
            );
        }
    }

    // score over the equal-size /24 rows (interval coverage does not
    // scale with cell size, so the /16 Z rows use a different null)
    let counts: Vec<u64> = rows
        .iter()
        .filter(|r| r.prefix.len() == 24)
        .map(|r| r.unique_sources)
        .collect();
    let report = HotspotReport::from_counts(&counts);
    println!("\nnon-uniformity over /24 rows: {report}");

    // the paper's correlation, run both directions:
    //  * ground truth: the tick counts of the hosts that actually cover
    //    each row (the paper's "the spike maps back to 2.3 minutes"),
    //  * forward search: candidate seeds in the tick range that would
    //    explain the row (seed_inference::candidate_seeds).
    println!("\n-- seed correlation (hot vs cold /24 rows) --\n");
    let hosts = hotspots::scenarios::blaster::draw_hosts(&study);
    let mut sorted: Vec<_> = rows.iter().filter(|r| r.prefix.len() == 24).collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.unique_sources));
    let picks = [
        ("hottest", sorted[0]),
        ("2nd", sorted[1]),
        ("3rd", sorted[2]),
        ("coldest", *sorted.last().expect("rows exist")),
    ];
    let mut table = Vec::new();
    for (tag, row) in picks {
        let covering: Vec<u32> = hosts
            .iter()
            .filter(|h| seed_inference::scan_covers(h.start, study.scan_len(), row.prefix))
            .map(|h| h.tick)
            .collect();
        let mut ticks = covering.clone();
        ticks.sort_unstable();
        let median = ticks.get(ticks.len() / 2).map_or_else(
            || "-".to_owned(),
            |t| format!("{}", hotspots_prng::entropy::TickCount::from_millis(*t)),
        );
        let boot_band = covering
            .iter()
            .filter(|&&t| (25_000..=35_000).contains(&t))
            .count();
        // forward search restricted to the boot band
        let forward = seed_inference::candidate_seeds(
            25_000..35_000,
            Ip::from_octets(7, 7, 7, 7),
            study.scan_len(),
            row.prefix,
        );
        table.push(vec![
            tag.to_owned(),
            row.prefix.to_string(),
            row.unique_sources.to_string(),
            median,
            format!("{boot_band}/{}", covering.len()),
            forward.len().to_string(),
        ]);
    }
    print_table(
        &[
            "row",
            "/24",
            "sources",
            "median covering tick",
            "boot-band hosts",
            "boot-band seeds (fwd)",
        ],
        &table,
    );
    println!(
        "\n→ spike rows are covered disproportionately by hosts whose seeds \
         sit in the ~30 s\n  reboot band; the restricted GetTickCount() \
         range is the root cause."
    );
    out.emit();
}
