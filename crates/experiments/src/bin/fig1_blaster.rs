//! Figure 1: observed unique source IPs of Blaster infection attempts by
//! destination /24, plus the seed-inference correlation.

fn main() {
    hotspots_experiments::preset_main("fig1");
}
