//! Figure 3: (a, b) infection attempts from two individual Slammer hosts
//! by destination /24; (c) the period of every cycle of the Slammer LCG.

use hotspots::scenarios::slammer::{cycle_bands, host_histogram};
use hotspots_experiments::{bar, experiment, print_table};
use hotspots_ipspace::{ims_deployment, Ip};
use hotspots_prng::cycles::AffineMap;
use hotspots_prng::SqlsortDll;

fn main() {
    let (scale, mut out) = experiment(
        "fig3_slammer_hosts",
        "FIGURE 3",
        "Figure 3",
        "per-host Slammer scanning bias and the LCG cycle periods",
    );
    let probes = scale.pick(200_000u64, 20_000_000);
    let blocks = ims_deployment();
    // raw scanner walks against the telescope index — no environment,
    // so nothing enters the delivery accounting
    out.config("probes_per_host", probes).add_population(2);

    // Host A: a seed chosen like the paper's host A — its cycle reaches
    // some blocks heavily and misses others entirely.
    let host_a_seed = Ip::from_octets(199, 77, 10, 1).to_le_state(); // on I's cycle
                                                                     // Host B: a seed on the Z-block cycle: extreme intra-telescope bias.
    let host_b_seed = Ip::from_octets(96, 50, 60, 70).to_le_state();

    for (name, dll, seed) in [
        ("Host A", SqlsortDll::Sp2, host_a_seed),
        ("Host B", SqlsortDll::Gold, host_b_seed),
    ] {
        let map = AffineMap::slammer(dll);
        let cycle_len = map.cycle_length(seed).expect("fixed point exists");
        println!("\n-- {name}: dll={dll}, seed={seed:#010x}, cycle period {cycle_len} --");
        let hist = host_histogram(dll, seed, probes, &blocks);
        println!(
            "  {} of {probes} probes landed on the telescope; per-block hits:",
            hist.total()
        );
        let mut per_block: Vec<(String, u64)> = blocks
            .iter()
            .map(|b| {
                let hits: u64 = hist
                    .iter()
                    .filter(|(bucket, _)| b.prefix().contains(bucket.first_ip()))
                    .map(|(_, c)| c)
                    .sum();
                (b.label().to_owned(), hits)
            })
            .collect();
        let max = per_block.iter().map(|(_, h)| *h).max().unwrap_or(1) as f64;
        per_block.sort_by(|a, b| a.0.cmp(&b.0));
        for (label, hits) in per_block {
            println!("  {label:>2}: {hits:>9}  {}", bar(hits as f64, max, 50));
        }
    }

    println!("\n-- Figure 3(c): period of all cycles, per DLL variant --\n");
    for dll in SqlsortDll::ALL {
        let bands = cycle_bands(dll);
        let total: u64 = bands.iter().map(|b| b.num_cycles).sum();
        println!("{dll} (b = {:#010x}): {total} cycles", dll.increment());
        let rows: Vec<Vec<String>> = bands
            .iter()
            .map(|b| {
                vec![
                    b.valuation.to_string(),
                    b.num_cycles.to_string(),
                    b.cycle_length.to_string(),
                ]
            })
            .collect();
        print_table(&["valuation", "cycles", "period"], &rows);
        println!();
    }
    println!(
        "→ 64 cycles per variant, periods from 2^30 down to 1; an instance \
         on a period-1 cycle\n  hammers a single address like a targeted \
         DoS (the paper's observation)."
    );
    out.emit();
}
