//! Figure 3: (a, b) infection attempts from two individual Slammer hosts
//! by destination /24; (c) the period of every cycle of the Slammer LCG.

fn main() {
    hotspots_experiments::preset_main("fig3");
}
