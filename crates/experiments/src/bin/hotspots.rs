//! The unified scenario runner: every registered preset and any TOML
//! spec file, through one front-end.
//!
//! ```text
//! hotspots run fig2 --quick              # a registry preset
//! hotspots run examples/specs/worm.toml  # a spec file
//! hotspots list --verbose                # presets + paper artifact map
//! hotspots sweep fig4 --quick --param study.nat_fraction=0,0.15,0.5
//! hotspots spec fig5c --quick            # print the preset's TOML
//! ```
//!
//! Determinism contract: a spec names everything that affects the
//! result, so the same spec + seed produces the same run report at any
//! `--threads` count.

use std::process::exit;

use hotspots_experiments::{
    banner, find_preset, presets, print_table, render, run_spec, HotspotsError, Outcome,
    RunContext, Scale,
};
use hotspots_scenario::cli::{parse_flags, usage, ArgError, FlagSpec, ParsedArgs};
use hotspots_scenario::spec::SpecError;
use hotspots_scenario::value::Value;
use hotspots_scenario::{ScenarioSpec, RUN_REPORT_ENV};
use hotspots_serve::{ServeConfig, Server};
use hotspots_telemetry::{json, BenchSummary, MemoryStats, ScalingPoint};

const COMMANDS: &str = "commands:
  run <name|spec.toml>     execute a preset or spec file
  list                     list registered presets (--verbose: paper mapping)
  sweep <name|spec.toml>   rerun per value of --param (or the spec's [sweep])
  spec <name>              print a preset's spec as TOML
  profile <name|spec.toml> run under span tracing; write a Chrome trace,
                           a collapsed-stack file, and a phase table
                           (engine-path scenarios only)
  serve                    JSONL scenario server over stdio with a
                           content-addressed result cache
                           (--check: re-run and byte-diff every entry)

examples:
  hotspots run fig2 --quick
  hotspots sweep fig4 --quick --param study.nat_fraction=0,0.15,0.5
  hotspots run examples/specs/table1.toml --report out.jsonl
  hotspots profile bench-slammer --scaling 1,2,4,8
  hotspots serve --cache-dir results/cache --max-entries 32
";

fn flags() -> Vec<FlagSpec> {
    vec![
        FlagSpec {
            name: "quick",
            short: Some("q"),
            takes_value: false,
            repeatable: false,
            help: "reduced scale (seconds instead of minutes)",
        },
        FlagSpec {
            name: "paper",
            short: None,
            takes_value: false,
            repeatable: false,
            help: "full paper scale (the default)",
        },
        FlagSpec {
            name: "threads",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "worker threads; 0 = auto (default: the spec / all cores)",
        },
        FlagSpec {
            name: "report",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "append JSONL run reports to this file",
        },
        FlagSpec {
            name: "param",
            short: None,
            takes_value: true,
            repeatable: true,
            help: "sweep parameter: dotted.path=v1,v2,... (repeatable; sweep only)",
        },
        FlagSpec {
            name: "scaling",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "profile: thread counts to sweep, e.g. 1,2,4,8 (writes BENCH json)",
        },
        FlagSpec {
            name: "out",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "profile: directory for trace artifacts (default: .)",
        },
        FlagSpec {
            name: "bench-json",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "profile --scaling: scaling-curve output file (default: BENCH_engine.json)",
        },
        FlagSpec {
            name: "verbose",
            short: Some("v"),
            takes_value: false,
            repeatable: false,
            help: "list: include the paper artifact mapping",
        },
        FlagSpec {
            name: "cache-dir",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "serve: result-cache root (default: .hotspots-cache)",
        },
        FlagSpec {
            name: "max-entries",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "serve: LRU bound on cached entries (default: 64)",
        },
        FlagSpec {
            name: "workers",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "serve: run-pool worker threads (default: 1; 0 = reject all)",
        },
        FlagSpec {
            name: "queue-depth",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "serve: bound on queued jobs before backpressure (default: 16)",
        },
        FlagSpec {
            name: "check",
            short: None,
            takes_value: false,
            repeatable: false,
            help: "serve: re-run every cached entry and diff byte-for-byte",
        },
        FlagSpec {
            name: "help",
            short: Some("h"),
            takes_value: false,
            repeatable: false,
            help: "print this help",
        },
    ]
}

fn die(message: &str) -> ! {
    eprintln!(
        "error: {message}\n\n{}",
        usage("hotspots", &flags(), COMMANDS)
    );
    exit(2);
}

/// Reports a run-path failure and exits with its typed code — without
/// the usage dump, since the invocation itself was fine.
fn fail(e: &HotspotsError) -> ! {
    eprintln!("error: {e}");
    exit(e.exit_code());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_flags(&args, &flags()) {
        Ok(p) => p,
        Err(e) => die(&e.to_string()),
    };
    if parsed.has("help") || parsed.positional.is_empty() {
        print!("{}", usage("hotspots", &flags(), COMMANDS));
        exit(if parsed.has("help") { 0 } else { 2 });
    }
    if let Some(path) = parsed.value("report") {
        std::env::set_var(RUN_REPORT_ENV, path);
    }
    let scale = match Scale::from_parsed(&parsed) {
        Ok(scale) => scale,
        Err(e) => die(&e.to_string()),
    };
    // 0 is legal: auto, resolved to available parallelism at run time
    // (the run report records what it resolved to).
    let threads = parsed.value("threads").map(|t| match t.parse::<usize>() {
        Ok(n) => n,
        _ => die("--threads needs a non-negative integer (0 = auto)"),
    });

    match parsed.positional[0].as_str() {
        "run" => cmd_run(&parsed, scale, threads),
        "list" => cmd_list(&parsed),
        "sweep" => cmd_sweep(&parsed, scale, threads),
        "spec" => cmd_spec(&parsed, scale),
        "profile" => cmd_profile(&parsed, scale, threads),
        "serve" => cmd_serve(&parsed, threads),
        other => die(&format!("unknown command {other:?}")),
    }
}

/// Resolves `run`/`sweep`/`spec`'s target: a registry preset name, or a
/// path to a TOML spec file.
///
/// Failure modes keep their typed exit codes: an unreadable spec file
/// is an I/O failure (exit 1), while a malformed spec or an unknown
/// target is a mistake the caller can fix (exit 2).
fn resolve_spec(target: &str, scale: Scale) -> Result<ScenarioSpec, HotspotsError> {
    if let Some(preset) = find_preset(target) {
        return Ok(preset.spec(scale));
    }
    if target.ends_with(".toml") || std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| HotspotsError::Io {
            context: format!("reading {target}"),
            source: e,
        })?;
        return ScenarioSpec::from_toml(&text)
            .map_err(|e| SpecError::new(format!("{target} {}", e.field), e.message).into());
    }
    Err(ArgError::new(format!(
        "{target:?} is neither a registered preset (see `hotspots list`) nor a spec file"
    ))
    .into())
}

/// `resolve_spec` for commands that exit on failure.
fn resolve_spec_or_exit(target: &str, scale: Scale) -> ScenarioSpec {
    match resolve_spec(target, scale) {
        Ok(spec) => spec,
        Err(e) => fail(&e),
    }
}

fn context(threads: Option<usize>) -> RunContext {
    let ctx = RunContext::new("hotspots");
    match threads {
        Some(t) => ctx.with_threads(t),
        None => ctx,
    }
}

fn spec_banner(spec: &ScenarioSpec, scale: Scale) {
    let artifact = spec.meta.artifact.as_deref().unwrap_or(&spec.meta.name);
    let title = spec
        .meta
        .title
        .as_deref()
        .or(spec.meta.scenario.as_deref())
        .unwrap_or("scenario");
    banner(artifact, title, scale);
}

fn cmd_run(parsed: &ParsedArgs, scale: Scale, threads: Option<usize>) {
    let [_, target] = &parsed.positional[..] else {
        die("run takes exactly one target: a preset name or spec file");
    };
    let spec = resolve_spec_or_exit(target, scale);
    spec_banner(&spec, scale);
    match run_spec(&spec, &context(threads)) {
        Ok(run) => {
            render::render(&run.outcome);
            if let Err(e) = run.emit_report() {
                fail(&e);
            }
        }
        Err(e) => fail(&e),
    }
}

fn cmd_list(parsed: &ParsedArgs) {
    if parsed.positional.len() > 1 {
        die("list takes no arguments");
    }
    let verbose = parsed.has("verbose");
    let mut family = "";
    for preset in presets() {
        if preset.family != family {
            family = preset.family;
            println!("{}{family}:", if verbose { "\n" } else { "" });
        }
        println!("  {:<22} {}", preset.name, preset.title);
        if verbose {
            println!("  {:<22}   reproduces: {}", "", preset.paper);
            println!(
                "  {:<22}   scenario: {} · binary: {}",
                "", preset.scenario, preset.binary
            );
        }
    }
}

fn cmd_spec(parsed: &ParsedArgs, scale: Scale) {
    let [_, target] = &parsed.positional[..] else {
        die("spec takes exactly one target: a preset name or spec file");
    };
    print!("{}", resolve_spec_or_exit(target, scale).to_toml());
}

/// File stem for profile artifacts: the scenario name with anything
/// path-hostile mapped to `-`.
fn artifact_stem(spec: &ScenarioSpec) -> String {
    spec.meta
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// One traced engine run: throughput, phase breakdown, and the two
/// exporter outputs.
struct ProfilePoint {
    threads: usize,
    probes: u64,
    probes_per_sec: f64,
    run_seconds: f64,
    phase_breakdown: Vec<(String, f64)>,
    chrome: String,
    folded: String,
}

fn profile_once(spec: &ScenarioSpec, threads: usize) -> ProfilePoint {
    let ctx = RunContext::new("hotspots")
        .with_threads(threads)
        .with_trace();
    let run = match run_spec(spec, &ctx) {
        Ok(run) => run,
        Err(e) => fail(&e),
    };
    let point = {
        let Outcome::Engine { result, .. } = &run.outcome else {
            die("profile needs an engine-path scenario");
        };
        let tel = &result.telemetry;
        let Some(trace) = tel.trace.as_ref() else {
            die("engine returned no trace (built without the telemetry feature?)");
        };
        let run_seconds = trace
            .spans()
            .first()
            .filter(|s| s.name == "run")
            .map_or(0.0, |s| s.dur_micros as f64 / 1e6);
        let probes_per_sec = if run_seconds > 0.0 {
            result.probes_sent as f64 / run_seconds
        } else {
            0.0
        };
        ProfilePoint {
            threads,
            probes: result.probes_sent,
            probes_per_sec,
            run_seconds,
            phase_breakdown: tel
                .phases
                .iter()
                .map(|(name, total, _)| (name.to_owned(), total.as_secs_f64()))
                .collect(),
            chrome: trace.to_chrome_trace(),
            folded: trace.to_collapsed(),
        }
    };
    if let Err(e) = run.emit_report() {
        fail(&e);
    }
    point
}

fn print_phase_table(point: &ProfilePoint) {
    let phase_total: f64 = point.phase_breakdown.iter().map(|(_, s)| s).sum();
    let mut rows: Vec<Vec<String>> = point
        .phase_breakdown
        .iter()
        .map(|(name, secs)| {
            vec![
                name.clone(),
                format!("{secs:.4}"),
                if phase_total > 0.0 {
                    format!("{:.1}%", 100.0 * secs / phase_total)
                } else {
                    "-".to_owned()
                },
            ]
        })
        .collect();
    rows.push(vec![
        "(run wall)".to_owned(),
        format!("{:.4}", point.run_seconds),
        String::new(),
    ]);
    print_table(&["phase", "seconds", "share"], &rows);
    println!(
        "throughput: {:.1}M probes/s ({} probes in {:.3}s)",
        point.probes_per_sec / 1e6,
        point.probes,
        point.run_seconds
    );
}

fn write_artifact(path: &str, contents: &str) {
    if let Err(source) = std::fs::write(path, contents) {
        fail(&HotspotsError::Io {
            context: format!("writing {path}"),
            source,
        });
    }
}

/// Parses `--scaling`'s comma-separated thread counts. Duplicates are
/// skipped (first occurrence wins — profiling the same count twice
/// would only overwrite its own artifacts); malformed entries reject
/// the whole list with a typed [`HotspotsError::Args`], so the exit
/// code says "fix the invocation".
fn parse_scaling(list: &str) -> Result<Vec<usize>, HotspotsError> {
    let mut counts: Vec<usize> = Vec::new();
    for part in list.split(',') {
        let n = part.trim().parse::<usize>().ok().filter(|&n| n >= 1);
        let Some(n) = n else {
            return Err(HotspotsError::Args(ArgError::new(format!(
                "--scaling needs comma-separated positive thread counts, \
                 e.g. 1,2,4,8 (rejected {part:?} in {list:?})"
            ))));
        };
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    Ok(counts)
}

fn cmd_profile(parsed: &ParsedArgs, scale: Scale, threads: Option<usize>) {
    let [_, target] = &parsed.positional[..] else {
        die("profile takes exactly one target: a preset name or spec file");
    };
    let spec = resolve_spec_or_exit(target, scale);
    if spec.study.is_some() {
        die(&format!(
            "{target:?} is a study preset with no engine to trace; \
             profile needs an engine-path scenario (worm + population)"
        ));
    }
    let counts: Vec<usize> = match parsed.value("scaling") {
        Some(list) => match parse_scaling(list) {
            Ok(counts) => counts,
            Err(e) => fail(&e),
        },
        None => vec![threads.unwrap_or_else(|| spec.sim.threads.max(1) as usize)],
    };
    if counts.iter().any(|&t| t > 1) && !cfg!(feature = "parallel") {
        eprintln!(
            "note: built without the `parallel` feature — thread counts > 1 run serially \
             (rebuild with `--features parallel` for a real scaling curve)"
        );
    }
    let out_dir = parsed.value("out").unwrap_or(".").to_owned();
    if let Err(source) = std::fs::create_dir_all(&out_dir) {
        fail(&HotspotsError::Io {
            context: format!("creating {out_dir}"),
            source,
        });
    }
    spec_banner(&spec, scale);
    let stem = artifact_stem(&spec);

    let mut points: Vec<ProfilePoint> = Vec::new();
    for &t in &counts {
        println!("\n---- threads = {t} ----");
        let point = profile_once(&spec, t);
        let chrome_path = format!("{out_dir}/{stem}-{t}t.trace.json");
        let folded_path = format!("{out_dir}/{stem}-{t}t.folded");
        write_artifact(&chrome_path, &point.chrome);
        write_artifact(&folded_path, &point.folded);
        print_phase_table(&point);
        println!("chrome trace: {chrome_path} (chrome://tracing, ui.perfetto.dev)");
        println!("flamegraph:   {folded_path} (speedscope.app, flamegraph.pl)");
        points.push(point);
    }

    if parsed.value("scaling").is_some() {
        let bench_path = parsed.value("bench-json").unwrap_or("BENCH_engine.json");
        // Carry the seed baseline forward so the headline speedup stays
        // comparable across PRs (also reads the pre-scaling schema).
        let seed = std::fs::read_to_string(bench_path)
            .ok()
            .and_then(|text| BenchSummary::from_json(&text).ok())
            .and_then(|old| old.seed_probes_per_sec);
        let probes = points.first().map_or(0, |p| p.probes);
        let mut summary = BenchSummary::from_points(
            format!("{stem}_{}", scale.label()),
            probes,
            seed,
            points
                .iter()
                .map(|p| ScalingPoint {
                    threads: p.threads as u64,
                    probes_per_sec: p.probes_per_sec,
                    speedup: 0.0,
                    phase_breakdown: p.phase_breakdown.clone(),
                })
                .collect(),
        );
        // Population memory accounting: store bytes from a fresh build
        // (deterministic), resident set sampled after the runs above.
        if let Ok(built) = spec.build() {
            let memory = MemoryStats {
                hosts: built.population.len() as u64,
                store: built.population.store_label().to_owned(),
                store_bytes: built.population.store_bytes() as u64,
                dense_store_bytes: built.population.dense_equivalent_bytes() as u64,
                resident_bytes: hotspots_telemetry::resident_bytes(),
            };
            println!(
                "population memory: {} hosts, {} store, {} store bytes \
                 ({:.1}% of dense-equivalent {})",
                memory.hosts,
                memory.store,
                memory.store_bytes,
                100.0 * memory.store_bytes as f64 / memory.dense_store_bytes.max(1) as f64,
                memory.dense_store_bytes,
            );
            summary = summary.with_memory(memory);
        }
        write_artifact(bench_path, &summary.to_json());
        println!("\nscaling curve -> {bench_path}");
        let rows: Vec<Vec<String>> = summary
            .scaling
            .iter()
            .map(|p| {
                vec![
                    p.threads.to_string(),
                    format!("{:.1}", p.probes_per_sec / 1e6),
                    format!("{:.3}x", p.speedup),
                    format!(
                        "{:.4}",
                        p.phase_breakdown
                            .iter()
                            .find(|(n, _)| n == "merge")
                            .map_or(0.0, |(_, s)| *s)
                    ),
                ]
            })
            .collect();
        print_table(&["threads", "Mprobes/s", "speedup", "merge s"], &rows);
    }
}

/// Parses a sweep value the way the TOML reader would: int, then float,
/// then bool, else string.
fn parse_sweep_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(s.to_owned()),
    }
}

/// Parses a non-negative integer serve flag, defaulting when absent.
fn parse_count(parsed: &ParsedArgs, name: &str, default: usize) -> Result<usize, HotspotsError> {
    match parsed.value(name) {
        None => Ok(default),
        Some(v) => v.parse::<usize>().map_err(|_| {
            ArgError::new(format!("--{name} needs a non-negative integer, got {v:?}")).into()
        }),
    }
}

fn serve_config(parsed: &ParsedArgs, threads: Option<usize>) -> Result<ServeConfig, HotspotsError> {
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        cache_dir: parsed
            .value("cache-dir")
            .map_or(defaults.cache_dir, std::path::PathBuf::from),
        max_entries: parse_count(parsed, "max-entries", defaults.max_entries)?,
        workers: parse_count(parsed, "workers", defaults.workers)?,
        queue_depth: parse_count(parsed, "queue-depth", defaults.queue_depth)?,
        threads: threads.unwrap_or(defaults.threads),
    })
}

/// `hotspots serve`: the JSONL scenario server over stdio (responses
/// on stdout, diagnostics on stderr), or — with `--check` — the cache
/// verification pass: re-run every cached entry and byte-diff it
/// against the stored report.
fn cmd_serve(parsed: &ParsedArgs, threads: Option<usize>) {
    if parsed.positional.len() > 1 {
        die("serve takes no positional arguments");
    }
    let config = match serve_config(parsed, threads) {
        Ok(config) => config,
        Err(e) => fail(&e),
    };
    if parsed.has("check") {
        let outcomes = match hotspots_serve::check(&config) {
            Ok(outcomes) => outcomes,
            Err(e) => fail(&e),
        };
        let mut diverged = 0usize;
        for outcome in &outcomes {
            let mut line = format!("{{\"hash\":\"{}\",\"name\":", outcome.hash);
            json::write_str(&mut line, &outcome.name);
            line.push_str(",\"ok\":");
            match &outcome.failure {
                None => line.push_str("true}"),
                Some(why) => {
                    diverged += 1;
                    line.push_str("false,\"error\":");
                    json::write_str(&mut line, why);
                    line.push('}');
                }
            }
            println!("{line}");
        }
        eprintln!(
            "serve --check: {} entries verified, {diverged} diverged",
            outcomes.len()
        );
        if diverged > 0 {
            fail(&HotspotsError::worker(format!(
                "re-verifying the result cache: {diverged} entries diverged from their re-runs"
            )));
        }
        return;
    }
    let server = match Server::open(&config) {
        Ok(server) => server,
        Err(e) => fail(&e),
    };
    eprintln!(
        "hotspots serve: cache {} ({} workers, queue depth {}, max {} entries); \
         JSONL on stdin, responses on stdout",
        config.cache_dir.display(),
        config.workers,
        config.queue_depth,
        config.max_entries,
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = server.serve(stdin.lock(), stdout.lock()) {
        fail(&HotspotsError::Io {
            context: "serving the stdio session".to_owned(),
            source: e,
        });
    }
}

/// Parses the sweep axes from repeated `--param dotted.path=v1,v2,...`
/// flags, falling back to the spec's own `[sweep]` section. Mirrors
/// `parse_scaling`: every malformed value is a typed usage error, so
/// the front-end exits 2 per `HotspotsError::exit_code`.
fn parse_axes(
    params: &[&str],
    base: &ScenarioSpec,
) -> Result<Vec<(String, Vec<Value>)>, HotspotsError> {
    let mut axes: Vec<(String, Vec<Value>)> = Vec::new();
    for p in params {
        let Some((path, list)) = p.split_once('=') else {
            return Err(ArgError::new(format!(
                "--param {p:?} needs the form dotted.path=v1,v2,..."
            ))
            .into());
        };
        if path.is_empty() {
            return Err(
                ArgError::new(format!("--param {p:?} names an empty parameter path")).into(),
            );
        }
        if list.is_empty() {
            return Err(ArgError::new(format!("--param {path} needs at least one value")).into());
        }
        let values: Vec<Value> = list.split(',').map(parse_sweep_value).collect();
        axes.push((path.to_owned(), values));
    }
    if axes.is_empty() {
        match &base.sweep {
            Some(sweep) => axes.push((sweep.param.clone(), sweep.values.clone())),
            None => {
                return Err(
                    ArgError::new("sweep needs --param (the spec has no [sweep] section)").into(),
                )
            }
        }
    }
    if let Some((path, _)) = axes.iter().find(|(_, values)| values.is_empty()) {
        return Err(ArgError::new(format!("sweep axis {path} has no values")).into());
    }
    Ok(axes)
}

fn cmd_sweep(parsed: &ParsedArgs, scale: Scale, threads: Option<usize>) {
    let [_, target] = &parsed.positional[..] else {
        die("sweep takes exactly one target: a preset name or spec file");
    };
    let base = resolve_spec_or_exit(target, scale);
    // every --param occurrence is its own sweep axis, run in order;
    // without any, fall back to the spec's [sweep] section
    let axes = match parse_axes(&parsed.values("param"), &base) {
        Ok(axes) => axes,
        Err(e) => fail(&e),
    };
    spec_banner(&base, scale);
    let scenario = base
        .meta
        .scenario
        .clone()
        .unwrap_or_else(|| base.meta.name.clone());
    for (param, values) in &axes {
        println!(
            "\nsweeping {param} over {} values: {}\n",
            values.len(),
            values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        for value in values {
            let mut tree = base.to_value();
            if let Err(e) = tree.set_path(param, value.clone()) {
                fail(&ArgError::new(format!("--param {param}: {e}")).into());
            }
            let mut spec = match ScenarioSpec::from_value(&tree) {
                Ok(s) => s,
                Err(e) => fail(
                    &SpecError::new(e.field, format!("with {param} = {value}: {}", e.message))
                        .into(),
                ),
            };
            // one report per point, distinguished by the scenario label
            spec.meta.scenario = Some(format!("{scenario} [{param}={value}]"));
            spec.sweep = None;
            println!("---- {param} = {value} ----");
            match run_spec(&spec, &context(threads)) {
                Ok(run) => {
                    render::render(&run.outcome);
                    if let Err(e) = run.emit_report() {
                        fail(&e);
                    }
                }
                Err(e) => fail(&e),
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_lists_dedupe_in_first_seen_order() {
        assert_eq!(parse_scaling("1,2,4,8").unwrap(), [1, 2, 4, 8]);
        assert_eq!(parse_scaling("4,1,4,2,1").unwrap(), [4, 1, 2]);
        assert_eq!(parse_scaling(" 2 , 2 ").unwrap(), [2]);
    }

    #[test]
    fn malformed_scaling_lists_are_typed_usage_errors() {
        for bad in ["1,,4", "", "0", "1,0", "one", "2,4,"] {
            let err = parse_scaling(bad).expect_err(bad);
            assert!(matches!(err, HotspotsError::Args(_)), "{bad}: {err}");
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
    }
}
