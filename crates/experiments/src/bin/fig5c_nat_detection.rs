//! Figure 5(c): detection of a CodeRedII-type worm with 15% of the
//! vulnerable population NATed in 192.168/16, under three sensor
//! placement strategies.

use hotspots::detection_gap::DetectionGap;
use hotspots::scenarios::detection::{nat_run, DetectionStudy, Placement};
use hotspots_experiments::{experiment, fold_run, print_series, print_table, RunSet};
use hotspots_telescope::QuorumPolicy;

fn main() {
    let (scale, mut out) = experiment(
        "fig5c_nat_detection",
        "FIGURE 5(c)",
        "Figure 5(c)",
        "sensor placement vs the NAT-driven 192/8 hotspot",
    );

    let study = DetectionStudy {
        population: scale.pick(10_000, 134_586),
        paper_profile: scale.pick(false, true),
        slash8s: 47,
        max_time: scale.pick(3_000.0, 12_000.0),
        ..DetectionStudy::default()
    };
    let sensors = scale.pick(1_000, 10_000);
    let nat_fraction = 0.15;
    let placements = [
        Placement::Random { sensors },
        Placement::TopSlash8s { sensors, k: 20 },
        Placement::Inside192,
    ];
    println!(
        "\nCodeRedII-type worm, population {} ({}% NATed into 192.168/16), \
         alert threshold {}\n",
        study.population_size(),
        (nat_fraction * 100.0) as u32,
        study.alert_threshold
    );

    let runs = RunSet::new().run(placements.to_vec(), |p| nat_run(&study, nat_fraction, p));

    out.config("population", study.population_size())
        .config("nat_fraction", nat_fraction)
        .config("placements", "Random,TopSlash8s,Inside192");
    for run in &runs {
        fold_run(
            &mut out,
            &run.ledger,
            study.population_size() as u64,
            run.infected_hosts,
            run.sim_seconds,
        );
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.placement),
                r.sensors.to_string(),
                format!(
                    "{} ({:.1}%)",
                    r.sensors_alerted,
                    100.0 * r.sensors_alerted as f64 / r.sensors.max(1) as f64
                ),
                format!("{:.1}%", 100.0 * r.alerted_at_20pct_infected),
                r.alert_curve
                    .time_to_reach(0.1)
                    .map_or_else(|| "never".to_owned(), |t| format!("{t:.0}s")),
            ]
        })
        .collect();
    print_table(
        &[
            "placement",
            "sensors",
            "alerted (final)",
            "alerted at 20% infected",
            "t(10% of sensors alerted)",
        ],
        &rows,
    );

    println!("\n-- quorum verdicts --\n");
    let policy = QuorumPolicy::new(0.5).expect("valid quorum");
    for run in &runs {
        let gap = DetectionGap::new(run.infection_curve.clone(), run.alert_curve.clone());
        println!("  {:?}: {}", run.placement, gap.describe(policy));
    }

    println!("\n-- alert curves (resampled; plot these) --\n");
    for run in &runs {
        print_series(&run.alert_curve, 25);
        println!();
    }
    println!(
        "→ random and even population-aware placement lag the outbreak; 255 \
         sensors inside the\n  hotspot /8 all alert before 20% of the \
         population is infected — but only because this\n  hotspot was known \
         in advance, which hotspots in general are not (the paper's \
         conclusion)."
    );
    out.emit();
}
