//! Figure 5(c): detection of a CodeRedII-type worm with 15% of the
//! vulnerable population NATed in 192.168/16, under three sensor
//! placement strategies.

fn main() {
    hotspots_experiments::preset_main("fig5c");
}
