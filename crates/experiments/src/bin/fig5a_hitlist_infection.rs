//! Figure 5(a): infection rate over time for hit-lists of different
//! sizes (CodeRedII-type vulnerable population, 25 seeds, 10 scans/s).

fn main() {
    hotspots_experiments::preset_main("fig5a");
}
