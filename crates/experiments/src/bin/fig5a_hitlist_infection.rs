//! Figure 5(a): infection rate over time for hit-lists of different
//! sizes (CodeRedII-type vulnerable population, 25 seeds, 10 scans/s).

use hotspots::scenarios::detection::{hitlist_runs, DetectionStudy};
use hotspots_experiments::{experiment, fold_run, print_series, print_table, RunSet};

fn main() {
    let (scale, mut out) = experiment(
        "fig5a_hitlist_infection",
        "FIGURE 5(a)",
        "Figure 5(a)",
        "infection rate vs time for 4 hit-list sizes",
    );

    let study = DetectionStudy {
        population: scale.pick(10_000, 134_586),
        paper_profile: scale.pick(false, true),
        slash8s: 47,
        max_time: scale.pick(4_000.0, 20_000.0),
        ..DetectionStudy::default()
    };
    let sizes: Vec<Option<usize>> = vec![Some(10), Some(100), Some(1000), None];
    println!(
        "\nvulnerable population {} in 47 /8s, {} seed hosts, {} scans/s\n",
        study.population_size(),
        study.seeds,
        study.scan_rate
    );

    // the sweep is embarrassingly parallel: one engine per hit-list size
    let runs = RunSet::new().run(sizes, |size| hitlist_runs(&study, &[size]).remove(0));

    out.config("population", study.population_size())
        .config("seeds", study.seeds)
        .config("scan_rate", study.scan_rate)
        .config("hit_list_sizes", "10,100,1000,full");
    for run in &runs {
        fold_run(
            &mut out,
            &run.ledger,
            study.population_size() as u64,
            run.infected_hosts,
            run.sim_seconds,
        );
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.list_size.to_string(),
                format!("{:.2}%", 100.0 * r.coverage),
                format!("{:.1}%", 100.0 * r.final_infected),
                r.infection_curve
                    .time_to_reach(0.5 * r.coverage)
                    .map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
                r.infection_curve
                    .time_to_reach(0.9 * r.coverage)
                    .map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
            ]
        })
        .collect();
    print_table(
        &[
            "/16 prefixes",
            "pop coverage",
            "final infected",
            "t(50% of coverage)",
            "t(90% of coverage)",
        ],
        &rows,
    );

    println!("\n-- infection curves (resampled; plot these) --\n");
    for run in &runs {
        print_series(&run.infection_curve, 25);
        println!();
    }
    println!(
        "→ the smallest list saturates its targets fastest (denser \
         vulnerable population);\n  larger lists reach more of the \
         population but more slowly — the paper's speed/coverage tradeoff."
    );
    out.emit();
}
