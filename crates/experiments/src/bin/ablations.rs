//! Design-decision ablations (beyond-the-paper analyses backed by the
//! same machinery; see DESIGN.md §5 and the `ablations` Criterion bench).
//!
//! 1. **NAT topology**: the paper's shared-192.168/16 wiring vs strictly
//!    isolated home NATs — whether the private cluster can ignite decides
//!    whether the Inside192 placement sees anything at all.
//! 2. **Sensor mode**: active (SYN-ACK responder, the IMS design) vs
//!    passive capture, against a TCP-carried and a UDP-carried worm.
//! 3. **Reboot fraction**: how much of Figure 1's hotspot structure comes
//!    from the boot-band seed collisions.

use hotspots::scenarios::blaster::{sources_by_block, BlasterStudy};
use hotspots::scenarios::detection::{
    nat_run_with_topology, DetectionStudy, NatTopology, Placement,
};
use hotspots::HotspotReport;
use hotspots_experiments::{
    experiment, fold_run, fold_sim_result, print_table, ReportBuilder, Scale,
};
use hotspots_netmodel::{Environment, Service};
use hotspots_sim::{Engine, FieldObserver, HitListWorm, Population, SimConfig};
use hotspots_targeting::HitList;
use hotspots_telescope::{DetectorField, SensorMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (scale, mut out) = experiment(
        "ablations",
        "ABLATIONS",
        "design-decision ablations",
        "design-decision ablations",
    );

    nat_topology_ablation(scale, &mut out);
    sensor_mode_ablation(scale, &mut out);
    reboot_fraction_ablation(scale, &mut out);
    out.emit();
}

fn nat_topology_ablation(scale: Scale, out: &mut ReportBuilder) {
    println!("\n-- 1. NAT topology: shared 192.168/16 vs isolated home NATs --\n");
    let study = DetectionStudy {
        population: scale.pick(5_000, 40_000),
        slash8s: 20,
        max_time: scale.pick(2_500.0, 6_000.0),
        ..DetectionStudy::default()
    };
    let mut rows = Vec::new();
    for topology in [NatTopology::Shared, NatTopology::Isolated] {
        let run = nat_run_with_topology(&study, 0.15, Placement::Inside192, topology);
        fold_run(
            out,
            &run.ledger,
            study.population_size() as u64,
            run.infected_hosts,
            run.sim_seconds,
        );
        rows.push(vec![
            format!("{topology:?}"),
            run.sensors.to_string(),
            run.sensors_alerted.to_string(),
            format!("{:.1}%", 100.0 * run.alerted_at_20pct_infected),
        ]);
    }
    print_table(
        &[
            "topology",
            "sensors in 192/8",
            "alerted (final)",
            "alerted at 20% infected",
        ],
        &rows,
    );
    println!(
        "→ the Figure 5(c) hotspot requires the NATed hosts to be mutually \
         reachable;\n  fully isolated home NATs produce no 192/8 flood \
         (the worm never reaches them)."
    );
}

fn sensor_mode_ablation(scale: Scale, out: &mut ReportBuilder) {
    println!("\n-- 2. sensor mode: active (SYN-ACK responder) vs passive capture --\n");
    let hosts: u32 = scale.pick(800, 3_000);
    let addrs: Vec<hotspots_ipspace::Ip> = {
        let mut rng = StdRng::seed_from_u64(21);
        let mut set = std::collections::BTreeSet::new();
        while (set.len() as u32) < hosts {
            set.insert(hotspots_ipspace::Ip::new(
                0x4242_0000 | rng.gen::<u32>() & 0xffff,
            ));
        }
        set.into_iter().collect()
    };
    let sensors: Vec<hotspots_ipspace::Prefix> = (0..16u32)
        .map(|i| format!("66.66.{}.0/24", i * 16).parse().expect("valid"))
        .collect();
    let list = HitList::new(vec!["66.66.0.0/16".parse().expect("valid")]).unwrap();

    let mut rows = Vec::new();
    for (proto_name, service) in [
        ("TCP worm (CodeRed-style)", Service::CODERED_HTTP),
        ("UDP worm (Slammer-style)", Service::SLAMMER_SQL),
    ] {
        for mode in [SensorMode::Active, SensorMode::Passive] {
            let field = DetectorField::with_mode(sensors.clone(), 5, mode);
            let mut observer = FieldObserver::with_service(field, service);
            let config = SimConfig {
                scan_rate: 20.0,
                seeds: 10,
                max_time: scale.pick(1_500.0, 3_000.0),
                stop_at_fraction: Some(0.9),
                ..SimConfig::default()
            };
            // worm targets 66.66/16 (where hosts are NOT — pure noise
            // toward the sensors) plus the host /16
            let both = HitList::new(vec![
                "66.66.0.0/16".parse().expect("valid"),
                "66.67.0.0/16".parse().expect("valid"),
            ])
            .unwrap();
            let _ = &list;
            let mut engine = Engine::new(
                config,
                Population::from_public(
                    addrs
                        .iter()
                        .map(|ip| hotspots_ipspace::Ip::new(ip.value() | 0x0001_0000)),
                ),
                Environment::new(),
                Box::new(HitListWorm::new(both).with_service(service)),
            );
            let result = engine.run(&mut observer);
            fold_sim_result(out, &result);
            let field = observer.into_field();
            rows.push(vec![
                proto_name.to_owned(),
                format!("{mode:?}"),
                field.alerted().to_string(),
                field.len().to_string(),
            ]);
        }
    }
    print_table(
        &["worm transport", "sensor mode", "alerted", "sensors"],
        &rows,
    );
    println!(
        "→ passive sensors are blind to TCP worms (no payload without a \
         SYN-ACK), which is exactly\n  why the IMS actively elicited \
         payloads — an instrumentation factor shaping what gets counted."
    );
}

fn reboot_fraction_ablation(scale: Scale, out: &mut ReportBuilder) {
    println!("\n-- 3. Blaster reboot fraction vs Figure 1 hotspot strength --\n");
    let mut rows = Vec::new();
    for reboot_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let study = BlasterStudy {
            hosts: scale.pick(3_000, 20_000),
            window_secs: 7.0 * 24.0 * 3600.0,
            reboot_fraction,
            ..BlasterStudy::default()
        };
        let rows_fig = sources_by_block(&study);
        // score over the /24 rows only: interval-coverage counts do not
        // scale with cell size, so mixing the Z block's /16 rows in would
        // bias the uniform null (see DESIGN.md)
        let counts: Vec<u64> = rows_fig
            .iter()
            .filter(|r| r.prefix.len() == 24)
            .map(|r| r.unique_sources)
            .collect();
        let report = HotspotReport::from_counts(&counts);
        rows.push(vec![
            format!("{:.0}%", reboot_fraction * 100.0),
            format!("{:.3}", report.gini),
            format!("{:.1}", report.max_median_ratio),
            report
                .chi_square_p
                .map_or_else(|| "-".into(), |p| format!("{p:.1e}")),
            if report.is_hotspot() {
                "HOTSPOT"
            } else {
                "uniform-ish"
            }
            .to_owned(),
        ]);
    }
    print_table(
        &["reboot-launched", "gini", "max/median", "χ² p", "verdict"],
        &rows,
    );
    // interval-coverage sweep: closed form, nothing routed
    out.config("reboot_fractions", "0,0.25,0.5,0.75,1");
    println!(
        "→ the boot-band seed collisions are the engine of Figure 1's \
         spikes: with no reboot\n  launches the per-/24 counts flatten \
         toward Poisson noise."
    );
}
