//! Design-decision ablations (beyond-the-paper analyses backed by the
//! same machinery; see DESIGN.md §5 and the `ablations` Criterion bench).
//!
//! 1. **NAT topology**: the paper's shared-192.168/16 wiring vs strictly
//!    isolated home NATs.
//! 2. **Sensor mode**: active (SYN-ACK responder, the IMS design) vs
//!    passive capture, against a TCP-carried and a UDP-carried worm.
//! 3. **Reboot fraction**: how much of Figure 1's hotspot structure comes
//!    from the boot-band seed collisions.

fn main() {
    hotspots_experiments::preset_main("ablations");
}
