//! Figure 2: observed unique Slammer-infected source IPs by destination
//! /24 — the M block dark, the H block trailing.

fn main() {
    hotspots_experiments::preset_main("fig2");
}
