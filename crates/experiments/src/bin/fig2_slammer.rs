//! Figure 2: observed unique Slammer-infected source IPs by destination
//! /24 — the M block dark, the H block trailing.

use hotspots::scenarios::slammer::{
    block_cycle_length_sums, sources_by_block_with, unique_sources_per_block, SlammerStudy,
};
use hotspots_experiments::{bar, experiment, print_table};
use hotspots_ipspace::ims_deployment;

fn main() {
    let (scale, mut out) = experiment(
        "fig2_slammer",
        "FIGURE 2",
        "Figure 2",
        "Slammer unique sources by destination /24 (flawed LCG cycles)",
    );

    let study = SlammerStudy {
        hosts: scale.pick(20_000, 75_000),
        ..SlammerStudy::default()
    }
    .with_m_block_filter();
    // cycle-exact closed form: per-block coverage is computed from the
    // LCG cycle structure, no probes are routed
    out.config("hosts", study.hosts)
        .config("m_block_filter", true)
        .add_population(study.hosts as u64);
    println!(
        "\n{} infected hosts (uniform DLL mix over the three flawed \
         increments), month-scale window (cycle-exact), upstream UDP/1434 \
         filter in front of the M block\n",
        study.hosts
    );

    let blocks = ims_deployment();
    let rows = sources_by_block_with(&study, &blocks);
    let unique = unique_sources_per_block(&study, &blocks);

    println!("-- per-block summary --\n");
    let mut table = Vec::new();
    for (label, total) in &unique {
        let block = blocks.iter().find(|b| b.label() == *label).expect("label");
        let slash24s = (block.size() / 256).max(1);
        let per_row: Vec<u64> = rows
            .iter()
            .filter(|r| &r.block == label)
            .map(|r| r.unique_sources)
            .collect();
        let mean = per_row.iter().sum::<u64>() as f64 / per_row.len() as f64;
        table.push(vec![
            label.clone(),
            block.prefix().to_string(),
            slash24s.to_string(),
            total.to_string(),
            format!("{mean:.0}"),
        ]);
    }
    print_table(
        &[
            "block",
            "prefix",
            "/24s",
            "unique sources",
            "mean per /24 row",
        ],
        &table,
    );

    println!("\n-- per-/24 series (sample of each block) --");
    let max = rows.iter().map(|r| r.unique_sources).max().unwrap_or(1) as f64;
    let mut current = String::new();
    for row in &rows {
        if row.block != current {
            current.clone_from(&row.block);
            println!("block {current}:");
        }
        // print /24 rows for small blocks, every 16th /16 row for Z
        let show = row.prefix.len() >= 24 || row.prefix.base().octets()[1] % 16 == 0;
        if show {
            println!(
                "  {:<20} {:>8}  {}",
                row.prefix.to_string(),
                row.unique_sources,
                bar(row.unique_sources as f64, max, 50)
            );
        }
    }

    println!("\n-- the paper's D/H/I cycle-length comparison --\n");
    let dhi: Vec<_> = blocks
        .iter()
        .filter(|b| ["D", "H", "I"].contains(&b.label()))
        .cloned()
        .collect();
    let sums = block_cycle_length_sums(&dhi);
    let table: Vec<Vec<String>> = sums
        .iter()
        .map(|(l, s)| vec![l.clone(), format!("{s:.2}")])
        .collect();
    print_table(&["block", "Σ cycle lengths (×2^26, 3 DLLs)"], &table);
    println!(
        "\n→ H is traversed by fewer long PRNG cycles than D or I, so fewer \
         seeds ever reach it;\n  M observes nothing because its provider \
         filters the worm upstream (environmental factor)."
    );
    out.emit();
}
