//! Figure 4: (a) CodeRedII unique sources by destination /24 with the M
//! block hotspot; (b, c) the quarantine experiments.

use hotspots::scenarios::codered::{quarantine_run, sources_by_block_accounted, CodeRedStudy};
use hotspots::scenarios::totals_by_block;
use hotspots_experiments::{bar, experiment, fold_ledger, print_table};
use hotspots_ipspace::{ims_deployment, Bucket24, Ip, Prefix};
use hotspots_stats::CountHistogram;

fn main() {
    let (scale, mut out) = experiment(
        "fig4_codered_nat",
        "FIGURE 4",
        "Figure 4",
        "CodeRedII × NAT topology: the 192/8 hotspot",
    );
    let blocks = ims_deployment();

    println!("\n-- Figure 4(a): mixed population, 15% NATed --\n");
    let study = CodeRedStudy {
        hosts: scale.pick(3_000, 12_000),
        probes_per_host: scale.pick(8_000, 20_000),
        ..CodeRedStudy::default()
    };
    println!(
        "{} hosts, {} probes each, NAT fraction {:.0}%\n",
        study.hosts,
        study.probes_per_host,
        study.nat_fraction * 100.0
    );
    out.config("hosts", study.hosts)
        .config("probes_per_host", study.probes_per_host)
        .config("nat_fraction", study.nat_fraction)
        .add_population(study.hosts as u64);
    let (rows, ledger) = sources_by_block_accounted(&study, &blocks);
    fold_ledger(&mut out, &ledger);
    let mut table = Vec::new();
    let mut max_rate = 0.0f64;
    let mut rates = Vec::new();
    for (label, total) in totals_by_block(&rows) {
        let block = blocks.iter().find(|b| b.label() == label).expect("label");
        let rate = total as f64 / (block.size() / 256).max(1) as f64;
        max_rate = max_rate.max(rate);
        rates.push((label, total, rate));
    }
    for (label, total, rate) in rates {
        table.push(vec![
            label,
            total.to_string(),
            format!("{rate:.2}"),
            bar(rate, max_rate, 40),
        ]);
    }
    print_table(&["block", "unique sources", "per /24", "profile"], &table);

    println!("\n-- Figure 4(b)/(c): quarantine runs --\n");
    // the paper's probe counts
    let probes_b = scale.pick(500_000, 7_567_093);
    let probes_c = scale.pick(500_000, 7_567_361);
    let m_prefix: Prefix = "192.40.16.0/22".parse().expect("M prefix");
    let m_hits = |h: &CountHistogram<Bucket24>| -> u64 {
        h.iter()
            .filter(|(b, _)| m_prefix.contains(b.first_ip()))
            .map(|(_, c)| c)
            .sum()
    };
    let outside = quarantine_run(Ip::from_octets(57, 20, 3, 9), probes_b, &blocks, 4);
    let natted = quarantine_run(Ip::from_octets(192, 168, 0, 100), probes_c, &blocks, 4);
    let rows = vec![
        vec![
            "4(b) public 57.20.3.9".to_owned(),
            probes_b.to_string(),
            outside.total().to_string(),
            m_hits(&outside).to_string(),
        ],
        vec![
            "4(c) NATed 192.168.0.100".to_owned(),
            probes_c.to_string(),
            natted.total().to_string(),
            m_hits(&natted).to_string(),
        ],
    ];
    print_table(
        &[
            "quarantined host",
            "probes",
            "telescope hits",
            "M-block hits",
        ],
        &rows,
    );
    println!(
        "\n→ the NATed instance's /8 preference lands on public 192/8: the \
         distinct M spike of 4(a)/4(c),\n  absent from the public-host run \
         4(b) — topology (an environmental factor) shaped the hotspot."
    );
    // the quarantine runs scan straight into the telescope index
    // (no environment), so only 4(a)'s probes are ledgered
    out.emit();
}
