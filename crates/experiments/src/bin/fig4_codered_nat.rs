//! Figure 4: (a) CodeRedII unique sources by destination /24 with the M
//! block hotspot; (b, c) the quarantine experiments.

fn main() {
    hotspots_experiments::preset_main("fig4");
}
