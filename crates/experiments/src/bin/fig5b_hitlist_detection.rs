//! Figure 5(b): % of sensors alerting over time during the hit-list
//! outbreaks (one /24 detector per vulnerable /16, alert at 5 payloads).

fn main() {
    hotspots_experiments::preset_main("fig5b");
}
