//! Figure 5(b): % of sensors alerting over time during the hit-list
//! outbreaks (one /24 detector per vulnerable /16, alert at 5 payloads).

use hotspots::detection_gap::DetectionGap;
use hotspots::scenarios::detection::{hitlist_runs, DetectionStudy};
use hotspots_experiments::{experiment, fold_run, print_series, print_table, RunSet};
use hotspots_telescope::QuorumPolicy;

fn main() {
    let (scale, mut out) = experiment(
        "fig5b_hitlist_detection",
        "FIGURE 5(b)",
        "Figure 5(b)",
        "sensor detection rate vs time for 4 hit-list sizes",
    );

    let study = DetectionStudy {
        population: scale.pick(10_000, 134_586),
        paper_profile: scale.pick(false, true),
        slash8s: 47,
        max_time: scale.pick(4_000.0, 20_000.0),
        ..DetectionStudy::default()
    };
    let sizes: Vec<Option<usize>> = vec![Some(10), Some(100), Some(1000), None];
    println!(
        "\none /24 sensor per occupied /16, alert after {} worm payloads, \
         no false positives\n",
        study.alert_threshold
    );

    let runs = RunSet::new().run(sizes, |size| hitlist_runs(&study, &[size]).remove(0));

    out.config("population", study.population_size())
        .config("alert_threshold", study.alert_threshold)
        .config("hit_list_sizes", "10,100,1000,full");
    for run in &runs {
        fold_run(
            &mut out,
            &run.ledger,
            study.population_size() as u64,
            run.infected_hosts,
            run.sim_seconds,
        );
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let alerted_frac = r.sensors_alerted as f64 / r.sensors as f64;
            // the paper's comparison: alert fraction when 90% of the
            // *reachable* population is infected
            let t90 = r.infection_curve.time_to_reach(0.9 * r.coverage);
            let at90 = t90.map_or(f64::NAN, |t| r.alert_curve.value_at(t));
            vec![
                r.list_size.to_string(),
                r.sensors.to_string(),
                format!("{}", r.sensors_alerted),
                format!("{:.1}%", 100.0 * alerted_frac),
                t90.map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
                if at90.is_nan() {
                    "-".to_owned()
                } else {
                    format!("{:.1}%", 100.0 * at90)
                },
            ]
        })
        .collect();
    print_table(
        &[
            "/16 prefixes",
            "sensors",
            "alerted (final)",
            "alerted %",
            "t(90% coverage infected)",
            "alerted % at that time",
        ],
        &rows,
    );

    println!("\n-- quorum verdicts --\n");
    let policy = QuorumPolicy::new(0.5).expect("valid quorum");
    for run in &runs {
        let gap = DetectionGap::new(run.infection_curve.clone(), run.alert_curve.clone());
        println!(
            "  {:>5}-prefix list: {}",
            run.list_size,
            gap.describe(policy)
        );
    }

    println!("\n-- alert curves (resampled; plot these) --\n");
    for run in &runs {
        print_series(&run.alert_curve, 25);
        println!();
    }
    println!(
        "→ narrow hit-lists leave almost every sensor silent even at full \
         infection of their targets:\n  a quorum rule over this field never \
         fires — the paper's central detection failure."
    );
    out.emit();
}
