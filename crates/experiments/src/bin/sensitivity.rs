//! Placement-sensitivity sweep: rerun the headline case studies over
//! randomized sensor deployments to show the conclusions do not depend
//! on the default synthetic block bases (DESIGN.md §2).

use hotspots::scenarios::{codered, slammer, totals_by_block, CoverageRow};
use hotspots_experiments::{experiment, fold_ledger, print_table, RunSet};
use hotspots_ipspace::{random_ims_deployment, AddressBlock};
use hotspots_netmodel::DeliveryLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn per_slash24_rates(
    rows: &[CoverageRow],
    blocks: &[AddressBlock],
) -> std::collections::HashMap<String, f64> {
    totals_by_block(rows)
        .into_iter()
        .map(|(label, total)| {
            let block = blocks.iter().find(|b| b.label() == label).expect("label");
            ((label), total as f64 / (block.size() / 256).max(1) as f64)
        })
        .collect()
}

fn main() {
    let (scale, mut out) = experiment(
        "sensitivity",
        "SENSITIVITY",
        "placement sensitivity",
        "case studies over randomized sensor placements",
    );
    let trials = scale.pick(3, 8);
    let mut rng = StdRng::seed_from_u64(0x5ee0);
    out.config("trials", trials);
    let mut ledger = DeliveryLedger::new();
    let runset = RunSet::new();

    // Deployments are drawn sequentially from one stream (exactly as the
    // old serial loops did); precomputing them lets the independently
    // seeded trials themselves run across threads.
    let codered_deployments: Vec<(u64, Vec<AddressBlock>)> = (0..trials)
        .map(|trial| (trial, random_ims_deployment(&mut rng)))
        .collect();
    let slammer_deployments: Vec<(u64, Vec<AddressBlock>)> = (0..trials)
        .map(|trial| (trial, random_ims_deployment(&mut rng)))
        .collect();

    println!("\n-- CodeRedII M spike across {trials} random placements --\n");
    let codered_runs = runset.run(codered_deployments, |(trial, blocks)| {
        let study = codered::CodeRedStudy {
            hosts: scale.pick(1_200, 6_000),
            nat_fraction: 0.15,
            probes_per_host: scale.pick(8_000, 15_000),
            rng_seed: 1_000 + trial,
        };
        let (rows, trial_ledger) = codered::sources_by_block_accounted(&study, &blocks);
        (trial, blocks, study.hosts, rows, trial_ledger)
    });
    let mut rows_out = Vec::new();
    for (trial, blocks, hosts, rows, trial_ledger) in &codered_runs {
        let m = blocks.iter().find(|b| b.label() == "M").expect("M").clone();
        ledger.merge(trial_ledger);
        out.add_population(*hosts as u64);
        let rates = per_slash24_rates(rows, blocks);
        let background: f64 = ["A", "B", "C", "D", "E", "F", "H", "I"]
            .iter()
            .map(|l| rates[*l])
            .sum::<f64>()
            / 8.0;
        rows_out.push(vec![
            trial.to_string(),
            m.prefix().to_string(),
            format!("{:.2}", rates["M"]),
            format!("{background:.2}"),
            format!("{:.1}×", rates["M"] / background.max(0.05)),
        ]);
    }
    print_table(
        &[
            "trial",
            "M block placement",
            "M rate (/24)",
            "background rate",
            "spike",
        ],
        &rows_out,
    );

    println!("\n-- Slammer per-/24 spread across {trials} random placements --\n");
    let slammer_runs = runset.run(slammer_deployments, |(trial, blocks)| {
        let study = slammer::SlammerStudy {
            hosts: scale.pick(10_000, 40_000),
            rng_seed: 2_000 + trial,
            ..slammer::SlammerStudy::default()
        };
        let rows = slammer::sources_by_block_with(&study, &blocks);
        (trial, blocks, rows)
    });
    let mut rows_out = Vec::new();
    for (trial, blocks, rows) in &slammer_runs {
        let rates = per_slash24_rates(rows, blocks);
        let mut small: Vec<(String, f64)> = rates
            .iter()
            .filter(|(l, _)| l.as_str() != "Z")
            .map(|(l, &r)| (l.clone(), r))
            .collect();
        small.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let (lo_label, lo) = small.first().expect("blocks").clone();
        let (hi_label, hi) = small.last().expect("blocks").clone();
        rows_out.push(vec![
            trial.to_string(),
            format!("{lo_label} = {lo:.0}"),
            format!("{hi_label} = {hi:.0}"),
            format!("{:.1}×", hi / lo.max(1.0)),
        ]);
    }
    print_table(
        &[
            "trial",
            "quietest block (rate/24)",
            "loudest block (rate/24)",
            "spread",
        ],
        &rows_out,
    );
    println!(
        "\n→ the M spike and the cycle-driven per-block spread persist across \
         placements:\n  the conclusions are properties of the mechanisms, not \
         of where we happened to put the sensors."
    );
    // Slammer trials are cycle-exact (nothing routed); only the
    // CodeRedII trials contribute delivery accounting
    fold_ledger(&mut out, &ledger);
    out.emit();
}
