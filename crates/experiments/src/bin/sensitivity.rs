//! Placement-sensitivity sweep: rerun the headline case studies over
//! randomized sensor deployments to show the conclusions do not depend
//! on the default synthetic block bases (DESIGN.md §2).

fn main() {
    hotspots_experiments::preset_main("sensitivity");
}
