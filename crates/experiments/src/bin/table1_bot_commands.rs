//! Table 1: botnet scan commands captured on a live /15 academic network.
//!
//! Regenerates the table from the grammar + corpus model: the verbatim
//! paper commands parsed and analyzed, followed by a synthetic month of
//! captured commands with the same composition.

use hotspots_botnet::corpus;
use hotspots_experiments::{experiment, print_table};
use hotspots_ipspace::Ip;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (scale, mut out) = experiment(
        "table1_bot_commands",
        "TABLE 1",
        "Table 1",
        "botnet scan commands and their hit-lists",
    );

    // the observing academic network: a /15 with the drone at this address
    let drone = Ip::from_octets(141, 20, 33, 7);
    // grammar/corpus analysis: no probes, no environment

    println!("\n-- commands reported in the paper --\n");
    let rows: Vec<Vec<String>> = corpus::hit_list_report(&corpus::table1(), drone)
        .into_iter()
        .map(|(cmd, range, size)| {
            vec![
                cmd,
                range,
                format!("{size}"),
                format!("{:.5}%", 100.0 * size as f64 / 2f64.powi(32)),
            ]
        })
        .collect();
    print_table(
        &[
            "bot propagation command",
            "drone scan range",
            "addresses",
            "% of IPv4",
        ],
        &rows,
    );

    let n = scale.pick(40, 400);
    println!("\n-- synthetic capture ({n} commands, same composition) --\n");
    let mut rng = StdRng::seed_from_u64(0x7ab1e);
    let commands = corpus::generate(n, &mut rng);
    let report = corpus::hit_list_report(&commands, drone);
    let restricted = report
        .iter()
        .filter(|(_, _, size)| *size < (1u64 << 32))
        .count();
    let sample: Vec<Vec<String>> = report
        .iter()
        .take(15)
        .map(|(cmd, range, size)| vec![cmd.clone(), range.clone(), format!("{size}")])
        .collect();
    print_table(
        &["command (first 15)", "drone scan range", "addresses"],
        &sample,
    );
    println!("\n{restricted}/{n} commands restrict propagation below the full IPv4 space");
    println!(
        "→ hit-lists are in routine use; each restriction is an algorithmic \
         hotspot factor."
    );
    out.config("synthetic_commands", n)
        .config("restricted", restricted);
    out.emit();
}
