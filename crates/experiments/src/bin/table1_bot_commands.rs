//! Table 1: botnet scan commands captured on a live /15 academic network.
//!
//! Regenerates the table from the grammar + corpus model: the verbatim
//! paper commands parsed and analyzed, followed by a synthetic month of
//! captured commands with the same composition.

fn main() {
    hotspots_experiments::preset_main("table1");
}
