//! Table 2: worm infections visible from Fortune-100 enterprises vs
//! broadband ISPs.

fn main() {
    hotspots_experiments::preset_main("table2");
}
