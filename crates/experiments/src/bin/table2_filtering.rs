//! Table 2: worm infections visible from Fortune-100 enterprises vs
//! broadband ISPs.

use hotspots::scenarios::filtering::{table2_with_accounting, FilteringStudy};
use hotspots_experiments::{experiment, fold_ledger, print_table};

fn main() {
    let (scale, mut out) = experiment(
        "table2_filtering",
        "TABLE 2",
        "Table 2",
        "enterprise egress filtering hides infections from the telescope",
    );

    let study = FilteringStudy {
        infected_per_enterprise: scale.pick(100, 800),
        infected_per_isp: scale.pick(1_000, 20_000),
        probes_per_host: scale.pick(4_000, 12_000),
        ..FilteringStudy::default()
    };
    println!(
        "\n{} infected hosts planted per enterprise, {} per ISP; \
         CRII/Slammer probe-driven ({} probes/host), Blaster interval-exact\n",
        study.infected_per_enterprise, study.infected_per_isp, study.probes_per_host
    );

    out.config("infected_per_enterprise", study.infected_per_enterprise)
        .config("infected_per_isp", study.infected_per_isp)
        .config("probes_per_host", study.probes_per_host);
    let (table_rows, ledger) = table2_with_accounting(&study);
    fold_ledger(&mut out, &ledger);
    out.add_population(table_rows.iter().map(|r| r.infected_inside).sum::<u64>());

    let rows: Vec<Vec<String>> = table_rows
        .into_iter()
        .map(|r| {
            vec![
                r.org,
                r.kind.to_string(),
                r.total_ips.to_string(),
                r.infected_inside.to_string(),
                r.crii_observed.to_string(),
                r.slammer_observed.to_string(),
                r.blaster_observed.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "organization",
            "kind",
            "total IPs",
            "infected inside",
            "CRII IPs seen",
            "Slammer IPs seen",
            "Blaster IPs seen",
        ],
        &rows,
    );
    println!(
        "\n→ despite harboring infections, egress-filtered enterprises show \
         ~zero outward sign;\n  broadband ISPs expose their infected \
         populations nearly completely (the paper's contrast)."
    );
    out.emit();
}
