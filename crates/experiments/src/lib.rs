//! Shared output plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index). They share a `--quick` flag (reduced
//! scale, seconds instead of minutes) and these plain-text rendering
//! helpers, so output can be diffed, grepped, and pasted into
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hotspots_sim::SimResult;
use hotspots_stats::TimeSeries;

pub use hotspots_sim::fold_ledger;
pub use hotspots_telemetry::{ReportBuilder, RunReport, RUN_REPORT_ENV};

/// Experiment scale, selected by the `--quick` command-line flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale for smoke runs (seconds).
    Quick,
    /// Paper scale (may take minutes).
    Paper,
}

impl Scale {
    /// Parses the process arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick" || a == "-q") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Picks `quick` or `paper` by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// The scale's name as echoed in run reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Starts the run report every experiment binary emits, echoing the
/// scale into the config map. Finish with [`ReportBuilder::emit`].
pub fn report(binary: &str, scenario: &str, scale: Scale) -> ReportBuilder {
    let mut builder = ReportBuilder::new(binary, scenario);
    builder.config("scale", scale.label());
    builder
}

/// Folds an engine [`SimResult`] into a report: probe accounting,
/// population, infections, simulated time, and (this crate builds
/// `hotspots-sim` with its `telemetry` feature) the engine's per-phase
/// timings and step peak.
pub fn fold_sim_result(report: &mut ReportBuilder, result: &SimResult) {
    fold_ledger(report, &result.ledger);
    report
        .add_population(result.population as u64)
        .add_infections(result.infected as u64)
        .add_sim_seconds(result.elapsed);
    for (name, total, _) in result.telemetry.phases.iter() {
        report.add_phase_seconds(name, total.as_secs_f64());
    }
    report.peak_step_seconds(result.telemetry.peak_step_seconds);
}

/// Prints an experiment banner with the figure/table it regenerates.
pub fn banner(artifact: &str, title: &str, scale: Scale) {
    println!("================================================================");
    println!("{artifact} — {title}");
    println!(
        "scale: {} (pass --quick for a fast smoke run)",
        match scale {
            Scale::Quick => "QUICK",
            Scale::Paper => "paper",
        }
    );
    println!("================================================================");
}

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a time series as `t<TAB>value` rows resampled onto `points`
/// grid points (gnuplot-ready), preceded by its name.
pub fn print_series(series: &TimeSeries, points: usize) {
    if series.is_empty() {
        println!("# {} (empty)", series.name());
        return;
    }
    print!("{}", series.resample(points.max(2)));
}

/// A one-line ASCII bar for figure-style rows.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
