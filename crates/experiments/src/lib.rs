//! Presentation layer for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index) by looking its scenario up in the
//! `hotspots-scenario` registry, executing it through
//! [`hotspots_scenario::run_spec`], and rendering the returned
//! [`Outcome`] with the plain-text helpers here — so output can be
//! diffed, grepped, and pasted into `EXPERIMENTS.md`, and the run
//! report is identical whether the scenario ran through a dedicated
//! binary or `hotspots run <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;

use hotspots_stats::TimeSeries;

pub use hotspots_scenario::{
    find_preset, fold_run, fold_sim_result, presets, run_spec, HotspotsError, Outcome, Preset,
    RunContext, RunSet, Scale, ScenarioRun, ScenarioSpec,
};
pub use hotspots_sim::fold_ledger;
pub use hotspots_telemetry::{ReportBuilder, RunReport, RUN_REPORT_ENV};

/// Starts the run report every experiment binary emits, echoing the
/// scale it ran at.
pub fn report(binary: &str, scenario: &str, scale: Scale) -> ReportBuilder {
    let mut builder = ReportBuilder::new(binary, scenario);
    builder.config("scale", scale.label());
    builder
}

/// Common prologue for experiment binaries: parses the scale from the
/// command line, prints the banner (`artifact` — `title`), and starts
/// the run report under `binary`/`scenario`. Returns the scale and the
/// report builder; finish with [`ReportBuilder::emit`].
pub fn experiment(
    binary: &str,
    artifact: &str,
    scenario: &str,
    title: &str,
) -> (Scale, ReportBuilder) {
    let scale = Scale::from_args();
    banner(artifact, title, scale);
    (scale, report(binary, scenario, scale))
}

/// The whole main() of a preset-backed experiment binary: strict
/// argument parsing (`--quick`/`--help`), banner, registry lookup,
/// [`run_spec`], rendering, report emission. Failures print to stderr
/// and exit with the error's code (2 for spec/usage mistakes, 1 for
/// runtime failures) instead of panicking.
pub fn preset_main(name: &str) {
    let Some(preset) = find_preset(name) else {
        eprintln!("error: {name:?} is not a registered preset (see `hotspots list`)");
        std::process::exit(2);
    };
    let scale = Scale::from_args();
    banner(preset.artifact, preset.title, scale);
    let spec = preset.spec(scale);
    let run = match run_spec(&spec, &RunContext::new(preset.binary)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    };
    render::render(&run.outcome);
    if let Err(e) = run.emit_report() {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// Prints an experiment banner with the figure/table it regenerates.
pub fn banner(artifact: &str, title: &str, scale: Scale) {
    println!("================================================================");
    println!("{artifact} — {title}");
    println!(
        "scale: {} (pass --quick for a fast smoke run)",
        match scale {
            Scale::Quick => "QUICK",
            Scale::Paper => "paper",
        }
    );
    println!("================================================================");
}

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a time series as `t<TAB>value` rows resampled onto `points`
/// grid points (gnuplot-ready), preceded by its name.
pub fn print_series(series: &TimeSeries, points: usize) {
    if series.is_empty() {
        println!("# {} (empty)", series.name());
        return;
    }
    print!("{}", series.resample(points.max(2)));
}

/// A one-line ASCII bar for figure-style rows.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
