//! Shared output plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index). They share a `--quick` flag (reduced
//! scale, seconds instead of minutes) and these plain-text rendering
//! helpers, so output can be diffed, grepped, and pasted into
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hotspots_netmodel::DeliveryLedger;
use hotspots_sim::SimResult;
use hotspots_stats::TimeSeries;

pub use hotspots_sim::fold_ledger;
pub use hotspots_telemetry::{ReportBuilder, RunReport, RUN_REPORT_ENV};

/// Experiment scale, selected by the `--quick` command-line flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale for smoke runs (seconds).
    Quick,
    /// Paper scale (may take minutes).
    Paper,
}

impl Scale {
    /// Parses the process arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick" || a == "-q") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Picks `quick` or `paper` by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// The scale's name as echoed in run reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Starts the run report every experiment binary emits, echoing the
/// scale into the config map. Finish with [`ReportBuilder::emit`].
pub fn report(binary: &str, scenario: &str, scale: Scale) -> ReportBuilder {
    let mut builder = ReportBuilder::new(binary, scenario);
    builder.config("scale", scale.label());
    builder
}

/// Common prologue for experiment binaries: parses the scale from the
/// command line, prints the banner (`artifact` — `title`), and starts
/// the run report under `binary`/`scenario`. Returns the scale and the
/// report builder; finish with [`ReportBuilder::emit`].
pub fn experiment(
    binary: &str,
    artifact: &str,
    scenario: &str,
    title: &str,
) -> (Scale, ReportBuilder) {
    let scale = Scale::from_args();
    banner(artifact, title, scale);
    (scale, report(binary, scenario, scale))
}

/// Folds one sweep run's accounting into a report: its delivery ledger,
/// the population it ran over, its infection count, and its simulated
/// seconds — the fold every sweep binary repeats per run.
pub fn fold_run(
    report: &mut ReportBuilder,
    ledger: &DeliveryLedger,
    population: u64,
    infections: u64,
    sim_seconds: f64,
) {
    fold_ledger(report, ledger);
    report
        .add_population(population)
        .add_infections(infections)
        .add_sim_seconds(sim_seconds);
}

/// Runs a set of independent experiment configurations across threads,
/// returning results in input order.
///
/// Each input is handed to the job exactly once, workers pull from a
/// shared queue, and results land in their input's slot — so the output
/// is deterministic (input order) no matter how the OS schedules the
/// workers. Jobs must be independently seeded (as every sweep in this
/// crate is); `RunSet` adds no randomness of its own.
#[derive(Debug, Clone, Copy)]
pub struct RunSet {
    threads: usize,
}

impl Default for RunSet {
    fn default() -> RunSet {
        RunSet::new()
    }
}

impl RunSet {
    /// A run set using all available cores.
    pub fn new() -> RunSet {
        RunSet {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// A run set with an explicit worker count (at least 1).
    pub fn with_threads(threads: usize) -> RunSet {
        RunSet {
            threads: threads.max(1),
        }
    }

    /// Runs `job` over every input, in parallel, returning the results
    /// in input order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after all workers finish.
    pub fn run<I, R, F>(&self, inputs: Vec<I>, job: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = inputs.len();
        if self.threads <= 1 || n <= 1 {
            return inputs.into_iter().map(job).collect();
        }
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let input = slots[idx]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("input taken once");
                    let out = job(input);
                    *results[idx].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job completed")
            })
            .collect()
    }
}

/// Folds an engine [`SimResult`] into a report: probe accounting,
/// population, infections, simulated time, and (this crate builds
/// `hotspots-sim` with its `telemetry` feature) the engine's per-phase
/// timings and step peak.
pub fn fold_sim_result(report: &mut ReportBuilder, result: &SimResult) {
    fold_ledger(report, &result.ledger);
    report
        .add_population(result.population as u64)
        .add_infections(result.infected as u64)
        .add_sim_seconds(result.elapsed);
    for (name, total, _) in result.telemetry.phases.iter() {
        report.add_phase_seconds(name, total.as_secs_f64());
    }
    report.peak_step_seconds(result.telemetry.peak_step_seconds);
}

/// Prints an experiment banner with the figure/table it regenerates.
pub fn banner(artifact: &str, title: &str, scale: Scale) {
    println!("================================================================");
    println!("{artifact} — {title}");
    println!(
        "scale: {} (pass --quick for a fast smoke run)",
        match scale {
            Scale::Quick => "QUICK",
            Scale::Paper => "paper",
        }
    );
    println!("================================================================");
}

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a time series as `t<TAB>value` rows resampled onto `points`
/// grid points (gnuplot-ready), preceded by its name.
pub fn print_series(series: &TimeSeries, points: usize) {
    if series.is_empty() {
        println!("# {} (empty)", series.name());
        return;
    }
    print!("{}", series.resample(points.max(2)));
}

/// A one-line ASCII bar for figure-style rows.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn run_set_preserves_input_order() {
        // uneven job durations so completion order differs from input
        // order — results must still come back in input order
        let inputs: Vec<u64> = (0..32).collect();
        let out = RunSet::with_threads(4).run(inputs.clone(), |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i * i
        });
        let expected: Vec<u64> = inputs.iter().map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn run_set_single_thread_and_empty_inputs() {
        assert_eq!(
            RunSet::with_threads(1).run(vec![1, 2, 3], |i| i + 1),
            vec![2, 3, 4]
        );
        assert_eq!(
            RunSet::with_threads(8).run(Vec::<u32>::new(), |i| i),
            Vec::<u32>::new()
        );
        assert!(RunSet::with_threads(0).threads >= 1);
    }

    #[test]
    fn fold_run_accumulates() {
        let mut report = ReportBuilder::new("test", "test");
        let ledger = DeliveryLedger::new();
        fold_run(&mut report, &ledger, 100, 7, 3.5);
        fold_run(&mut report, &ledger, 50, 3, 1.5);
        let built = report.build();
        assert_eq!(built.population, 150);
        assert_eq!(built.infections, 10);
        assert!((built.sim_seconds - 5.0).abs() < 1e-12);
    }
}
