//! Rendering an [`Outcome`] as the experiment binaries' plain-text
//! tables, bar charts, and gnuplot-ready series.
//!
//! Every variant's section is ported verbatim from the binary it used to
//! live in, so `hotspots run fig2` prints the same figure `fig2_slammer`
//! always did. Rendering is read-only: all accounting happened in
//! [`hotspots_scenario::run_spec`], and everything here derives from the
//! outcome's raw results (plus the fixed IMS deployment, which the
//! closed-form studies share).

use std::collections::BTreeMap;

use hotspots::detection_gap::DetectionGap;
use hotspots::scenarios::blaster::{draw_hosts, BlasterStudy};
use hotspots::scenarios::codered::CodeRedStudy;
use hotspots::scenarios::detection::{DetectionStudy, HitListRun, NatRun, NatTopology};
use hotspots::scenarios::filtering::{FilteringStudy, Table2Row};
use hotspots::scenarios::slammer::{cycle_bands, SlammerStudy};
use hotspots::scenarios::{totals_by_block, CoverageRow};
use hotspots::{seed_inference, HotspotReport};
use hotspots_ipspace::{ims_deployment, AddressBlock, Bucket24, Deployment, Ip, Prefix};
use hotspots_prng::entropy::TickCount;
use hotspots_prng::SqlsortDll;
use hotspots_scenario::run::{
    CodeRedTrial, QuarantineTrace, SensorModeRun, SlammerHostTrace, SlammerTrial,
};
use hotspots_scenario::Outcome;
use hotspots_sim::SimResult;
use hotspots_stats::CountHistogram;
use hotspots_telescope::{DetectorField, QuorumPolicy};

use crate::{bar, print_series, print_table};

/// Prints the presentation section for an executed scenario.
pub fn render(outcome: &Outcome) {
    match outcome {
        Outcome::Engine { result, field } => render_engine(result, field.as_ref()),
        Outcome::BlasterCoverage { study, rows } => render_fig1(study, rows),
        Outcome::SlammerCoverage {
            study,
            rows,
            unique,
            cycle_sums,
        } => render_fig2(study, rows, unique, cycle_sums),
        Outcome::SlammerHosts { probes, hosts } => render_fig3(*probes, hosts),
        Outcome::CodeRedNat {
            study,
            rows,
            quarantines,
        } => render_fig4(study, rows, quarantines),
        Outcome::HitListInfection { study, runs } => render_fig5a(study, runs),
        Outcome::HitListDetection { study, runs } => render_fig5b(study, runs),
        Outcome::NatDetection {
            study,
            nat_fraction,
            runs,
        } => render_fig5c(study, *nat_fraction, runs),
        Outcome::BotCommands {
            drone,
            paper,
            synthetic,
            synthetic_commands,
            restricted,
        } => render_table1(*drone, paper, synthetic, *synthetic_commands, *restricted),
        Outcome::Filtering { study, rows } => render_table2(study, rows),
        Outcome::Ablations {
            nat,
            sensor,
            reboot,
        } => render_ablations(nat, sensor, reboot),
        Outcome::Sensitivity { codered, slammer } => render_sensitivity(codered, slammer),
    }
}

fn render_engine(result: &SimResult, field: Option<&DetectorField>) {
    println!(
        "\n{} of {} hosts infected ({:.1}%), {} removed, after {:.1} simulated seconds",
        result.infected,
        result.population,
        100.0 * result.infected_fraction(),
        result.removed,
        result.elapsed
    );
    let ledger = &result.ledger;
    println!(
        "{} probes sent: {} delivered public, {} delivered local, {} dropped",
        ledger.probes(),
        ledger.delivered_public(),
        ledger.delivered_local(),
        ledger.dropped_total()
    );
    if let Some(field) = field {
        println!(
            "detector field: {} of {} sensors alerted",
            field.alerted(),
            field.len()
        );
    }
    println!("\n-- infection curve (resampled; plot this) --\n");
    print_series(&result.infection_curve, 25);
}

// hotspots-lint: certifies(panic-free) reason="rendered studies always produce coverage rows"
fn render_fig1(study: &BlasterStudy, rows: &[CoverageRow]) {
    println!(
        "\n{} infected hosts, {:.0}-day window, {} probes/s, {}% reboot-launched\n",
        study.hosts,
        study.window_secs / 86_400.0,
        study.scan_rate,
        (study.reboot_fraction * 100.0) as u32
    );

    let max = rows.iter().map(|r| r.unique_sources).max().unwrap_or(1) as f64;

    // figure series: per-/24 (per-/16 for Z) unique source counts
    println!("-- per-bucket unique sources (the figure's y-axis) --");
    let mut current_block = String::new();
    for row in rows {
        if row.block != current_block {
            current_block.clone_from(&row.block);
            println!("block {current_block}:");
        }
        if row.unique_sources > 0 || row.prefix.len() >= 24 {
            println!(
                "  {:<20} {:>7}  {}",
                row.prefix.to_string(),
                row.unique_sources,
                bar(row.unique_sources as f64, max, 50)
            );
        }
    }

    // score over the equal-size /24 rows (interval coverage does not
    // scale with cell size, so the /16 Z rows use a different null)
    let counts: Vec<u64> = rows
        .iter()
        .filter(|r| r.prefix.len() == 24)
        .map(|r| r.unique_sources)
        .collect();
    let report = HotspotReport::from_counts(&counts);
    println!("\nnon-uniformity over /24 rows: {report}");

    // the paper's correlation, run both directions:
    //  * ground truth: the tick counts of the hosts that actually cover
    //    each row (the paper's "the spike maps back to 2.3 minutes"),
    //  * forward search: candidate seeds in the tick range that would
    //    explain the row (seed_inference::candidate_seeds).
    println!("\n-- seed correlation (hot vs cold /24 rows) --\n");
    let hosts = draw_hosts(study);
    let mut sorted: Vec<_> = rows.iter().filter(|r| r.prefix.len() == 24).collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.unique_sources));
    let picks = [
        ("hottest", sorted[0]),
        ("2nd", sorted[1]),
        ("3rd", sorted[2]),
        ("coldest", *sorted.last().expect("rows exist")),
    ];
    let mut table = Vec::new();
    for (tag, row) in picks {
        let covering: Vec<u32> = hosts
            .iter()
            .filter(|h| seed_inference::scan_covers(h.start, study.scan_len(), row.prefix))
            .map(|h| h.tick)
            .collect();
        let mut ticks = covering.clone();
        ticks.sort_unstable();
        let median = ticks.get(ticks.len() / 2).map_or_else(
            || "-".to_owned(),
            |t| format!("{}", TickCount::from_millis(*t)),
        );
        let boot_band = covering
            .iter()
            .filter(|&&t| (25_000..=35_000).contains(&t))
            .count();
        // forward search restricted to the boot band
        let forward = seed_inference::candidate_seeds(
            25_000..35_000,
            Ip::from_octets(7, 7, 7, 7),
            study.scan_len(),
            row.prefix,
        );
        table.push(vec![
            tag.to_owned(),
            row.prefix.to_string(),
            row.unique_sources.to_string(),
            median,
            format!("{boot_band}/{}", covering.len()),
            forward.len().to_string(),
        ]);
    }
    print_table(
        &[
            "row",
            "/24",
            "sources",
            "median covering tick",
            "boot-band hosts",
            "boot-band seeds (fwd)",
        ],
        &table,
    );
    println!(
        "\n→ spike rows are covered disproportionately by hosts whose seeds \
         sit in the ~30 s\n  reboot band; the restricted GetTickCount() \
         range is the root cause."
    );
}

// hotspots-lint: certifies(panic-free) reason="the IMS deployment literal contains every labelled block"
fn render_fig2(
    study: &SlammerStudy,
    rows: &[CoverageRow],
    unique: &[(String, u64)],
    cycle_sums: &[(String, f64)],
) {
    println!(
        "\n{} infected hosts (uniform DLL mix over the three flawed \
         increments), month-scale window (cycle-exact), upstream UDP/1434 \
         filter in front of the M block\n",
        study.hosts
    );

    let blocks = ims_deployment();

    println!("-- per-block summary --\n");
    let mut table = Vec::new();
    for (label, total) in unique {
        let block = blocks.by_label(label).expect("label");
        let slash24s = (block.size() / 256).max(1);
        let per_row: Vec<u64> = rows
            .iter()
            .filter(|r| &r.block == label)
            .map(|r| r.unique_sources)
            .collect();
        let mean = per_row.iter().sum::<u64>() as f64 / per_row.len() as f64;
        table.push(vec![
            label.clone(),
            block.prefix().to_string(),
            slash24s.to_string(),
            total.to_string(),
            format!("{mean:.0}"),
        ]);
    }
    print_table(
        &[
            "block",
            "prefix",
            "/24s",
            "unique sources",
            "mean per /24 row",
        ],
        &table,
    );

    println!("\n-- per-/24 series (sample of each block) --");
    let max = rows.iter().map(|r| r.unique_sources).max().unwrap_or(1) as f64;
    let mut current = String::new();
    for row in rows {
        if row.block != current {
            current.clone_from(&row.block);
            println!("block {current}:");
        }
        // print /24 rows for small blocks, every 16th /16 row for Z
        let show = row.prefix.len() >= 24 || row.prefix.base().octets()[1] % 16 == 0;
        if show {
            println!(
                "  {:<20} {:>8}  {}",
                row.prefix.to_string(),
                row.unique_sources,
                bar(row.unique_sources as f64, max, 50)
            );
        }
    }

    println!("\n-- the paper's D/H/I cycle-length comparison --\n");
    let table: Vec<Vec<String>> = cycle_sums
        .iter()
        .map(|(l, s)| vec![l.clone(), format!("{s:.2}")])
        .collect();
    print_table(&["block", "Σ cycle lengths (×2^26, 3 DLLs)"], &table);
    println!(
        "\n→ H is traversed by fewer long PRNG cycles than D or I, so fewer \
         seeds ever reach it;\n  M observes nothing because its provider \
         filters the worm upstream (environmental factor)."
    );
}

fn render_fig3(probes: u64, hosts: &[SlammerHostTrace]) {
    let blocks = ims_deployment();
    for host in hosts {
        println!(
            "\n-- {}: dll={}, seed={:#010x}, cycle period {} --",
            host.name, host.dll, host.seed, host.cycle_len
        );
        println!(
            "  {} of {probes} probes landed on the telescope; per-block hits:",
            host.hist.total()
        );
        let mut per_block: Vec<(String, u64)> = blocks
            .iter()
            .map(|b| {
                let hits: u64 = host
                    .hist
                    .iter()
                    .filter(|(bucket, _)| b.prefix().contains(bucket.first_ip()))
                    .map(|(_, c)| c)
                    .sum();
                (b.label().to_owned(), hits)
            })
            .collect();
        let max = per_block.iter().map(|(_, h)| *h).max().unwrap_or(1) as f64;
        per_block.sort_by(|a, b| a.0.cmp(&b.0));
        for (label, hits) in per_block {
            println!("  {label:>2}: {hits:>9}  {}", bar(hits as f64, max, 50));
        }
    }

    println!("\n-- Figure 3(c): period of all cycles, per DLL variant --\n");
    for dll in SqlsortDll::ALL {
        let bands = cycle_bands(dll);
        let total: u64 = bands.iter().map(|b| b.num_cycles).sum();
        println!("{dll} (b = {:#010x}): {total} cycles", dll.increment());
        let rows: Vec<Vec<String>> = bands
            .iter()
            .map(|b| {
                vec![
                    b.valuation.to_string(),
                    b.num_cycles.to_string(),
                    b.cycle_length.to_string(),
                ]
            })
            .collect();
        print_table(&["valuation", "cycles", "period"], &rows);
        println!();
    }
    println!(
        "→ 64 cycles per variant, periods from 2^30 down to 1; an instance \
         on a period-1 cycle\n  hammers a single address like a targeted \
         DoS (the paper's observation)."
    );
}

// hotspots-lint: certifies(panic-free) reason="the IMS deployment literal contains every labelled block and the M prefix literal parses"
fn render_fig4(study: &CodeRedStudy, rows: &[CoverageRow], quarantines: &[QuarantineTrace]) {
    let blocks = ims_deployment();

    println!("\n-- Figure 4(a): mixed population, 15% NATed --\n");
    println!(
        "{} hosts, {} probes each, NAT fraction {:.0}%\n",
        study.hosts,
        study.probes_per_host,
        study.nat_fraction * 100.0
    );
    let mut table = Vec::new();
    let mut max_rate = 0.0f64;
    let mut rates = Vec::new();
    for (label, total) in totals_by_block(rows) {
        let block = blocks.by_label(&label).expect("label");
        let rate = total as f64 / (block.size() / 256).max(1) as f64;
        max_rate = max_rate.max(rate);
        rates.push((label, total, rate));
    }
    for (label, total, rate) in rates {
        table.push(vec![
            label,
            total.to_string(),
            format!("{rate:.2}"),
            bar(rate, max_rate, 40),
        ]);
    }
    print_table(&["block", "unique sources", "per /24", "profile"], &table);

    println!("\n-- Figure 4(b)/(c): quarantine runs --\n");
    let m_prefix: Prefix = "192.40.16.0/22".parse().expect("M prefix");
    let m_hits = |h: &CountHistogram<Bucket24>| -> u64 {
        h.iter()
            .filter(|(b, _)| m_prefix.contains(b.first_ip()))
            .map(|(_, c)| c)
            .sum()
    };
    let rows: Vec<Vec<String>> = quarantines
        .iter()
        .map(|q| {
            vec![
                q.label.clone(),
                q.probes.to_string(),
                q.hist.total().to_string(),
                m_hits(&q.hist).to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "quarantined host",
            "probes",
            "telescope hits",
            "M-block hits",
        ],
        &rows,
    );
    println!(
        "\n→ the NATed instance's /8 preference lands on public 192/8: the \
         distinct M spike of 4(a)/4(c),\n  absent from the public-host run \
         4(b) — topology (an environmental factor) shaped the hotspot."
    );
}

fn render_fig5a(study: &DetectionStudy, runs: &[HitListRun]) {
    println!(
        "\nvulnerable population {} in 47 /8s, {} seed hosts, {} scans/s\n",
        study.population_size(),
        study.seeds,
        study.scan_rate
    );

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.list_size.to_string(),
                format!("{:.2}%", 100.0 * r.coverage),
                format!("{:.1}%", 100.0 * r.final_infected),
                r.infection_curve
                    .time_to_reach(0.5 * r.coverage)
                    .map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
                r.infection_curve
                    .time_to_reach(0.9 * r.coverage)
                    .map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
            ]
        })
        .collect();
    print_table(
        &[
            "/16 prefixes",
            "pop coverage",
            "final infected",
            "t(50% of coverage)",
            "t(90% of coverage)",
        ],
        &rows,
    );

    println!("\n-- infection curves (resampled; plot these) --\n");
    for run in runs {
        print_series(&run.infection_curve, 25);
        println!();
    }
    println!(
        "→ the smallest list saturates its targets fastest (denser \
         vulnerable population);\n  larger lists reach more of the \
         population but more slowly — the paper's speed/coverage tradeoff."
    );
}

// hotspots-lint: certifies(panic-free) reason="the literal quorum fraction is in (0, 1]"
fn render_fig5b(study: &DetectionStudy, runs: &[HitListRun]) {
    println!(
        "\none /24 sensor per occupied /16, alert after {} worm payloads, \
         no false positives\n",
        study.alert_threshold
    );

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let alerted_frac = r.sensors_alerted as f64 / r.sensors as f64;
            // the paper's comparison: alert fraction when 90% of the
            // *reachable* population is infected
            let t90 = r.infection_curve.time_to_reach(0.9 * r.coverage);
            let at90 = t90.map_or(f64::NAN, |t| r.alert_curve.value_at(t));
            vec![
                r.list_size.to_string(),
                r.sensors.to_string(),
                format!("{}", r.sensors_alerted),
                format!("{:.1}%", 100.0 * alerted_frac),
                t90.map_or_else(|| "-".to_owned(), |t| format!("{t:.0}s")),
                if at90.is_nan() {
                    "-".to_owned()
                } else {
                    format!("{:.1}%", 100.0 * at90)
                },
            ]
        })
        .collect();
    print_table(
        &[
            "/16 prefixes",
            "sensors",
            "alerted (final)",
            "alerted %",
            "t(90% coverage infected)",
            "alerted % at that time",
        ],
        &rows,
    );

    println!("\n-- quorum verdicts --\n");
    let policy = QuorumPolicy::new(0.5).expect("valid quorum");
    for run in runs {
        let gap = DetectionGap::new(run.infection_curve.clone(), run.alert_curve.clone());
        println!(
            "  {:>5}-prefix list: {}",
            run.list_size,
            gap.describe(policy)
        );
    }

    println!("\n-- alert curves (resampled; plot these) --\n");
    for run in runs {
        print_series(&run.alert_curve, 25);
        println!();
    }
    println!(
        "→ narrow hit-lists leave almost every sensor silent even at full \
         infection of their targets:\n  a quorum rule over this field never \
         fires — the paper's central detection failure."
    );
}

// hotspots-lint: certifies(panic-free) reason="the literal quorum fraction is in (0, 1]"
fn render_fig5c(study: &DetectionStudy, nat_fraction: f64, runs: &[NatRun]) {
    println!(
        "\nCodeRedII-type worm, population {} ({}% NATed into 192.168/16), \
         alert threshold {}\n",
        study.population_size(),
        (nat_fraction * 100.0) as u32,
        study.alert_threshold
    );

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.placement),
                r.sensors.to_string(),
                format!(
                    "{} ({:.1}%)",
                    r.sensors_alerted,
                    100.0 * r.sensors_alerted as f64 / r.sensors.max(1) as f64
                ),
                format!("{:.1}%", 100.0 * r.alerted_at_20pct_infected),
                r.alert_curve
                    .time_to_reach(0.1)
                    .map_or_else(|| "never".to_owned(), |t| format!("{t:.0}s")),
            ]
        })
        .collect();
    print_table(
        &[
            "placement",
            "sensors",
            "alerted (final)",
            "alerted at 20% infected",
            "t(10% of sensors alerted)",
        ],
        &rows,
    );

    println!("\n-- quorum verdicts --\n");
    let policy = QuorumPolicy::new(0.5).expect("valid quorum");
    for run in runs {
        let gap = DetectionGap::new(run.infection_curve.clone(), run.alert_curve.clone());
        println!("  {:?}: {}", run.placement, gap.describe(policy));
    }

    println!("\n-- alert curves (resampled; plot these) --\n");
    for run in runs {
        print_series(&run.alert_curve, 25);
        println!();
    }
    println!(
        "→ random and even population-aware placement lag the outbreak; 255 \
         sensors inside the\n  hotspot /8 all alert before 20% of the \
         population is infected — but only because this\n  hotspot was known \
         in advance, which hotspots in general are not (the paper's \
         conclusion)."
    );
}

fn render_table1(
    drone: Ip,
    paper: &[(String, String, u64)],
    synthetic: &[(String, String, u64)],
    synthetic_commands: u64,
    restricted: u64,
) {
    let _ = drone;
    println!("\n-- commands reported in the paper --\n");
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(cmd, range, size)| {
            vec![
                cmd.clone(),
                range.clone(),
                format!("{size}"),
                format!("{:.5}%", 100.0 * *size as f64 / 2f64.powi(32)),
            ]
        })
        .collect();
    print_table(
        &[
            "bot propagation command",
            "drone scan range",
            "addresses",
            "% of IPv4",
        ],
        &rows,
    );

    let n = synthetic_commands;
    println!("\n-- synthetic capture ({n} commands, same composition) --\n");
    let sample: Vec<Vec<String>> = synthetic
        .iter()
        .take(15)
        .map(|(cmd, range, size)| vec![cmd.clone(), range.clone(), format!("{size}")])
        .collect();
    print_table(
        &["command (first 15)", "drone scan range", "addresses"],
        &sample,
    );
    println!("\n{restricted}/{n} commands restrict propagation below the full IPv4 space");
    println!(
        "→ hit-lists are in routine use; each restriction is an algorithmic \
         hotspot factor."
    );
}

fn render_table2(study: &FilteringStudy, table_rows: &[Table2Row]) {
    println!(
        "\n{} infected hosts planted per enterprise, {} per ISP; \
         CRII/Slammer probe-driven ({} probes/host), Blaster interval-exact\n",
        study.infected_per_enterprise, study.infected_per_isp, study.probes_per_host
    );

    let rows: Vec<Vec<String>> = table_rows
        .iter()
        .map(|r| {
            vec![
                r.org.clone(),
                r.kind.to_string(),
                r.total_ips.to_string(),
                r.infected_inside.to_string(),
                r.crii_observed.to_string(),
                r.slammer_observed.to_string(),
                r.blaster_observed.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "organization",
            "kind",
            "total IPs",
            "infected inside",
            "CRII IPs seen",
            "Slammer IPs seen",
            "Blaster IPs seen",
        ],
        &rows,
    );
    println!(
        "\n→ despite harboring infections, egress-filtered enterprises show \
         ~zero outward sign;\n  broadband ISPs expose their infected \
         populations nearly completely (the paper's contrast)."
    );
}

fn render_ablations(
    nat: &[(NatTopology, NatRun)],
    sensor: &[SensorModeRun],
    reboot: &[(f64, HotspotReport)],
) {
    println!("\n-- 1. NAT topology: shared 192.168/16 vs isolated home NATs --\n");
    let rows: Vec<Vec<String>> = nat
        .iter()
        .map(|(topology, run)| {
            vec![
                format!("{topology:?}"),
                run.sensors.to_string(),
                run.sensors_alerted.to_string(),
                format!("{:.1}%", 100.0 * run.alerted_at_20pct_infected),
            ]
        })
        .collect();
    print_table(
        &[
            "topology",
            "sensors in 192/8",
            "alerted (final)",
            "alerted at 20% infected",
        ],
        &rows,
    );
    println!(
        "→ the Figure 5(c) hotspot requires the NATed hosts to be mutually \
         reachable;\n  fully isolated home NATs produce no 192/8 flood \
         (the worm never reaches them)."
    );

    println!("\n-- 2. sensor mode: active (SYN-ACK responder) vs passive capture --\n");
    let rows: Vec<Vec<String>> = sensor
        .iter()
        .map(|run| {
            vec![
                run.transport.clone(),
                format!("{:?}", run.mode),
                run.alerted.to_string(),
                run.sensors.to_string(),
            ]
        })
        .collect();
    print_table(
        &["worm transport", "sensor mode", "alerted", "sensors"],
        &rows,
    );
    println!(
        "→ passive sensors are blind to TCP worms (no payload without a \
         SYN-ACK), which is exactly\n  why the IMS actively elicited \
         payloads — an instrumentation factor shaping what gets counted."
    );

    println!("\n-- 3. Blaster reboot fraction vs Figure 1 hotspot strength --\n");
    let rows: Vec<Vec<String>> = reboot
        .iter()
        .map(|(reboot_fraction, report)| {
            vec![
                format!("{:.0}%", reboot_fraction * 100.0),
                format!("{:.3}", report.gini),
                format!("{:.1}", report.max_median_ratio),
                report
                    .chi_square_p
                    .map_or_else(|| "-".into(), |p| format!("{p:.1e}")),
                if report.is_hotspot() {
                    "HOTSPOT"
                } else {
                    "uniform-ish"
                }
                .to_owned(),
            ]
        })
        .collect();
    print_table(
        &["reboot-launched", "gini", "max/median", "χ² p", "verdict"],
        &rows,
    );
    println!(
        "→ the boot-band seed collisions are the engine of Figure 1's \
         spikes: with no reboot\n  launches the per-/24 counts flatten \
         toward Poisson noise."
    );
}

// hotspots-lint: certifies(panic-free) reason="the IMS deployment literal contains every labelled block"
fn per_slash24_rates(rows: &[CoverageRow], blocks: &[AddressBlock]) -> BTreeMap<String, f64> {
    totals_by_block(rows)
        .into_iter()
        .map(|(label, total)| {
            let block = blocks.by_label(&label).expect("label");
            let rate = total as f64 / (block.size() / 256).max(1) as f64;
            (label, rate)
        })
        .collect()
}

// hotspots-lint: certifies(panic-free) reason="sensitivity trials always include the M block and non-Z blocks"
fn render_sensitivity(codered: &[CodeRedTrial], slammer: &[SlammerTrial]) {
    let trials = codered.len();
    println!("\n-- CodeRedII M spike across {trials} random placements --\n");
    let mut rows_out = Vec::new();
    for trial in codered {
        let m = trial.blocks.by_label("M").expect("M");
        let rates = per_slash24_rates(&trial.rows, &trial.blocks);
        let background: f64 = ["A", "B", "C", "D", "E", "F", "H", "I"]
            .iter()
            .map(|l| rates[*l])
            .sum::<f64>()
            / 8.0;
        rows_out.push(vec![
            trial.trial.to_string(),
            m.prefix().to_string(),
            format!("{:.2}", rates["M"]),
            format!("{background:.2}"),
            format!("{:.1}×", rates["M"] / background.max(0.05)),
        ]);
    }
    print_table(
        &[
            "trial",
            "M block placement",
            "M rate (/24)",
            "background rate",
            "spike",
        ],
        &rows_out,
    );

    println!("\n-- Slammer per-/24 spread across {trials} random placements --\n");
    let mut rows_out = Vec::new();
    for trial in slammer {
        let rates = per_slash24_rates(&trial.rows, &trial.blocks);
        let mut small: Vec<(String, f64)> = rates
            .iter()
            .filter(|(l, _)| l.as_str() != "Z")
            .map(|(l, &r)| (l.clone(), r))
            .collect();
        small.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (lo_label, lo) = small.first().expect("blocks").clone();
        let (hi_label, hi) = small.last().expect("blocks").clone();
        rows_out.push(vec![
            trial.trial.to_string(),
            format!("{lo_label} = {lo:.0}"),
            format!("{hi_label} = {hi:.0}"),
            format!("{:.1}×", hi / lo.max(1.0)),
        ]);
    }
    print_table(
        &[
            "trial",
            "quietest block (rate/24)",
            "loudest block (rate/24)",
            "spread",
        ],
        &rows_out,
    );
    println!(
        "\n→ the M spike and the cycle-driven per-block spread persist across \
         placements:\n  the conclusions are properties of the mechanisms, not \
         of where we happened to put the sensors."
    );
}
