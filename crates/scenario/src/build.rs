//! Building a validated engine-path [`ScenarioSpec`] into the concrete
//! simulation types.

use hotspots_ipspace::{Ip, Prefix};
use hotspots_netmodel::{Environment, FaultPlan, FilterRule, LatencyModel, LossModel};
use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
use hotspots_sim::{
    apply_nat, apply_nat_shared, canonical_parts, paper_codered_population,
    synthetic_codered_population, zipf_slash8_population, BlasterWorm, BotWorm, CodeRed2Worm,
    HitListWorm, LocalPreferenceWorm, Population, SimConfig, SlammerWorm, UniformWorm, WormModel,
};
use hotspots_targeting::HitList;
use hotspots_telescope::{placement, DetectorField, SensorMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{
    parse_fault, parse_filter, parse_ip, parse_preference_entry, parse_prefix, parse_service,
    PlacementSpec, PopSpec, ScenarioSpec, SpecError, TelescopeSpec, WormSpec,
};

/// Converts a spec-supplied integer to `usize`, surfacing a dotted-path
/// error instead of silently truncating on narrow platforms.
pub(crate) fn spec_usize(field: &str, v: u64) -> Result<usize, SpecError> {
    usize::try_from(v).map_err(|_| SpecError::new(field, format!("{v} is too large")))
}

/// Converts a spec-supplied integer to `u32`, surfacing a dotted-path
/// error instead of silently wrapping.
pub(crate) fn spec_u32(field: &str, v: u64) -> Result<u32, SpecError> {
    u32::try_from(v).map_err(|_| SpecError::new(field, format!("{v} exceeds 2^32 - 1")))
}

/// Resolves a thread-count setting: `0` means auto — the machine's
/// available parallelism (1 if it cannot be queried). Any other value
/// passes through, so the resolved count is always at least 1 and the
/// engine config never sees the sentinel.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Building reuses the spec-validation error type: every failure names
/// the spec field that caused it.
pub type BuildError = SpecError;

/// An engine-path scenario, built: everything [`Engine::new`] needs,
/// plus the telescope's detector field if the spec deploys one.
///
/// [`Engine::new`]: hotspots_sim::Engine::new
pub struct Built {
    /// Engine configuration.
    pub config: SimConfig,
    /// The vulnerable population (NAT already applied).
    pub population: Population,
    /// The network environment (loss, latency, filters, NAT realms).
    pub environment: Environment,
    /// The worm targeting model.
    pub worm: Box<dyn WormModel>,
    /// The telescope's detector field, if any.
    pub detector: Option<DetectorField>,
}

impl ScenarioSpec {
    /// Builds an engine-path spec into the concrete simulation types.
    /// Validates first; study-path specs are rejected (run those through
    /// [`run_spec`](crate::run::run_spec)).
    pub fn build(&self) -> Result<Built, BuildError> {
        self.validate()?;
        let worm_spec = self.worm.as_ref().ok_or_else(|| SpecError {
            field: "worm".into(),
            message: "study specs have no engine build; use run_spec".into(),
        })?;
        let pop_spec = self.population.as_ref().expect("validated engine path"); // hotspots-lint: allow(panic-path) reason="validate() guarantees the engine path carries a population spec"

        let mut environment = Environment::new();
        if let Some(loss) = self.environment.loss {
            if let Some(model) = LossModel::new(loss) {
                environment.set_loss(model);
            }
        }
        if let Some(lat) = &self.environment.latency {
            if let Some(model) = LatencyModel::new(lat.base_secs, lat.jitter_secs) {
                environment.set_latency(model);
            }
        }
        for (i, rule) in self.environment.filters.iter().enumerate() {
            let parsed = parse_filter(&format!("environment.filters[{i}]"), rule)?;
            let rule = match parsed.direction.as_str() {
                "egress" => FilterRule::egress(parsed.prefix, parsed.service),
                _ => FilterRule::ingress(parsed.prefix, parsed.service),
            };
            environment.filters_mut().push(rule);
        }
        if !self.faults.schedule.is_empty() {
            let plan: FaultPlan = self
                .faults
                .schedule
                .iter()
                .enumerate()
                .map(|(i, entry)| parse_fault(&format!("faults.schedule[{i}]"), entry))
                .collect::<Result<_, _>>()?;
            environment.set_faults(plan);
        }

        let addrs = build_addresses(pop_spec)?;
        let compressed = matches!(pop_spec, PopSpec::Zipf { store, .. } if store == "compressed");
        // Population construction surfaces duplicate addresses (and any
        // other store-build failure) as a typed spec error naming the
        // population field, instead of panicking mid-build.
        let population = match &self.environment.nat {
            Some(nat) => {
                let mut rng = StdRng::seed_from_u64(nat.seed);
                let loci = match nat.topology.as_str() {
                    "shared" => apply_nat_shared(&mut environment, &addrs, nat.fraction, &mut rng),
                    _ => apply_nat(&mut environment, &addrs, nat.fraction, &mut rng),
                };
                if compressed {
                    let (public, private) = canonical_parts(&loci);
                    Population::try_compressed_from_parts(&public, private)
                } else {
                    Population::try_from_loci(loci)
                }
            }
            None if compressed => Population::try_compressed_from_public(&addrs),
            None => Population::try_from_public(addrs),
        }
        .map_err(|e| SpecError::new("population", e.to_string()))?;

        let worm = build_worm(worm_spec)?;
        let detector = build_detector(&self.telescope)?;

        let config = SimConfig {
            scan_rate: self.sim.scan_rate,
            scan_rate_sigma: self.sim.scan_rate_sigma,
            seeds: spec_usize("sim.seeds", self.sim.seeds)?,
            dt: self.sim.dt,
            max_time: self.sim.max_time,
            stop_at_fraction: self.sim.stop_at_fraction,
            removal_rate: self.sim.removal_rate,
            rng_seed: self.sim.rng_seed,
            threads: resolve_threads(spec_usize("sim.threads", self.sim.threads)?),
            trace: self.sim.trace,
        };

        Ok(Built {
            config,
            population,
            environment,
            worm,
            detector,
        })
    }
}

fn build_addresses(pop: &PopSpec) -> Result<Vec<Ip>, SpecError> {
    match pop {
        PopSpec::Range {
            base,
            count,
            stride,
        } => {
            let base = parse_ip("population.base", base)?;
            let count = spec_u32("population.count", *count)?;
            let stride = spec_u32("population.stride", *stride)?;
            Ok((0..count)
                .map(|i| Ip::new(base.value().wrapping_add(i.wrapping_mul(stride))))
                .collect())
        }
        PopSpec::Synthetic {
            size,
            slash8s,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            Ok(synthetic_codered_population(
                spec_usize("population.size", *size)?,
                spec_usize("population.slash8s", *slash8s)?,
                &mut rng,
            ))
        }
        PopSpec::Paper { seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            Ok(paper_codered_population(&mut rng))
        }
        PopSpec::Hosts { addrs } => {
            let mut ips = addrs
                .iter()
                .map(|a| parse_ip("population.addrs", a))
                .collect::<Result<Vec<Ip>, SpecError>>()?;
            ips.sort_unstable();
            ips.dedup();
            Ok(ips)
        }
        PopSpec::Zipf {
            size,
            slash8s,
            seed,
            ..
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            Ok(zipf_slash8_population(
                spec_usize("population.size", *size)?,
                spec_usize("population.slash8s", *slash8s)?,
                &mut rng,
            ))
        }
    }
}

fn build_worm(worm: &WormSpec) -> Result<Box<dyn WormModel>, SpecError> {
    Ok(match worm {
        WormSpec::Uniform => Box::new(UniformWorm),
        WormSpec::Slammer => Box::new(SlammerWorm),
        WormSpec::CodeRed2 => Box::new(CodeRed2Worm),
        WormSpec::Blaster { hardware, model } => {
            let generation = match hardware.as_str() {
                "pentium-ii" => HardwareGeneration::PentiumIi,
                "pentium-iii" => HardwareGeneration::PentiumIii,
                _ => HardwareGeneration::PentiumIv,
            };
            let seed_model = match model.as_str() {
                "population" => SeedModel::blaster_population(generation),
                _ => SeedModel::blaster_reboot(generation),
            };
            Box::new(BlasterWorm::new(seed_model))
        }
        WormSpec::HitList { prefixes, service } => {
            let prefixes: Vec<Prefix> = prefixes
                .iter()
                .enumerate()
                .map(|(i, p)| parse_prefix(&format!("worm.prefixes[{i}]"), p))
                .collect::<Result<_, _>>()?;
            let list = HitList::new(prefixes).map_err(|e| SpecError {
                field: "worm.prefixes".into(),
                message: format!("{e:?}"),
            })?;
            let mut w = HitListWorm::new(list);
            if let Some(s) = service {
                w = w.with_service(parse_service("worm.service", s)?);
            }
            Box::new(w)
        }
        WormSpec::LocalPreference { entries, service } => {
            let entries = entries
                .iter()
                .enumerate()
                .map(|(i, e)| parse_preference_entry(&format!("worm.entries[{i}]"), e))
                .collect::<Result<Vec<_>, _>>()?;
            let mut w = LocalPreferenceWorm::new(entries);
            if let Some(s) = service {
                w = w.with_service(parse_service("worm.service", s)?);
            }
            Box::new(w)
        }
        WormSpec::Bot { command } => {
            let command = command.parse().map_err(|e| SpecError {
                field: "worm.command".into(),
                message: format!("{e}"),
            })?;
            Box::new(BotWorm::new(command))
        }
    })
}

fn build_detector(telescope: &TelescopeSpec) -> Result<Option<DetectorField>, SpecError> {
    match telescope {
        TelescopeSpec::None => Ok(None),
        TelescopeSpec::Field {
            placement: place,
            alert_threshold,
            mode,
        } => {
            let blocks = match place {
                PlacementSpec::Prefixes { prefixes } => prefixes
                    .iter()
                    .enumerate()
                    .map(|(i, p)| parse_prefix(&format!("telescope.placement.prefixes[{i}]"), p))
                    .collect::<Result<Vec<_>, _>>()?,
                PlacementSpec::Random { sensors, seed } => {
                    let mut rng = StdRng::seed_from_u64(*seed);
                    placement::random_slash24s(
                        spec_usize("telescope.placement.sensors", *sensors)?,
                        &[],
                        &mut rng,
                    )
                }
            };
            let mode = match mode.as_str() {
                "passive" => SensorMode::Passive,
                _ => SensorMode::Active,
            };
            Ok(Some(DetectorField::with_mode(
                blocks,
                *alert_threshold,
                mode,
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EnvSpec, LatencySpec, NatSpec, SimSpec};
    use hotspots_netmodel::Locus;

    fn base_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("build-test");
        spec.worm = Some(WormSpec::Uniform);
        spec.population = Some(PopSpec::Range {
            base: "11.11.0.0".into(),
            count: 100,
            stride: 1,
        });
        spec.sim = SimSpec {
            max_time: 10.0,
            seeds: 5,
            ..SimSpec::default()
        };
        spec
    }

    #[test]
    fn range_population_builds() {
        let built = base_spec().build().unwrap();
        assert_eq!(built.population.len(), 100);
        assert_eq!(
            built.population.locus(1),
            Locus::Public(Ip::from_octets(11, 11, 0, 1))
        );
        assert!(built.detector.is_none());
        assert_eq!(built.config.seeds, 5);
    }

    #[test]
    fn nat_moves_hosts_into_realms() {
        let mut spec = base_spec();
        spec.environment = EnvSpec {
            nat: Some(NatSpec {
                fraction: 1.0,
                topology: "isolated".into(),
                seed: 7,
            }),
            ..EnvSpec::default()
        };
        let built = spec.build().unwrap();
        assert!((0..built.population.len())
            .all(|i| matches!(built.population.locus(i), Locus::Private { .. })));
        assert_eq!(built.environment.realm_count(), 100);
    }

    #[test]
    fn environment_knobs_apply() {
        let mut spec = base_spec();
        spec.environment = EnvSpec {
            loss: Some(0.25),
            latency: Some(LatencySpec {
                base_secs: 0.5,
                jitter_secs: 1.0,
            }),
            filters: vec!["egress 11.11.0.0/24 *".into()],
            nat: None,
        };
        let built = spec.build().unwrap();
        assert_eq!(built.environment.loss().rate(), 0.25);
        assert_eq!(built.environment.latency().base_secs(), 0.5);
        assert_eq!(built.environment.filters().rules().len(), 1);
    }

    #[test]
    fn every_worm_kind_builds() {
        let worms = [
            WormSpec::Uniform,
            WormSpec::Slammer,
            WormSpec::CodeRed2,
            WormSpec::Blaster {
                hardware: "pentium-iv".into(),
                model: "reboot".into(),
            },
            WormSpec::HitList {
                prefixes: vec!["11.11.0.0/16".into()],
                service: Some("udp/1434".into()),
            },
            WormSpec::LocalPreference {
                entries: vec!["255.0.0.0*4".into(), "0.0.0.0*1".into()],
                service: None,
            },
        ];
        for worm in worms {
            let mut spec = base_spec();
            spec.worm = Some(worm.clone());
            let built = spec.build().unwrap_or_else(|e| panic!("{worm:?}: {e}"));
            // The generator must be constructible for an arbitrary host.
            let _ = built.worm.generator(built.population.locus(0), 0x1234_5678);
        }
    }

    #[test]
    fn detector_placements_build() {
        let mut spec = base_spec();
        spec.telescope = TelescopeSpec::Field {
            placement: PlacementSpec::Prefixes {
                prefixes: vec!["66.66.0.0/24".into(), "66.66.16.0/24".into()],
            },
            alert_threshold: 3,
            mode: "passive".into(),
        };
        let built = spec.build().unwrap();
        let det = built.detector.unwrap();
        assert_eq!(det.len(), 2);
        assert_eq!(det.threshold(), 3);
        assert_eq!(det.mode(), SensorMode::Passive);

        let mut spec = base_spec();
        spec.telescope = TelescopeSpec::Field {
            placement: PlacementSpec::Random {
                sensors: 10,
                seed: 9,
            },
            alert_threshold: 5,
            mode: "active".into(),
        };
        let det = spec.build().unwrap().detector.unwrap();
        assert_eq!(det.len(), 10);
    }

    #[test]
    fn build_errors_name_fields() {
        let mut spec = base_spec();
        spec.study = None;
        spec.worm = None;
        let err = match spec.build() {
            Ok(_) => panic!("wormless engine spec must not build"),
            Err(e) => e,
        };
        assert_eq!(err.field, "worm");
    }
}
