//! The tiny command-line parser shared by the `hotspots` CLI and every
//! experiment binary.
//!
//! Experiment binaries historically scanned `argv` for `--quick` and
//! silently ignored everything else, so typos like `--quik` ran the
//! full paper-scale experiment. [`parse_flags`] is strict: unknown
//! flags are errors, and every binary gets `--help` for free.

use std::fmt;

/// Experiment scale, selected by the `--quick` command-line flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale for smoke runs (seconds).
    Quick,
    /// Paper scale (may take minutes).
    Paper,
}

impl Scale {
    /// Parses the process arguments strictly: `--quick`/`-q` selects
    /// [`Scale::Quick`], `--paper` is the explicit default, `--help`/`-h`
    /// prints usage and exits, anything else is an error (printed to
    /// stderr; the process exits with status 2).
    pub fn from_args() -> Scale {
        let spec = experiment_flags();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let binary = std::env::args().next().unwrap_or_else(|| "binary".into());
        match parse_flags(&args, &spec) {
            Ok(parsed) => {
                if parsed.has("help") {
                    print!("{}", usage(&binary, &spec, ""));
                    std::process::exit(0);
                }
                if !parsed.positional.is_empty() {
                    eprintln!(
                        "error: unexpected argument {:?}\n\n{}",
                        parsed.positional[0],
                        usage(&binary, &spec, "")
                    );
                    std::process::exit(2);
                }
                if parsed.has("quick") {
                    Scale::Quick
                } else {
                    Scale::Paper
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage(&binary, &spec, ""));
                std::process::exit(2);
            }
        }
    }

    /// Picks `quick` or `paper` by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// The scale's name as echoed in run reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// One accepted flag.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Long name without dashes (`"quick"`).
    pub name: &'static str,
    /// Optional short form without dash (`"q"`).
    pub short: Option<&'static str>,
    /// Whether the flag takes a value (`--report out.jsonl`).
    pub takes_value: bool,
    /// One-line help text.
    pub help: &'static str,
}

/// The flags every experiment binary accepts.
pub fn experiment_flags() -> Vec<FlagSpec> {
    vec![
        FlagSpec {
            name: "quick",
            short: Some("q"),
            takes_value: false,
            help: "reduced scale (seconds instead of minutes)",
        },
        FlagSpec {
            name: "paper",
            short: None,
            takes_value: false,
            help: "full paper scale (the default)",
        },
        FlagSpec {
            name: "help",
            short: Some("h"),
            takes_value: false,
            help: "print this help",
        },
    ]
}

/// Parsed command line: positional arguments plus recognized flags.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl ParsedArgs {
    /// Whether `name` (long form) was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The value of `name`, if the flag was given with one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

/// A rejected command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` against `spec`. Unknown flags are errors; `--flag=value`
/// and `--flag value` are both accepted for value-taking flags.
pub fn parse_flags(args: &[String], spec: &[FlagSpec]) -> Result<ParsedArgs, ArgError> {
    let mut out = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if !arg.starts_with('-') || arg == "-" {
            out.positional.push(arg.clone());
            continue;
        }
        let (name_part, inline_value) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_owned())),
            None => (arg.as_str(), None),
        };
        let flag = spec.iter().find(|f| {
            name_part.strip_prefix("--") == Some(f.name)
                || (name_part.len() == 2 && name_part.strip_prefix('-') == f.short)
        });
        let Some(flag) = flag else {
            return Err(ArgError(format!("unrecognized flag {arg:?}")));
        };
        let value = if flag.takes_value {
            match inline_value {
                Some(v) => Some(v),
                None => match iter.next() {
                    Some(v) => Some(v.clone()),
                    None => {
                        return Err(ArgError(format!("flag --{} needs a value", flag.name)));
                    }
                },
            }
        } else {
            if inline_value.is_some() {
                return Err(ArgError(format!("flag --{} takes no value", flag.name)));
            }
            None
        };
        out.flags.push((flag.name.to_owned(), value));
    }
    Ok(out)
}

/// Renders a usage message for `binary` over `spec`. `extra` (possibly
/// empty) is appended verbatim — subcommand summaries, examples.
pub fn usage(binary: &str, spec: &[FlagSpec], extra: &str) -> String {
    let binary = binary.rsplit('/').next().unwrap_or(binary);
    let mut out = format!("usage: {binary} [flags]\n\nflags:\n");
    for f in spec {
        let short = f.short.map(|s| format!("-{s}, ")).unwrap_or_default();
        let value = if f.takes_value { " <value>" } else { "" };
        out.push_str(&format!(
            "  {:<26} {}\n",
            format!("{short}--{}{value}", f.name),
            f.help
        ));
    }
    if !extra.is_empty() {
        out.push('\n');
        out.push_str(extra);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn known_flags_parse() {
        let spec = experiment_flags();
        let p = parse_flags(&args(&["--quick"]), &spec).unwrap();
        assert!(p.has("quick"));
        let p = parse_flags(&args(&["-q"]), &spec).unwrap();
        assert!(p.has("quick"));
        let p = parse_flags(&args(&[]), &spec).unwrap();
        assert!(!p.has("quick") && p.positional.is_empty());
    }

    #[test]
    fn unknown_flags_are_errors() {
        let spec = experiment_flags();
        assert!(parse_flags(&args(&["--quik"]), &spec).is_err());
        assert!(parse_flags(&args(&["-x"]), &spec).is_err());
        assert!(parse_flags(&args(&["--quick=yes"]), &spec).is_err());
    }

    #[test]
    fn value_flags_accept_both_forms() {
        let spec = vec![FlagSpec {
            name: "report",
            short: None,
            takes_value: true,
            help: "",
        }];
        let p = parse_flags(&args(&["--report", "out.jsonl"]), &spec).unwrap();
        assert_eq!(p.value("report"), Some("out.jsonl"));
        let p = parse_flags(&args(&["--report=out.jsonl"]), &spec).unwrap();
        assert_eq!(p.value("report"), Some("out.jsonl"));
        assert!(parse_flags(&args(&["--report"]), &spec).is_err());
    }

    #[test]
    fn positionals_pass_through() {
        let spec = experiment_flags();
        let p = parse_flags(&args(&["fig2", "--quick"]), &spec).unwrap();
        assert_eq!(p.positional, vec!["fig2"]);
    }

    #[test]
    fn usage_mentions_every_flag() {
        let text = usage("fig1_blaster", &experiment_flags(), "");
        for f in experiment_flags() {
            assert!(text.contains(f.name), "usage missing --{}", f.name);
        }
    }
}
