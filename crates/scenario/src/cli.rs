//! The tiny command-line parser shared by the `hotspots` CLI and every
//! experiment binary.
//!
//! Experiment binaries historically scanned `argv` for `--quick` and
//! silently ignored everything else, so typos like `--quik` ran the
//! full paper-scale experiment. [`parse_flags`] is strict: unknown
//! flags are errors, and every binary gets `--help` for free.

use std::fmt;

/// Experiment scale, selected by the `--quick` command-line flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale for smoke runs (seconds).
    Quick,
    /// Paper scale (may take minutes).
    Paper,
}

impl Scale {
    /// Parses the process arguments strictly: `--quick`/`-q` selects
    /// [`Scale::Quick`], `--paper` is the explicit default, `--help`/`-h`
    /// prints usage and exits, anything else is an error (printed to
    /// stderr; the process exits with status 2).
    pub fn from_args() -> Scale {
        let spec = experiment_flags();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let binary = std::env::args().next().unwrap_or_else(|| "binary".into());
        match parse_flags(&args, &spec) {
            Ok(parsed) => {
                if parsed.has("help") {
                    print!("{}", usage(&binary, &spec, ""));
                    std::process::exit(0);
                }
                if !parsed.positional.is_empty() {
                    eprintln!(
                        "error: unexpected argument {:?}\n\n{}",
                        parsed.positional[0],
                        usage(&binary, &spec, "")
                    );
                    std::process::exit(2);
                }
                match Scale::from_parsed(&parsed) {
                    Ok(scale) => scale,
                    Err(e) => {
                        eprintln!("error: {e}\n\n{}", usage(&binary, &spec, ""));
                        std::process::exit(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage(&binary, &spec, ""));
                std::process::exit(2);
            }
        }
    }

    /// Resolves the scale from already-parsed flags: `--quick` selects
    /// [`Scale::Quick`], `--paper` (or neither) selects [`Scale::Paper`],
    /// and giving both is an error — they contradict each other.
    pub fn from_parsed(parsed: &ParsedArgs) -> Result<Scale, ArgError> {
        if parsed.has("quick") && parsed.has("paper") {
            return Err(ArgError(
                "--quick and --paper are mutually exclusive".to_owned(),
            ));
        }
        Ok(if parsed.has("quick") {
            Scale::Quick
        } else {
            Scale::Paper
        })
    }

    /// Picks `quick` or `paper` by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// The scale's name as echoed in run reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// One accepted flag.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Long name without dashes (`"quick"`).
    pub name: &'static str,
    /// Optional short form without dash (`"q"`).
    pub short: Option<&'static str>,
    /// Whether the flag takes a value (`--report out.jsonl`).
    pub takes_value: bool,
    /// Whether the flag may be given more than once (every occurrence
    /// is kept, in order — see [`ParsedArgs::values`]). Repeating a
    /// non-repeatable flag is an error rather than a silent
    /// first-one-wins.
    pub repeatable: bool,
    /// One-line help text.
    pub help: &'static str,
}

/// The flags every experiment binary accepts.
pub fn experiment_flags() -> Vec<FlagSpec> {
    vec![
        FlagSpec {
            name: "quick",
            short: Some("q"),
            takes_value: false,
            repeatable: false,
            help: "reduced scale (seconds instead of minutes)",
        },
        FlagSpec {
            name: "paper",
            short: None,
            takes_value: false,
            repeatable: false,
            help: "full paper scale (the default)",
        },
        FlagSpec {
            name: "help",
            short: Some("h"),
            takes_value: false,
            repeatable: false,
            help: "print this help",
        },
    ]
}

/// Parsed command line: positional arguments plus recognized flags.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl ParsedArgs {
    /// Whether `name` (long form) was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The value of `name`, if the flag was given with one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of `name`, in command-line order — the accessor for
    /// repeatable flags like the sweep CLI's `--param`.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }
}

/// A rejected command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(String);

impl ArgError {
    /// An argument-rejection error with the given message. Front-ends
    /// use this to report flag *values* they reject (the parser itself
    /// only rejects flag *shapes*) through the same typed exit path.
    pub fn new(message: impl Into<String>) -> ArgError {
        ArgError(message.into())
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` against `spec`. Unknown flags are errors; `--flag=value`
/// and `--flag value` are both accepted for value-taking flags.
pub fn parse_flags(args: &[String], spec: &[FlagSpec]) -> Result<ParsedArgs, ArgError> {
    let mut out = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if !arg.starts_with('-') || arg == "-" {
            out.positional.push(arg.clone());
            continue;
        }
        let (name_part, inline_value) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_owned())),
            None => (arg.as_str(), None),
        };
        let flag = spec.iter().find(|f| {
            name_part.strip_prefix("--") == Some(f.name)
                || (name_part.len() == 2 && name_part.strip_prefix('-') == f.short)
        });
        let Some(flag) = flag else {
            return Err(ArgError(format!("unrecognized flag {arg:?}")));
        };
        let value = if flag.takes_value {
            match inline_value {
                Some(v) => Some(v),
                None => match iter.next() {
                    Some(v) => Some(v.clone()),
                    None => {
                        return Err(ArgError(format!("flag --{} needs a value", flag.name)));
                    }
                },
            }
        } else {
            if inline_value.is_some() {
                return Err(ArgError(format!("flag --{} takes no value", flag.name)));
            }
            None
        };
        if !flag.repeatable && out.has(flag.name) {
            return Err(ArgError(format!(
                "flag --{} given more than once",
                flag.name
            )));
        }
        out.flags.push((flag.name.to_owned(), value));
    }
    Ok(out)
}

/// Renders a usage message for `binary` over `spec`. `extra` (possibly
/// empty) is appended verbatim — subcommand summaries, examples.
pub fn usage(binary: &str, spec: &[FlagSpec], extra: &str) -> String {
    let binary = binary.rsplit('/').next().unwrap_or(binary);
    let mut out = format!("usage: {binary} [flags]\n\nflags:\n");
    for f in spec {
        let short = f.short.map(|s| format!("-{s}, ")).unwrap_or_default();
        let value = if f.takes_value { " <value>" } else { "" };
        out.push_str(&format!(
            "  {:<26} {}\n",
            format!("{short}--{}{value}", f.name),
            f.help
        ));
    }
    if !extra.is_empty() {
        out.push('\n');
        out.push_str(extra);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn known_flags_parse() {
        let spec = experiment_flags();
        let p = parse_flags(&args(&["--quick"]), &spec).unwrap();
        assert!(p.has("quick"));
        let p = parse_flags(&args(&["-q"]), &spec).unwrap();
        assert!(p.has("quick"));
        let p = parse_flags(&args(&[]), &spec).unwrap();
        assert!(!p.has("quick") && p.positional.is_empty());
    }

    #[test]
    fn unknown_flags_are_errors() {
        let spec = experiment_flags();
        assert!(parse_flags(&args(&["--quik"]), &spec).is_err());
        assert!(parse_flags(&args(&["-x"]), &spec).is_err());
        assert!(parse_flags(&args(&["--quick=yes"]), &spec).is_err());
    }

    #[test]
    fn value_flags_accept_both_forms() {
        let spec = vec![FlagSpec {
            name: "report",
            short: None,
            takes_value: true,
            repeatable: false,
            help: "",
        }];
        let p = parse_flags(&args(&["--report", "out.jsonl"]), &spec).unwrap();
        assert_eq!(p.value("report"), Some("out.jsonl"));
        let p = parse_flags(&args(&["--report=out.jsonl"]), &spec).unwrap();
        assert_eq!(p.value("report"), Some("out.jsonl"));
        assert!(parse_flags(&args(&["--report"]), &spec).is_err());
    }

    #[test]
    fn repeatable_flags_append_in_order() {
        let spec = vec![FlagSpec {
            name: "param",
            short: None,
            takes_value: true,
            repeatable: true,
            help: "",
        }];
        let p = parse_flags(&args(&["--param", "a=1", "--param=b=2"]), &spec).unwrap();
        assert_eq!(p.values("param"), vec!["a=1", "b=2"]);
        // `value` keeps its first-occurrence contract for single-use callers
        assert_eq!(p.value("param"), Some("a=1"));
    }

    #[test]
    fn repeated_scalar_flag_is_an_error_naming_the_flag() {
        let spec = vec![
            FlagSpec {
                name: "threads",
                short: None,
                takes_value: true,
                repeatable: false,
                help: "",
            },
            FlagSpec {
                name: "quick",
                short: Some("q"),
                takes_value: false,
                repeatable: false,
                help: "",
            },
        ];
        let err = parse_flags(&args(&["--threads", "2", "--threads", "4"]), &spec).unwrap_err();
        assert!(err.to_string().contains("--threads"), "got: {err}");
        let err = parse_flags(&args(&["--quick", "-q"]), &spec).unwrap_err();
        assert!(err.to_string().contains("--quick"), "got: {err}");
    }

    #[test]
    fn quick_and_paper_together_are_rejected() {
        let spec = experiment_flags();
        let p = parse_flags(&args(&["--quick", "--paper"]), &spec).unwrap();
        let err = Scale::from_parsed(&p).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "got: {err}");
        let p = parse_flags(&args(&["--paper"]), &spec).unwrap();
        assert_eq!(Scale::from_parsed(&p).unwrap(), Scale::Paper);
        let p = parse_flags(&args(&["--quick"]), &spec).unwrap();
        assert_eq!(Scale::from_parsed(&p).unwrap(), Scale::Quick);
    }

    #[test]
    fn positionals_pass_through() {
        let spec = experiment_flags();
        let p = parse_flags(&args(&["fig2", "--quick"]), &spec).unwrap();
        assert_eq!(p.positional, vec!["fig2"]);
    }

    #[test]
    fn usage_mentions_every_flag() {
        let text = usage("fig1_blaster", &experiment_flags(), "");
        for f in experiment_flags() {
            assert!(text.contains(f.name), "usage missing --{}", f.name);
        }
    }
}
