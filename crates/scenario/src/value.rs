//! The dynamic value tree behind spec (de)serialization.
//!
//! Hand-rolled on purpose, like the telemetry crate's JSON: the build
//! environment has no registry access, so the vendored `serde` is a
//! marker-trait stub. [`Value`] is the small common model both the TOML
//! and JSON codecs target; [`ScenarioSpec`](crate::ScenarioSpec)
//! converts itself to and from it.
//!
//! The TOML dialect is the subset the spec schema needs — `[section]`
//! and `[section.sub]` headers, `key = value` pairs, strings, integers,
//! floats, booleans, and single-line arrays — with `#` comments.
//! Emission is deterministic (insertion order), so spec → TOML → spec
//! round-trips byte-stably.

use std::fmt;

/// A dynamically typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A float. Emitted with a decimal point so it re-parses as a float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array (possibly heterogeneous, e.g. `[10, 100, "full"]`).
    Array(Vec<Value>),
    /// A key → value table, in insertion order.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(Vec::new())
    }

    /// Member lookup on tables.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts (or replaces) `key` in a table. No-op on non-tables.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Table(entries) = self {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_owned(), value));
            }
        }
    }

    /// Looks up a dotted path (`"sim.scan_rate"`).
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Sets a dotted path, creating intermediate tables as needed.
    /// Fails if a non-leaf path component is present but not a table.
    pub fn set_path(&mut self, path: &str, value: Value) -> Result<(), String> {
        let mut cur = self;
        let parts: Vec<&str> = path.split('.').collect();
        for (i, part) in parts.iter().enumerate() {
            if i + 1 == parts.len() {
                match cur {
                    Value::Table(_) => {
                        cur.set(part, value);
                        return Ok(());
                    }
                    _ => return Err(format!("path {path:?}: parent of {part:?} is not a table")),
                }
            }
            let is_table = matches!(cur, Value::Table(_));
            if !is_table {
                return Err(format!("path {path:?}: component {part:?} is not a table"));
            }
            if cur.get(part).is_none() {
                cur.set(part, Value::table());
            }
            let Value::Table(entries) = cur else {
                unreachable!()
            };
            cur = entries
                .iter_mut()
                .find(|(k, _)| k == *part)
                .map(|(_, v)| v)
                .expect("just inserted"); // hotspots-lint: allow(panic-path) reason="entry inserted on the previous line"
        }
        Err(format!("path {path:?} is empty"))
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the value's type, used in validation errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

impl fmt::Display for Value {
    /// Human-oriented display: strings print bare (no quotes), every
    /// other shape as its inline TOML literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => {
                let mut out = String::new();
                write_inline(&mut out, other);
                f.write_str(&out)
            }
        }
    }
}

/// Formats a float so it re-parses as a float (`7` becomes `7.0`).
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

/// Emits `s` as a quoted string literal in the escape set shared by
/// the TOML and JSON writers: `"`/`\` and the C0 controls
/// (U+0000–U+001F, covering newline/tab in `meta` descriptions) can
/// never reach the output raw, and scalars above the Basic
/// Multilingual Plane emit as UTF-16 surrogate pairs — so writer
/// output always re-parses, byte-identically, through
/// [`Scanner::parse_string`] on both the TOML and JSON paths.
fn write_toml_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c if (c as u32) > 0xFFFF => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{unit:04X}"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_inline(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => write_toml_str(out, s),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        // never reached from emit_table (which filters tables into
        // [sections]); used by Display for stray table values
        Value::Table(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(key);
                out.push_str(" = ");
                write_inline(out, item);
            }
            out.push('}');
        }
    }
}

fn emit_table(out: &mut String, prefix: &str, entries: &[(String, Value)]) {
    // scalars first (they belong to this section), subtables after
    for (key, value) in entries {
        if !matches!(value, Value::Table(_)) {
            out.push_str(key);
            out.push_str(" = ");
            write_inline(out, value);
            out.push('\n');
        }
    }
    for (key, value) in entries {
        if let Value::Table(sub) = value {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            out.push_str(&format!("\n[{path}]\n"));
            emit_table(out, &path, sub);
        }
    }
}

/// Serializes a table value as TOML.
///
/// # Panics
///
/// Panics if `value` is not a [`Value::Table`] (specs always are).
pub fn to_toml(value: &Value) -> String {
    let Value::Table(entries) = value else {
        panic!("top-level TOML value must be a table"); // hotspots-lint: allow(panic-path) reason="documented API contract: top-level specs are tables"
    };
    let mut out = String::new();
    emit_table(&mut out, "", entries);
    out
}

/// A TOML parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

struct Scanner<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.bump();
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        let line = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return err(line, "unterminated string"),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => s.push(self.unicode_escape(line)?),
                    _ => return err(line, "unknown escape"),
                },
                Some(c) => s.push(c),
            }
        }
    }

    /// Four hex digits of a `\u` escape, as a UTF-16 code unit.
    fn hex4(&mut self, line: usize) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            match self.bump().and_then(|c| c.to_digit(16)) {
                Some(d) => code = code * 16 + d,
                None => return err(line, "bad \\u escape (expected 4 hex digits)"),
            }
        }
        Ok(code)
    }

    /// Decodes one `\u` escape (the `\u` itself already consumed).
    /// A BMP scalar stands alone; a lead surrogate must be followed by
    /// a `\u`-escaped trail surrogate (UTF-16 pair decoding); a lone
    /// surrogate of either kind is an error, never a mangled char.
    fn unicode_escape(&mut self, line: usize) -> Result<char, ParseError> {
        let hi = self.hex4(line)?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return err(line, format!("lone trail surrogate \\u{hi:04X}"));
        }
        let code = if (0xD800..=0xDBFF).contains(&hi) {
            if !(self.bump() == Some('\\') && self.bump() == Some('u')) {
                return err(
                    line,
                    format!(
                        "lone lead surrogate \\u{hi:04X} \
                         (expected a \\u-escaped trail surrogate)"
                    ),
                );
            }
            let lo = self.hex4(line)?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return err(
                    line,
                    format!("bad surrogate pair \\u{hi:04X}\\u{lo:04X} (trail not in DC00-DFFF)"),
                );
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        match char::from_u32(code) {
            Some(c) => Ok(c),
            None => err(line, format!("bad codepoint {code:#x} in \\u escape")),
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, ParseError> {
        let line = self.line;
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            return Ok(Value::Array(items));
                        }
                        Some(',') => {
                            self.bump();
                        }
                        None | Some('\n') => return err(line, "unterminated array"),
                        _ => items.push(self.parse_scalar()?),
                    }
                }
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '-' || c == '+' || c == '.' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(c) if c.is_ascii_alphanumeric() || "+-._".contains(c)
                ) {
                    self.bump();
                }
                let word = &self.text[start..self.pos];
                match word {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => {
                        let plain = word.replace('_', "");
                        if let Some(hex) = plain.strip_prefix("0x") {
                            if let Ok(i) = i64::from_str_radix(hex, 16) {
                                return Ok(Value::Int(i));
                            }
                        }
                        if let Ok(i) = plain.parse::<i64>() {
                            Ok(Value::Int(i))
                        } else if let Ok(f) = plain.parse::<f64>() {
                            Ok(Value::Float(f))
                        } else {
                            err(line, format!("cannot parse value {word:?}"))
                        }
                    }
                }
            }
            other => err(line, format!("unexpected {other:?} in value position")),
        }
    }
}

/// Parses the supported TOML subset into a [`Value::Table`].
pub fn from_toml(text: &str) -> Result<Value, ParseError> {
    let mut root = Value::table();
    let mut section = String::new();
    let mut scanner = Scanner {
        text,
        pos: 0,
        line: 1,
    };
    loop {
        scanner.skip_ws();
        match scanner.peek() {
            None => return Ok(root),
            Some('\n') => {
                scanner.bump();
            }
            Some('#') => {
                while !matches!(scanner.peek(), None | Some('\n')) {
                    scanner.bump();
                }
            }
            Some('[') => {
                let line = scanner.line;
                scanner.bump();
                let start = scanner.pos;
                while !matches!(scanner.peek(), None | Some(']' | '\n')) {
                    scanner.bump();
                }
                if scanner.peek() != Some(']') {
                    return err(line, "unterminated [section] header");
                }
                let name = scanner.text[start..scanner.pos].trim().to_owned();
                scanner.bump();
                if name.is_empty() || name.starts_with("[") {
                    return err(line, "empty or array-of-tables section header");
                }
                // ensure the table exists even if the section is empty
                root.set_path(&name, Value::table())
                    .map_err(|m| ParseError { line, message: m })?;
                section = name;
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let line = scanner.line;
                let start = scanner.pos;
                while matches!(
                    scanner.peek(),
                    Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-'
                ) {
                    scanner.bump();
                }
                let key = scanner.text[start..scanner.pos].to_owned();
                scanner.skip_ws();
                if scanner.peek() != Some('=') {
                    return err(line, format!("expected '=' after key {key:?}"));
                }
                scanner.bump();
                let value = scanner.parse_scalar()?;
                scanner.skip_ws();
                if let Some('#') = scanner.peek() {
                    while !matches!(scanner.peek(), None | Some('\n')) {
                        scanner.bump();
                    }
                }
                if !matches!(scanner.peek(), None | Some('\n')) {
                    return err(line, format!("trailing input after value for {key:?}"));
                }
                let path = if section.is_empty() {
                    key
                } else {
                    format!("{section}.{key}")
                };
                root.set_path(&path, value)
                    .map_err(|m| ParseError { line, message: m })?;
            }
            Some(c) => return err(scanner.line, format!("unexpected character {c:?}")),
        }
    }
}

/// Serializes a value as compact JSON (insertion order preserved).
pub fn to_json(value: &Value) -> String {
    let mut out = String::new();
    write_json(&mut out, value);
    out
}

fn write_json(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => write_toml_str(out, s), // same escape set
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Value::Table(entries) => {
            out.push('{');
            for (i, (key, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_toml_str(out, key);
                out.push(':');
                write_json(out, v);
            }
            out.push('}');
        }
    }
}

/// Parses JSON into a [`Value`] (objects become tables).
pub fn from_json(text: &str) -> Result<Value, ParseError> {
    let mut scanner = Scanner {
        text,
        pos: 0,
        line: 1,
    };
    let value = parse_json_value(&mut scanner)?;
    skip_json_ws(&mut scanner);
    if scanner.peek().is_some() {
        return err(scanner.line, "trailing input after JSON value");
    }
    Ok(value)
}

fn skip_json_ws(s: &mut Scanner<'_>) {
    while matches!(s.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        s.bump();
    }
}

fn parse_json_value(s: &mut Scanner<'_>) -> Result<Value, ParseError> {
    skip_json_ws(s);
    let line = s.line;
    match s.peek() {
        Some('"') => Ok(Value::Str(s.parse_string()?)),
        Some('{') => {
            s.bump();
            let mut entries = Vec::new();
            loop {
                skip_json_ws(s);
                match s.peek() {
                    Some('}') => {
                        s.bump();
                        return Ok(Value::Table(entries));
                    }
                    Some(',') => {
                        s.bump();
                    }
                    Some('"') => {
                        let key = s.parse_string()?;
                        skip_json_ws(s);
                        if s.peek() != Some(':') {
                            return err(s.line, format!("expected ':' after key {key:?}"));
                        }
                        s.bump();
                        entries.push((key, parse_json_value(s)?));
                    }
                    _ => return err(line, "bad object member"),
                }
            }
        }
        Some('[') => {
            s.bump();
            let mut items = Vec::new();
            loop {
                skip_json_ws(s);
                match s.peek() {
                    Some(']') => {
                        s.bump();
                        return Ok(Value::Array(items));
                    }
                    Some(',') => {
                        s.bump();
                    }
                    None => return err(line, "unterminated array"),
                    _ => items.push(parse_json_value(s)?),
                }
            }
        }
        Some(c) if c == 't' || c == 'f' || c == 'n' || c == '-' || c.is_ascii_digit() => {
            let start = s.pos;
            while matches!(
                s.peek(),
                Some(c) if c.is_ascii_alphanumeric() || "+-.".contains(c)
            ) {
                s.bump();
            }
            match &s.text[start..s.pos] {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                "null" => err(line, "null is not a spec value"),
                word => {
                    if let Ok(i) = word.parse::<i64>() {
                        Ok(Value::Int(i))
                    } else if let Ok(f) = word.parse::<f64>() {
                        Ok(Value::Float(f))
                    } else {
                        err(line, format!("cannot parse {word:?}"))
                    }
                }
            }
        }
        other => err(line, format!("unexpected {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_like() -> Value {
        let mut v = Value::table();
        v.set("name", Value::Str("fig-x".into()));
        let mut sim = Value::table();
        sim.set("scan_rate", Value::Float(10.0));
        sim.set("seeds", Value::Int(25));
        sim.set("stop", Value::Bool(true));
        sim.set(
            "sizes",
            Value::Array(vec![
                Value::Int(10),
                Value::Int(100),
                Value::Str("full".into()),
            ]),
        );
        v.set("sim", sim);
        v
    }

    #[test]
    fn toml_round_trips() {
        let v = spec_like();
        let text = to_toml(&v);
        let back = from_toml(&text).expect("parse emitted TOML");
        assert_eq!(v, back, "emitted:\n{text}");
        // and emission is stable
        assert_eq!(to_toml(&back), text);
    }

    #[test]
    fn json_round_trips() {
        let v = spec_like();
        let back = from_json(&to_json(&v)).expect("parse emitted JSON");
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut v = Value::table();
        v.set("x", Value::Float(7.0));
        let back = from_toml(&to_toml(&v)).unwrap();
        assert_eq!(back.get("x"), Some(&Value::Float(7.0)));
    }

    #[test]
    fn hex_and_underscored_ints_parse() {
        let v = from_toml("seed = 0x4d53_2006\nbig = 1_000_000\n").unwrap();
        assert_eq!(v.get("seed").unwrap().as_int(), Some(0x4d53_2006));
        assert_eq!(v.get("big").unwrap().as_int(), Some(1_000_000));
    }

    #[test]
    fn sections_nest() {
        let v = from_toml("[a]\nx = 1\n[a.b]\ny = 2\n").unwrap();
        assert_eq!(v.get_path("a.x").unwrap().as_int(), Some(1));
        assert_eq!(v.get_path("a.b.y").unwrap().as_int(), Some(2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_toml("x = 1\ny ==\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = from_toml("x = @\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn set_path_creates_and_rejects() {
        let mut v = Value::table();
        v.set_path("a.b.c", Value::Int(3)).unwrap();
        assert_eq!(v.get_path("a.b.c").unwrap().as_int(), Some(3));
        v.set("leaf", Value::Int(1));
        assert!(v.set_path("leaf.x", Value::Int(2)).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let v = from_toml("# header\n\nx = 1 # trailing\n").unwrap();
        assert_eq!(v.get("x").unwrap().as_int(), Some(1));
    }

    #[test]
    fn non_bmp_strings_round_trip_as_surrogate_pairs() {
        let mut v = Value::table();
        v.set("s", Value::Str("emoji \u{1F600}, clef \u{1D11E}".into()));
        let toml = to_toml(&v);
        assert!(toml.is_ascii(), "non-BMP must escape to ASCII: {toml}");
        assert!(toml.contains("\\uD83D\\uDE00"), "got: {toml}");
        assert_eq!(from_toml(&toml).unwrap(), v);
        let json = to_json(&v);
        assert!(json.is_ascii(), "got: {json}");
        assert_eq!(from_json(&json).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_are_typed_errors() {
        for bad in [
            "s = \"\\uD800\"",
            "s = \"\\uDC00\"",
            "s = \"\\uD800\\u0041\"",
            "s = \"\\uD800x\"",
        ] {
            let e = from_toml(bad).unwrap_err();
            assert!(e.message.contains("surrogate"), "{bad}: {e}");
        }
        let e = from_json("{\"s\":\"\\uDFFF\"}").unwrap_err();
        assert!(e.message.contains("lone trail surrogate"), "got: {e}");
    }

    #[test]
    fn json_compat_escapes_parse() {
        let v = from_json("{\"s\":\"a\\/b\\u0008\\u000c\\b\\f\"}").unwrap();
        assert_eq!(
            v.get("s").unwrap().as_str(),
            Some("a/b\u{8}\u{c}\u{8}\u{c}")
        );
    }

    #[test]
    fn control_chars_and_quotes_in_meta_strings_round_trip() {
        // the satellite-2 audit case: a description with a newline,
        // tab, quote, backslash, and each C0 control must emit
        // re-parseable TOML and JSON
        let mut nasty = String::from("line1\nline2\ttab \"quoted\" back\\slash ");
        for c in 0u32..0x20 {
            nasty.push(char::from_u32(c).expect("C0 controls are chars"));
        }
        let mut v = Value::table();
        v.set("desc", Value::Str(nasty.clone()));
        let toml = to_toml(&v);
        assert_eq!(
            from_toml(&toml).unwrap().get("desc").unwrap().as_str(),
            Some(nasty.as_str()),
            "emitted TOML: {toml:?}"
        );
        let json = to_json(&v);
        assert_eq!(
            from_json(&json).unwrap().get("desc").unwrap().as_str(),
            Some(nasty.as_str()),
            "emitted JSON: {json:?}"
        );
    }
}
