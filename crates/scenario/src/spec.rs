//! The declarative scenario schema.
//!
//! A [`ScenarioSpec`] is a plain data tree describing everything the
//! repository can simulate: the worm targeting model, the network
//! environment (loss, latency, NAT, filtering), the vulnerable
//! population, the telescope deployment, the engine configuration, and
//! — for the paper's figures and tables — a higher-level *study* that
//! encapsulates a whole multi-run experiment. Specs round-trip through
//! TOML and JSON via [`value::Value`], and every deserialization or
//! validation error names the offending field by dotted path.

use std::fmt;

use hotspots_ipspace::{Ip, Prefix};
use hotspots_netmodel::{FaultEvent, FaultKind, FaultWindow, FilterRule, Proto, Service};
use hotspots_targeting::PreferenceEntry;

use crate::value::{self, Value};

/// A rejected spec: which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path of the offending field (`"environment.nat.fraction"`).
    pub field: String,
    /// What was wrong with it.
    pub message: String,
}

impl SpecError {
    /// An error naming `field` by dotted path.
    pub fn new(field: impl Into<String>, message: impl Into<String>) -> SpecError {
        SpecError {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for SpecError {}

/// A complete scenario description.
///
/// Exactly one of two shapes is valid (checked by [`validate`]):
///
/// - **engine path**: `worm` and `population` are set; the spec builds
///   into a single [`Engine`](hotspots_sim::Engine) run.
/// - **study path**: `study` is set; the spec wraps one of the paper's
///   figure/table experiments, which construct their own worms and
///   populations internally.
///
/// [`validate`]: ScenarioSpec::validate
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Identity and report labelling.
    pub meta: MetaSpec,
    /// The worm targeting model (engine path only).
    pub worm: Option<WormSpec>,
    /// The network environment. Defaults to a lossless direct internet.
    pub environment: EnvSpec,
    /// Scheduled environmental faults. Defaults to none.
    pub faults: FaultsSpec,
    /// The vulnerable population (engine path only).
    pub population: Option<PopSpec>,
    /// The telescope deployment observing the outbreak.
    pub telescope: TelescopeSpec,
    /// Engine configuration (ignored on the study path, which carries
    /// its own timing parameters).
    pub sim: SimSpec,
    /// A figure/table study (study path only).
    pub study: Option<StudySpec>,
    /// An optional parameter sweep over this spec.
    pub sweep: Option<SweepSpec>,
}

/// Identity and report labelling for a scenario.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetaSpec {
    /// Short unique name (`"fig2"`, `"xmode-slammer"`).
    pub name: String,
    /// Scenario label echoed in run reports (defaults to `name`).
    pub scenario: Option<String>,
    /// The paper artifact this reproduces (`"Figure 2"`).
    pub artifact: Option<String>,
    /// Human-readable banner title.
    pub title: Option<String>,
    /// Scale label echoed in run reports (`"quick"` / `"paper"`).
    pub scale: Option<String>,
}

/// The worm targeting model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WormSpec {
    /// Uniform random scanning (Code Red I v2 style), TCP/80.
    Uniform,
    /// Slammer's flawed LCG walk, with per-host `sqlsort.dll` versions.
    Slammer,
    /// CodeRedII's 1/8–4/8–3/8 local-preference scheme.
    CodeRed2,
    /// Blaster's sequential /20 walk seeded from boot-time entropy.
    Blaster {
        /// Hardware generation: `"pentium-ii"`, `"pentium-iii"`,
        /// `"pentium-iv"`.
        hardware: String,
        /// Seed model: `"reboot"` (fresh reboot) or `"population"`
        /// (mixed uptime).
        model: String,
    },
    /// Hit-list scanning over explicit prefixes.
    HitList {
        /// The hit-list prefixes (`"11.0.0.0/12"`).
        prefixes: Vec<String>,
        /// Probed service (`"tcp/80"`); defaults to TCP/80.
        service: Option<String>,
    },
    /// Generalized local preference with an explicit weight table.
    LocalPreference {
        /// Entries as `"<dotted-mask>*<weight>"` (`"255.0.0.0*4"`).
        entries: Vec<String>,
        /// Probed service; defaults to TCP/80.
        service: Option<String>,
    },
    /// A botnet scan command (the paper's command-language factor).
    Bot {
        /// The command in the bot's scan grammar.
        command: String,
    },
}

impl WormSpec {
    fn kind(&self) -> &'static str {
        match self {
            WormSpec::Uniform => "uniform",
            WormSpec::Slammer => "slammer",
            WormSpec::CodeRed2 => "codered2",
            WormSpec::Blaster { .. } => "blaster",
            WormSpec::HitList { .. } => "hit-list",
            WormSpec::LocalPreference { .. } => "local-preference",
            WormSpec::Bot { .. } => "bot",
        }
    }
}

/// The network environment between infected hosts and their targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvSpec {
    /// Uniform packet loss rate in `[0, 1]` (`None` = lossless).
    pub loss: Option<f64>,
    /// Filter rules as `"<direction> <prefix> <service>"` strings, e.g.
    /// `"egress 163.37.8.0/22 udp/1434"`; service `"*"` matches any.
    pub filters: Vec<String>,
    /// Propagation delay model (`None` = instantaneous).
    pub latency: Option<LatencySpec>,
    /// NAT deployment over the population (`None` = all public).
    pub nat: Option<NatSpec>,
}

/// Scheduled environmental faults (sensor outages, upstream blackholes,
/// flapping filters, degraded-path windows).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultsSpec {
    /// Schedule entries, one fault each:
    ///
    /// - `"outage <prefix> <t0> <t1>"` — the destination block goes dark;
    /// - `"blackhole <prefix> <t0> <t1>"` — all traffic from or to the
    ///   prefix is discarded upstream;
    /// - `"flap <direction> <prefix> <service> <t0> <t1> <period> <duty>"`
    ///   — a filter rule toggling on a duty cycle (service `"*"` matches
    ///   any);
    /// - `"degraded <prefix> <t0> <t1> <rate>"` — extra Bernoulli loss at
    ///   `rate` for traffic from or to the prefix.
    ///
    /// Windows are half-open `[t0, t1)` in simulation seconds.
    pub schedule: Vec<String>,
}

/// Propagation delay: `base + U(0, jitter)` seconds per probe.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySpec {
    /// Fixed per-probe delay in seconds.
    pub base_secs: f64,
    /// Uniform jitter bound in seconds.
    pub jitter_secs: f64,
}

/// NAT deployment over an engine-path population.
#[derive(Debug, Clone, PartialEq)]
pub struct NatSpec {
    /// Fraction of hosts moved behind NAT, in `[0, 1]`.
    pub fraction: f64,
    /// `"isolated"` (one realm per host) or `"shared"` (hosts pool into
    /// multi-host realms).
    pub topology: String,
    /// RNG seed for selecting which hosts are NATted.
    pub seed: u64,
}

/// The vulnerable population (engine path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopSpec {
    /// `count` public hosts at `base + i * stride`.
    Range {
        /// First address, dotted quad.
        base: String,
        /// Number of hosts.
        count: u64,
        /// Address increment between consecutive hosts.
        stride: u64,
    },
    /// The knob-tunable synthetic CodeRedII-style population.
    Synthetic {
        /// Number of hosts.
        size: u64,
        /// Number of occupied /8 networks.
        slash8s: u64,
        /// RNG seed for the draw.
        seed: u64,
    },
    /// The paper-calibrated 134,586-host CodeRedII population.
    Paper {
        /// RNG seed for the draw.
        seed: u64,
    },
    /// Explicit public host addresses (e.g. derived from a capture).
    Hosts {
        /// Dotted-quad addresses; duplicates are collapsed.
        addrs: Vec<String>,
    },
    /// An Internet-scale population: `size` hosts Zipf-distributed over
    /// `slash8s` /8 networks with per-/16 clustering (Chen & Ji's
    /// measured shape). Scales to millions of hosts; pairs with the
    /// compressed rank-indexed population store.
    Zipf {
        /// Number of hosts (may exceed a million).
        size: u64,
        /// Number of occupied /8 networks.
        slash8s: u64,
        /// RNG seed for the draw.
        seed: u64,
        /// Population store: `"compressed"` (default) or `"dense"`.
        store: String,
    },
}

/// The telescope deployment observing the outbreak.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TelescopeSpec {
    /// No telescope.
    #[default]
    None,
    /// A distributed sensor field with an alert threshold.
    Field {
        /// Where the sensor /24s sit.
        placement: PlacementSpec,
        /// Probes a sensor must see before alerting.
        alert_threshold: u64,
        /// `"active"` or `"passive"`.
        mode: String,
    },
}

/// Sensor placement for [`TelescopeSpec::Field`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementSpec {
    /// Explicit sensor prefixes.
    Prefixes {
        /// The sensor blocks (`"66.66.0.0/24"`).
        prefixes: Vec<String>,
    },
    /// `sensors` random /24s drawn with `seed`.
    Random {
        /// Number of sensor /24s.
        sensors: u64,
        /// RNG seed for the draw.
        seed: u64,
    },
}

/// Engine configuration; mirrors [`hotspots_sim::SimConfig`] field for
/// field, except `stop_at_fraction` defaults to `None` (a spec says so
/// explicitly when it wants early stopping).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Mean probes per second per infected host.
    pub scan_rate: f64,
    /// Log-normal dispersion of per-host scan rates.
    pub scan_rate_sigma: f64,
    /// Initial infected host count.
    pub seeds: u64,
    /// Simulation step in seconds.
    pub dt: f64,
    /// Hard stop time in seconds.
    pub max_time: f64,
    /// Optional early stop at this ever-infected fraction.
    pub stop_at_fraction: Option<f64>,
    /// Removal (patching) rate per second.
    pub removal_rate: f64,
    /// Master seed.
    pub rng_seed: u64,
    /// Probe-phase worker threads. `0` means auto: resolve to the
    /// machine's available parallelism at build time (the run report
    /// records the resolved count, never the `0`).
    pub threads: u64,
    /// Record a span trace of the run (inert unless the engine build
    /// has the `telemetry` feature). Off by default; `hotspots
    /// profile` turns it on per run.
    pub trace: bool,
}

impl Default for SimSpec {
    fn default() -> SimSpec {
        SimSpec {
            scan_rate: 10.0,
            scan_rate_sigma: 0.0,
            seeds: 25,
            dt: 1.0,
            max_time: 10_000.0,
            stop_at_fraction: None,
            removal_rate: 0.0,
            rng_seed: 0x4d53_2006,
            threads: 1,
            trace: false,
        }
    }
}

/// Parameters shared by the detection studies (Figure 5a/5b/5c), one
/// for one with `hotspots::scenarios::DetectionStudy`.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionParams {
    /// Vulnerable population size.
    pub population: u64,
    /// Occupied /8 count for the synthetic population.
    pub slash8s: u64,
    /// Use the paper-calibrated coverage profile instead.
    pub paper_profile: bool,
    /// Initial infected hosts.
    pub seeds: u64,
    /// Probes per second per infected host.
    pub scan_rate: f64,
    /// Sensor alert threshold.
    pub alert_threshold: u64,
    /// Hard stop time in seconds.
    pub max_time: f64,
    /// Early-stop infected fraction.
    pub stop_at_fraction: f64,
    /// Master seed.
    pub rng_seed: u64,
}

/// A figure/table study: a whole multi-run experiment as data.
#[derive(Debug, Clone, PartialEq)]
pub enum StudySpec {
    /// Figure 1: Blaster scan coverage by monitored block.
    BlasterCoverage {
        /// Infected host count.
        hosts: u64,
        /// Observation window in seconds.
        window_secs: f64,
        /// Probes per second per host.
        scan_rate: f64,
        /// Fraction of hosts infected at reboot.
        reboot_fraction: f64,
        /// Master seed.
        rng_seed: u64,
    },
    /// Figure 2: Slammer scan density per monitored /24.
    SlammerCoverage {
        /// Infected host count.
        hosts: u64,
        /// Install the paper's M-block egress filter.
        m_block_filter: bool,
        /// Master seed.
        rng_seed: u64,
    },
    /// Figure 3: two individual Slammer hosts' probe footprints.
    SlammerHosts {
        /// Probes drawn per host.
        probes_per_host: u64,
    },
    /// Figure 4: CodeRedII sources under NAT, plus the two quarantined
    /// host traces.
    CodeRedNat {
        /// Infected host count.
        hosts: u64,
        /// Probes drawn per host.
        probes_per_host: u64,
        /// Fraction of hosts behind NAT.
        nat_fraction: f64,
        /// Master seed.
        rng_seed: u64,
        /// Quarantine trace length for the public host.
        quarantine_probes_public: u64,
        /// Quarantine trace length for the NATted host.
        quarantine_probes_natted: u64,
        /// Seed for the quarantine traces.
        quarantine_seed: u64,
    },
    /// Figure 5a: infection speed vs hit-list size.
    HitListInfection {
        /// Shared detection-study parameters.
        detection: DetectionParams,
        /// Hit-list sizes; `None` (TOML `"full"`) = the whole population.
        sizes: Vec<Option<u64>>,
    },
    /// Figure 5b: telescope alert speed vs hit-list size.
    HitListDetection {
        /// Shared detection-study parameters.
        detection: DetectionParams,
        /// Hit-list sizes; `None` (TOML `"full"`) = the whole population.
        sizes: Vec<Option<u64>>,
    },
    /// Figure 5c: sensor placement vs NAT-heavy populations.
    NatDetection {
        /// Shared detection-study parameters.
        detection: DetectionParams,
        /// Fraction of hosts behind NAT.
        nat_fraction: f64,
        /// Sensor count for the random/top-k placements.
        sensors: u64,
        /// `k` for the top-/8s placement.
        top_k_slash8s: u64,
    },
    /// Table 1: bot command-language hit-list audit.
    BotCommands {
        /// Synthetic commands to generate on top of the fixed corpus.
        synthetic_commands: u64,
        /// Seed for the synthetic corpus draw.
        corpus_seed: u64,
        /// The drone's own address, dotted quad.
        drone: String,
    },
    /// Table 2: egress/upstream filtering at enterprise vs ISP scale.
    Filtering {
        /// Infected hosts inside the filtered enterprise.
        infected_per_enterprise: u64,
        /// Infected hosts inside the filtered ISP.
        infected_per_isp: u64,
        /// Probes drawn per host.
        probes_per_host: u64,
        /// Blaster scan length in probes.
        blaster_scan_len: u64,
        /// Master seed.
        rng_seed: u64,
    },
    /// The ablation suite: NAT topology, sensor mode, reboot fraction.
    Ablations {
        /// Population for the NAT-topology ablation.
        nat_population: u64,
        /// Stop time for the NAT-topology ablation.
        nat_max_time: f64,
        /// Population for the sensor-mode ablation.
        sensor_hosts: u64,
        /// Stop time for the sensor-mode ablation.
        sensor_max_time: f64,
        /// Population for the reboot-fraction ablation.
        reboot_hosts: u64,
    },
    /// Sensitivity of the hotspot findings to telescope placement.
    Sensitivity {
        /// Randomized deployments per worm.
        trials: u64,
        /// CodeRed hosts per trial.
        codered_hosts: u64,
        /// CodeRed probes per host per trial.
        codered_probes_per_host: u64,
        /// Slammer hosts per trial.
        slammer_hosts: u64,
        /// Master seed for deployment draws.
        rng_seed: u64,
    },
}

impl StudySpec {
    fn kind(&self) -> &'static str {
        match self {
            StudySpec::BlasterCoverage { .. } => "blaster-coverage",
            StudySpec::SlammerCoverage { .. } => "slammer-coverage",
            StudySpec::SlammerHosts { .. } => "slammer-hosts",
            StudySpec::CodeRedNat { .. } => "codered-nat",
            StudySpec::HitListInfection { .. } => "hitlist-infection",
            StudySpec::HitListDetection { .. } => "hitlist-detection",
            StudySpec::NatDetection { .. } => "nat-detection",
            StudySpec::BotCommands { .. } => "bot-commands",
            StudySpec::Filtering { .. } => "filtering",
            StudySpec::Ablations { .. } => "ablations",
            StudySpec::Sensitivity { .. } => "sensitivity",
        }
    }
}

/// A parameter sweep: rerun the scenario once per value with the dotted
/// `param` path overridden.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Dotted path into the spec (`"sim.scan_rate"`).
    pub param: String,
    /// The values to substitute, in order.
    pub values: Vec<Value>,
}

// ---------------------------------------------------------------------------
// Field-tracking table reader
// ---------------------------------------------------------------------------

/// Reads one `Value::Table`, tracking which keys were consumed so
/// unknown keys (typos) become errors naming the field.
struct Fields<'a> {
    path: String,
    entries: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(path: &str, v: &'a Value) -> Result<Fields<'a>, SpecError> {
        match v {
            Value::Table(entries) => Ok(Fields {
                path: path.to_owned(),
                entries,
                used: vec![false; entries.len()],
            }),
            other => Err(SpecError::new(
                path,
                format!("expected a table, found {}", other.type_name()),
            )),
        }
    }

    /// Dotted path of `key` under this table.
    fn sub(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_owned()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn req(&mut self, key: &str) -> Result<&'a Value, SpecError> {
        let path = self.sub(key);
        self.take(key)
            .ok_or_else(|| SpecError::new(path, "missing required field"))
    }

    fn str(&mut self, key: &str) -> Result<String, SpecError> {
        let path = self.sub(key);
        as_str(&path, self.req(key)?)
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        let path = self.sub(key);
        self.take(key).map(|v| as_str(&path, v)).transpose()
    }

    fn u64(&mut self, key: &str) -> Result<u64, SpecError> {
        let path = self.sub(key);
        as_u64(&path, self.req(key)?)
    }

    fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, SpecError> {
        let path = self.sub(key);
        match self.take(key) {
            Some(v) => as_u64(&path, v),
            None => Ok(default),
        }
    }

    fn f64(&mut self, key: &str) -> Result<f64, SpecError> {
        let path = self.sub(key);
        as_f64(&path, self.req(key)?)
    }

    fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, SpecError> {
        let path = self.sub(key);
        match self.take(key) {
            Some(v) => as_f64(&path, v),
            None => Ok(default),
        }
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        let path = self.sub(key);
        self.take(key).map(|v| as_f64(&path, v)).transpose()
    }

    fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        let path = self.sub(key);
        match self.take(key) {
            Some(v) => v.as_bool().ok_or_else(|| {
                SpecError::new(&path, format!("expected a bool, found {}", v.type_name()))
            }),
            None => Ok(default),
        }
    }

    fn str_array(&mut self, key: &str) -> Result<Vec<String>, SpecError> {
        let path = self.sub(key);
        match self.take(key) {
            Some(v) => {
                let arr = v.as_array().ok_or_else(|| {
                    SpecError::new(&path, format!("expected an array, found {}", v.type_name()))
                })?;
                arr.iter()
                    .enumerate()
                    .map(|(i, item)| as_str(&format!("{path}[{i}]"), item))
                    .collect()
            }
            None => Ok(Vec::new()),
        }
    }

    /// Errors on any key never consumed — the typo catcher.
    fn finish(self) -> Result<(), SpecError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(SpecError::new(self.sub(k), "unknown field"));
            }
        }
        Ok(())
    }
}

fn as_str(path: &str, v: &Value) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| SpecError::new(path, format!("expected a string, found {}", v.type_name())))
}

fn as_u64(path: &str, v: &Value) -> Result<u64, SpecError> {
    match v.as_int() {
        Some(i) if i >= 0 => Ok(i as u64),
        Some(i) => Err(SpecError::new(
            path,
            format!("must be non-negative, got {i}"),
        )),
        None => Err(SpecError::new(
            path,
            format!("expected an integer, found {}", v.type_name()),
        )),
    }
}

fn as_f64(path: &str, v: &Value) -> Result<f64, SpecError> {
    v.as_float()
        .ok_or_else(|| SpecError::new(path, format!("expected a number, found {}", v.type_name())))
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).expect("spec integer exceeds i64")) // hotspots-lint: allow(panic-path) reason="spec integers are validated to fit i64 on ingest"
}

fn strs(items: &[String]) -> Value {
    Value::Array(items.iter().map(|s| Value::Str(s.clone())).collect())
}

// ---------------------------------------------------------------------------
// (De)serialization
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// A minimal spec named `name`: default environment, no worm, no
    /// population, no telescope, default sim, no study.
    pub fn named(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            meta: MetaSpec {
                name: name.into(),
                ..MetaSpec::default()
            },
            worm: None,
            environment: EnvSpec::default(),
            faults: FaultsSpec::default(),
            population: None,
            telescope: TelescopeSpec::None,
            sim: SimSpec::default(),
            study: None,
            sweep: None,
        }
    }

    /// Serializes to the generic value tree (tables keep scalar keys
    /// before sub-tables so TOML emission is stable).
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        root.set("meta", meta_to_value(&self.meta));
        if let Some(worm) = &self.worm {
            root.set("worm", worm_to_value(worm));
        }
        if self.environment != EnvSpec::default() {
            root.set("environment", env_to_value(&self.environment));
        }
        if !self.faults.schedule.is_empty() {
            let mut t = Value::table();
            t.set("schedule", strs(&self.faults.schedule));
            root.set("faults", t);
        }
        if let Some(pop) = &self.population {
            root.set("population", pop_to_value(pop));
        }
        if self.telescope != TelescopeSpec::None {
            root.set("telescope", telescope_to_value(&self.telescope));
        }
        root.set("sim", sim_to_value(&self.sim));
        if let Some(study) = &self.study {
            root.set("study", study_to_value(study));
        }
        if let Some(sweep) = &self.sweep {
            let mut t = Value::table();
            t.set("param", Value::Str(sweep.param.clone()));
            t.set("values", Value::Array(sweep.values.clone()));
            root.set("sweep", t);
        }
        root
    }

    /// Deserializes from the generic value tree. Unknown keys anywhere
    /// in the tree are errors naming the field.
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, SpecError> {
        let mut root = Fields::new("", v)?;
        let meta = meta_from_value(root.req("meta")?)?;
        let worm = root.take("worm").map(worm_from_value).transpose()?;
        let environment = match root.take("environment") {
            Some(v) => env_from_value(v)?,
            None => EnvSpec::default(),
        };
        let faults = match root.take("faults") {
            Some(v) => {
                let mut f = Fields::new("faults", v)?;
                let spec = FaultsSpec {
                    schedule: f.str_array("schedule")?,
                };
                f.finish()?;
                spec
            }
            None => FaultsSpec::default(),
        };
        let population = root.take("population").map(pop_from_value).transpose()?;
        let telescope = match root.take("telescope") {
            Some(v) => telescope_from_value(v)?,
            None => TelescopeSpec::None,
        };
        let sim = match root.take("sim") {
            Some(v) => sim_from_value(v)?,
            None => SimSpec::default(),
        };
        let study = root.take("study").map(study_from_value).transpose()?;
        let sweep = match root.take("sweep") {
            Some(v) => {
                let mut f = Fields::new("sweep", v)?;
                let param = f.str("param")?;
                let values = f
                    .req("values")?
                    .as_array()
                    .ok_or_else(|| SpecError::new("sweep.values", "expected an array"))?
                    .to_vec();
                f.finish()?;
                Some(SweepSpec { param, values })
            }
            None => None,
        };
        root.finish()?;
        Ok(ScenarioSpec {
            meta,
            worm,
            environment,
            faults,
            population,
            telescope,
            sim,
            study,
            sweep,
        })
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        value::to_toml(&self.to_value())
    }

    /// Parses and validates a TOML spec.
    pub fn from_toml(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = value::from_toml(text)
            .map_err(|e| SpecError::new(format!("(toml line {})", e.line), e.message))?;
        let spec = ScenarioSpec::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// The canonical serialized form: the normalized TOML the writer
    /// emits from the value tree. Two specs that parse to the same
    /// `ScenarioSpec` — whatever their source formatting, key order,
    /// comments, or explicit defaults — share one canonical form, so
    /// it is the memoization key for the scenario server's result
    /// cache (DESIGN.md §5i).
    #[must_use]
    pub fn canonical_toml(&self) -> String {
        self.to_toml()
    }

    /// The stable content hash of [`ScenarioSpec::canonical_toml`]
    /// (64-bit FNV-1a). Equal for equal specs across processes and
    /// platforms; the scenario server names cache entries with it.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        hotspots_telemetry::hash::fnv1a_64(self.canonical_toml().as_bytes())
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        value::to_json(&self.to_value())
    }

    /// Parses and validates a JSON spec.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = value::from_json(text)
            .map_err(|e| SpecError::new(format!("(json line {})", e.line), e.message))?;
        let spec = ScenarioSpec::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Semantic validation: shape (engine path vs study path), ranges,
    /// and every embedded mini-grammar (prefixes, services, preference
    /// entries, filter rules). Errors name the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.meta.name.is_empty() {
            return Err(SpecError::new("meta.name", "must be non-empty"));
        }
        match (&self.worm, &self.study) {
            (Some(_), Some(_)) => {
                return Err(SpecError::new(
                    "study",
                    "study scenarios define their own worm; remove [worm]",
                ));
            }
            (None, None) => {
                return Err(SpecError::new(
                    "worm",
                    "spec needs either [worm] + [population] or [study]",
                ));
            }
            (Some(_), None) => {
                if self.population.is_none() {
                    return Err(SpecError::new("population", "required when [worm] is set"));
                }
            }
            (None, Some(_)) => {
                if self.population.is_some() {
                    return Err(SpecError::new(
                        "population",
                        "study scenarios define their own population; remove [population]",
                    ));
                }
            }
        }
        if let Some(worm) = &self.worm {
            validate_worm(worm)?;
        }
        validate_env(&self.environment)?;
        validate_faults(&self.faults)?;
        if let Some(pop) = &self.population {
            validate_pop(pop)?;
        }
        validate_telescope(&self.telescope)?;
        validate_sim(&self.sim)?;
        if let Some(study) = &self.study {
            validate_study(study)?;
        }
        if let Some(sweep) = &self.sweep {
            if sweep.values.is_empty() {
                return Err(SpecError::new("sweep.values", "must be non-empty"));
            }
            if self.to_value().get_path(&sweep.param).is_none() {
                return Err(SpecError::new(
                    "sweep.param",
                    format!("path {:?} not present in this spec", sweep.param),
                ));
            }
        }
        Ok(())
    }
}

fn meta_to_value(meta: &MetaSpec) -> Value {
    let mut t = Value::table();
    t.set("name", Value::Str(meta.name.clone()));
    if let Some(s) = &meta.scenario {
        t.set("scenario", Value::Str(s.clone()));
    }
    if let Some(s) = &meta.artifact {
        t.set("artifact", Value::Str(s.clone()));
    }
    if let Some(s) = &meta.title {
        t.set("title", Value::Str(s.clone()));
    }
    if let Some(s) = &meta.scale {
        t.set("scale", Value::Str(s.clone()));
    }
    t
}

fn meta_from_value(v: &Value) -> Result<MetaSpec, SpecError> {
    let mut f = Fields::new("meta", v)?;
    let meta = MetaSpec {
        name: f.str("name")?,
        scenario: f.opt_str("scenario")?,
        artifact: f.opt_str("artifact")?,
        title: f.opt_str("title")?,
        scale: f.opt_str("scale")?,
    };
    f.finish()?;
    Ok(meta)
}

fn worm_to_value(worm: &WormSpec) -> Value {
    let mut t = Value::table();
    t.set("kind", Value::Str(worm.kind().to_owned()));
    match worm {
        WormSpec::Uniform | WormSpec::Slammer | WormSpec::CodeRed2 => {}
        WormSpec::Blaster { hardware, model } => {
            t.set("hardware", Value::Str(hardware.clone()));
            t.set("model", Value::Str(model.clone()));
        }
        WormSpec::HitList { prefixes, service } => {
            t.set("prefixes", strs(prefixes));
            if let Some(s) = service {
                t.set("service", Value::Str(s.clone()));
            }
        }
        WormSpec::LocalPreference { entries, service } => {
            t.set("entries", strs(entries));
            if let Some(s) = service {
                t.set("service", Value::Str(s.clone()));
            }
        }
        WormSpec::Bot { command } => {
            t.set("command", Value::Str(command.clone()));
        }
    }
    t
}

fn worm_from_value(v: &Value) -> Result<WormSpec, SpecError> {
    let mut f = Fields::new("worm", v)?;
    let kind = f.str("kind")?;
    let worm = match kind.as_str() {
        "uniform" => WormSpec::Uniform,
        "slammer" => WormSpec::Slammer,
        "codered2" => WormSpec::CodeRed2,
        "blaster" => WormSpec::Blaster {
            hardware: f.str("hardware")?,
            model: f.str("model")?,
        },
        "hit-list" => WormSpec::HitList {
            prefixes: f.str_array("prefixes")?,
            service: f.opt_str("service")?,
        },
        "local-preference" => WormSpec::LocalPreference {
            entries: f.str_array("entries")?,
            service: f.opt_str("service")?,
        },
        "bot" => WormSpec::Bot {
            command: f.str("command")?,
        },
        other => {
            return Err(SpecError::new(
                "worm.kind",
                format!(
                    "unknown worm kind {other:?} (expected uniform, slammer, codered2, \
                     blaster, hit-list, local-preference, or bot)"
                ),
            ));
        }
    };
    f.finish()?;
    Ok(worm)
}

fn env_to_value(env: &EnvSpec) -> Value {
    let mut t = Value::table();
    if let Some(loss) = env.loss {
        t.set("loss", Value::Float(loss));
    }
    if !env.filters.is_empty() {
        t.set("filters", strs(&env.filters));
    }
    if let Some(lat) = &env.latency {
        let mut l = Value::table();
        l.set("base_secs", Value::Float(lat.base_secs));
        l.set("jitter_secs", Value::Float(lat.jitter_secs));
        t.set("latency", l);
    }
    if let Some(nat) = &env.nat {
        let mut n = Value::table();
        n.set("fraction", Value::Float(nat.fraction));
        n.set("topology", Value::Str(nat.topology.clone()));
        n.set("seed", int(nat.seed));
        t.set("nat", n);
    }
    t
}

fn env_from_value(v: &Value) -> Result<EnvSpec, SpecError> {
    let mut f = Fields::new("environment", v)?;
    let loss = f.opt_f64("loss")?;
    let filters = f.str_array("filters")?;
    let latency = match f.take("latency") {
        Some(v) => {
            let mut l = Fields::new("environment.latency", v)?;
            let lat = LatencySpec {
                base_secs: l.f64("base_secs")?,
                jitter_secs: l.f64_or("jitter_secs", 0.0)?,
            };
            l.finish()?;
            Some(lat)
        }
        None => None,
    };
    let nat = match f.take("nat") {
        Some(v) => {
            let mut n = Fields::new("environment.nat", v)?;
            let nat = NatSpec {
                fraction: n.f64("fraction")?,
                topology: n.str("topology")?,
                seed: n.u64("seed")?,
            };
            n.finish()?;
            Some(nat)
        }
        None => None,
    };
    f.finish()?;
    Ok(EnvSpec {
        loss,
        filters,
        latency,
        nat,
    })
}

fn pop_to_value(pop: &PopSpec) -> Value {
    let mut t = Value::table();
    match pop {
        PopSpec::Range {
            base,
            count,
            stride,
        } => {
            t.set("kind", Value::Str("range".into()));
            t.set("base", Value::Str(base.clone()));
            t.set("count", int(*count));
            t.set("stride", int(*stride));
        }
        PopSpec::Synthetic {
            size,
            slash8s,
            seed,
        } => {
            t.set("kind", Value::Str("synthetic".into()));
            t.set("size", int(*size));
            t.set("slash8s", int(*slash8s));
            t.set("seed", int(*seed));
        }
        PopSpec::Paper { seed } => {
            t.set("kind", Value::Str("paper".into()));
            t.set("seed", int(*seed));
        }
        PopSpec::Hosts { addrs } => {
            t.set("kind", Value::Str("hosts".into()));
            t.set("addrs", strs(addrs));
        }
        PopSpec::Zipf {
            size,
            slash8s,
            seed,
            store,
        } => {
            t.set("kind", Value::Str("zipf".into()));
            t.set("size", int(*size));
            t.set("slash8s", int(*slash8s));
            t.set("seed", int(*seed));
            t.set("store", Value::Str(store.clone()));
        }
    }
    t
}

fn pop_from_value(v: &Value) -> Result<PopSpec, SpecError> {
    let mut f = Fields::new("population", v)?;
    let kind = f.str("kind")?;
    let pop = match kind.as_str() {
        "range" => PopSpec::Range {
            base: f.str("base")?,
            count: f.u64("count")?,
            stride: f.u64_or("stride", 1)?,
        },
        "synthetic" => PopSpec::Synthetic {
            size: f.u64("size")?,
            slash8s: f.u64("slash8s")?,
            seed: f.u64("seed")?,
        },
        "paper" => PopSpec::Paper {
            seed: f.u64("seed")?,
        },
        "hosts" => PopSpec::Hosts {
            addrs: f.str_array("addrs")?,
        },
        "zipf" => PopSpec::Zipf {
            size: f.u64("size")?,
            slash8s: f.u64("slash8s")?,
            seed: f.u64("seed")?,
            store: f.opt_str("store")?.unwrap_or_else(|| "compressed".into()),
        },
        other => {
            return Err(SpecError::new(
                "population.kind",
                format!(
                    "unknown population kind {other:?} (expected range, synthetic, paper, hosts, or zipf)"
                ),
            ));
        }
    };
    f.finish()?;
    Ok(pop)
}

fn telescope_to_value(t: &TelescopeSpec) -> Value {
    let mut out = Value::table();
    match t {
        TelescopeSpec::None => {
            out.set("kind", Value::Str("none".into()));
        }
        TelescopeSpec::Field {
            placement,
            alert_threshold,
            mode,
        } => {
            out.set("kind", Value::Str("field".into()));
            out.set("alert_threshold", int(*alert_threshold));
            out.set("mode", Value::Str(mode.clone()));
            let mut p = Value::table();
            match placement {
                PlacementSpec::Prefixes { prefixes } => {
                    p.set("kind", Value::Str("prefixes".into()));
                    p.set("prefixes", strs(prefixes));
                }
                PlacementSpec::Random { sensors, seed } => {
                    p.set("kind", Value::Str("random".into()));
                    p.set("sensors", int(*sensors));
                    p.set("seed", int(*seed));
                }
            }
            out.set("placement", p);
        }
    }
    out
}

fn telescope_from_value(v: &Value) -> Result<TelescopeSpec, SpecError> {
    let mut f = Fields::new("telescope", v)?;
    let kind = f.str("kind")?;
    let t = match kind.as_str() {
        "none" => TelescopeSpec::None,
        "field" => {
            let alert_threshold = f.u64_or("alert_threshold", 5)?;
            let mode = f.opt_str("mode")?.unwrap_or_else(|| "active".into());
            let mut p = Fields::new("telescope.placement", f.req("placement")?)?;
            let pkind = p.str("kind")?;
            let placement = match pkind.as_str() {
                "prefixes" => PlacementSpec::Prefixes {
                    prefixes: p.str_array("prefixes")?,
                },
                "random" => PlacementSpec::Random {
                    sensors: p.u64("sensors")?,
                    seed: p.u64("seed")?,
                },
                other => {
                    return Err(SpecError::new(
                        "telescope.placement.kind",
                        format!("unknown placement kind {other:?} (expected prefixes or random)"),
                    ));
                }
            };
            p.finish()?;
            TelescopeSpec::Field {
                placement,
                alert_threshold,
                mode,
            }
        }
        other => {
            return Err(SpecError::new(
                "telescope.kind",
                format!("unknown telescope kind {other:?} (expected none or field)"),
            ));
        }
    };
    f.finish()?;
    Ok(t)
}

fn sim_to_value(sim: &SimSpec) -> Value {
    let mut t = Value::table();
    t.set("scan_rate", Value::Float(sim.scan_rate));
    t.set("scan_rate_sigma", Value::Float(sim.scan_rate_sigma));
    t.set("seeds", int(sim.seeds));
    t.set("dt", Value::Float(sim.dt));
    t.set("max_time", Value::Float(sim.max_time));
    if let Some(f) = sim.stop_at_fraction {
        t.set("stop_at_fraction", Value::Float(f));
    }
    t.set("removal_rate", Value::Float(sim.removal_rate));
    t.set("rng_seed", int(sim.rng_seed));
    t.set("threads", int(sim.threads));
    // Emitted only when on: keeps existing pinned spec files byte-stable.
    if sim.trace {
        t.set("trace", Value::Bool(true));
    }
    t
}

fn sim_from_value(v: &Value) -> Result<SimSpec, SpecError> {
    let mut f = Fields::new("sim", v)?;
    let d = SimSpec::default();
    let sim = SimSpec {
        scan_rate: f.f64_or("scan_rate", d.scan_rate)?,
        scan_rate_sigma: f.f64_or("scan_rate_sigma", d.scan_rate_sigma)?,
        seeds: f.u64_or("seeds", d.seeds)?,
        dt: f.f64_or("dt", d.dt)?,
        max_time: f.f64_or("max_time", d.max_time)?,
        stop_at_fraction: f.opt_f64("stop_at_fraction")?,
        removal_rate: f.f64_or("removal_rate", d.removal_rate)?,
        rng_seed: f.u64_or("rng_seed", d.rng_seed)?,
        threads: f.u64_or("threads", d.threads)?,
        trace: f.bool_or("trace", d.trace)?,
    };
    f.finish()?;
    Ok(sim)
}

fn detection_to_value(d: &DetectionParams) -> Value {
    let mut t = Value::table();
    t.set("population", int(d.population));
    t.set("slash8s", int(d.slash8s));
    t.set("paper_profile", Value::Bool(d.paper_profile));
    t.set("seeds", int(d.seeds));
    t.set("scan_rate", Value::Float(d.scan_rate));
    t.set("alert_threshold", int(d.alert_threshold));
    t.set("max_time", Value::Float(d.max_time));
    t.set("stop_at_fraction", Value::Float(d.stop_at_fraction));
    t.set("rng_seed", int(d.rng_seed));
    t
}

fn detection_from_value(path: &str, v: &Value) -> Result<DetectionParams, SpecError> {
    let mut f = Fields::new(path, v)?;
    let d = DetectionParams {
        population: f.u64("population")?,
        slash8s: f.u64_or("slash8s", 47)?,
        paper_profile: f.bool_or("paper_profile", false)?,
        seeds: f.u64_or("seeds", 25)?,
        scan_rate: f.f64_or("scan_rate", 10.0)?,
        alert_threshold: f.u64_or("alert_threshold", 5)?,
        max_time: f.f64("max_time")?,
        stop_at_fraction: f.f64_or("stop_at_fraction", 0.95)?,
        rng_seed: f.u64_or("rng_seed", 0xf15_2006)?,
    };
    f.finish()?;
    Ok(d)
}

/// TOML encoding of hit-list sizes: integers, with `"full"` for the
/// whole population.
fn sizes_to_value(sizes: &[Option<u64>]) -> Value {
    Value::Array(
        sizes
            .iter()
            .map(|s| match s {
                Some(n) => int(*n),
                None => Value::Str("full".into()),
            })
            .collect(),
    )
}

fn sizes_from_value(path: &str, v: &Value) -> Result<Vec<Option<u64>>, SpecError> {
    let arr = v.as_array().ok_or_else(|| {
        SpecError::new(path, format!("expected an array, found {}", v.type_name()))
    })?;
    arr.iter()
        .enumerate()
        .map(|(i, item)| {
            let path = format!("{path}[{i}]");
            if let Some(s) = item.as_str() {
                if s == "full" {
                    Ok(None)
                } else {
                    Err(SpecError::new(
                        path,
                        format!("expected an integer or \"full\", got {s:?}"),
                    ))
                }
            } else {
                as_u64(&path, item).map(Some)
            }
        })
        .collect()
}

fn study_to_value(study: &StudySpec) -> Value {
    let mut t = Value::table();
    t.set("kind", Value::Str(study.kind().to_owned()));
    match study {
        StudySpec::BlasterCoverage {
            hosts,
            window_secs,
            scan_rate,
            reboot_fraction,
            rng_seed,
        } => {
            t.set("hosts", int(*hosts));
            t.set("window_secs", Value::Float(*window_secs));
            t.set("scan_rate", Value::Float(*scan_rate));
            t.set("reboot_fraction", Value::Float(*reboot_fraction));
            t.set("rng_seed", int(*rng_seed));
        }
        StudySpec::SlammerCoverage {
            hosts,
            m_block_filter,
            rng_seed,
        } => {
            t.set("hosts", int(*hosts));
            t.set("m_block_filter", Value::Bool(*m_block_filter));
            t.set("rng_seed", int(*rng_seed));
        }
        StudySpec::SlammerHosts { probes_per_host } => {
            t.set("probes_per_host", int(*probes_per_host));
        }
        StudySpec::CodeRedNat {
            hosts,
            probes_per_host,
            nat_fraction,
            rng_seed,
            quarantine_probes_public,
            quarantine_probes_natted,
            quarantine_seed,
        } => {
            t.set("hosts", int(*hosts));
            t.set("probes_per_host", int(*probes_per_host));
            t.set("nat_fraction", Value::Float(*nat_fraction));
            t.set("rng_seed", int(*rng_seed));
            t.set("quarantine_probes_public", int(*quarantine_probes_public));
            t.set("quarantine_probes_natted", int(*quarantine_probes_natted));
            t.set("quarantine_seed", int(*quarantine_seed));
        }
        StudySpec::HitListInfection { detection, sizes }
        | StudySpec::HitListDetection { detection, sizes } => {
            t.set("sizes", sizes_to_value(sizes));
            t.set("detection", detection_to_value(detection));
        }
        StudySpec::NatDetection {
            detection,
            nat_fraction,
            sensors,
            top_k_slash8s,
        } => {
            t.set("nat_fraction", Value::Float(*nat_fraction));
            t.set("sensors", int(*sensors));
            t.set("top_k_slash8s", int(*top_k_slash8s));
            t.set("detection", detection_to_value(detection));
        }
        StudySpec::BotCommands {
            synthetic_commands,
            corpus_seed,
            drone,
        } => {
            t.set("synthetic_commands", int(*synthetic_commands));
            t.set("corpus_seed", int(*corpus_seed));
            t.set("drone", Value::Str(drone.clone()));
        }
        StudySpec::Filtering {
            infected_per_enterprise,
            infected_per_isp,
            probes_per_host,
            blaster_scan_len,
            rng_seed,
        } => {
            t.set("infected_per_enterprise", int(*infected_per_enterprise));
            t.set("infected_per_isp", int(*infected_per_isp));
            t.set("probes_per_host", int(*probes_per_host));
            t.set("blaster_scan_len", int(*blaster_scan_len));
            t.set("rng_seed", int(*rng_seed));
        }
        StudySpec::Ablations {
            nat_population,
            nat_max_time,
            sensor_hosts,
            sensor_max_time,
            reboot_hosts,
        } => {
            t.set("nat_population", int(*nat_population));
            t.set("nat_max_time", Value::Float(*nat_max_time));
            t.set("sensor_hosts", int(*sensor_hosts));
            t.set("sensor_max_time", Value::Float(*sensor_max_time));
            t.set("reboot_hosts", int(*reboot_hosts));
        }
        StudySpec::Sensitivity {
            trials,
            codered_hosts,
            codered_probes_per_host,
            slammer_hosts,
            rng_seed,
        } => {
            t.set("trials", int(*trials));
            t.set("codered_hosts", int(*codered_hosts));
            t.set("codered_probes_per_host", int(*codered_probes_per_host));
            t.set("slammer_hosts", int(*slammer_hosts));
            t.set("rng_seed", int(*rng_seed));
        }
    }
    t
}

fn study_from_value(v: &Value) -> Result<StudySpec, SpecError> {
    let mut f = Fields::new("study", v)?;
    let kind = f.str("kind")?;
    let study = match kind.as_str() {
        "blaster-coverage" => StudySpec::BlasterCoverage {
            hosts: f.u64("hosts")?,
            window_secs: f.f64("window_secs")?,
            scan_rate: f.f64_or("scan_rate", 11.0)?,
            reboot_fraction: f.f64_or("reboot_fraction", 0.5)?,
            rng_seed: f.u64_or("rng_seed", 0xb1a5_7e12)?,
        },
        "slammer-coverage" => StudySpec::SlammerCoverage {
            hosts: f.u64("hosts")?,
            m_block_filter: f.bool_or("m_block_filter", false)?,
            rng_seed: f.u64_or("rng_seed", 0x51a3_3e12)?,
        },
        "slammer-hosts" => StudySpec::SlammerHosts {
            probes_per_host: f.u64("probes_per_host")?,
        },
        "codered-nat" => StudySpec::CodeRedNat {
            hosts: f.u64("hosts")?,
            probes_per_host: f.u64("probes_per_host")?,
            nat_fraction: f.f64_or("nat_fraction", 0.15)?,
            rng_seed: f.u64_or("rng_seed", 0xc0de_4ed2)?,
            quarantine_probes_public: f.u64("quarantine_probes_public")?,
            quarantine_probes_natted: f.u64("quarantine_probes_natted")?,
            quarantine_seed: f.u64_or("quarantine_seed", 4)?,
        },
        "hitlist-infection" => StudySpec::HitListInfection {
            detection: detection_from_value("study.detection", f.req("detection")?)?,
            sizes: sizes_from_value("study.sizes", f.req("sizes")?)?,
        },
        "hitlist-detection" => StudySpec::HitListDetection {
            detection: detection_from_value("study.detection", f.req("detection")?)?,
            sizes: sizes_from_value("study.sizes", f.req("sizes")?)?,
        },
        "nat-detection" => StudySpec::NatDetection {
            detection: detection_from_value("study.detection", f.req("detection")?)?,
            nat_fraction: f.f64_or("nat_fraction", 0.15)?,
            sensors: f.u64("sensors")?,
            top_k_slash8s: f.u64_or("top_k_slash8s", 20)?,
        },
        "bot-commands" => StudySpec::BotCommands {
            synthetic_commands: f.u64("synthetic_commands")?,
            corpus_seed: f.u64_or("corpus_seed", 0x7ab1e)?,
            drone: f.str("drone")?,
        },
        "filtering" => StudySpec::Filtering {
            infected_per_enterprise: f.u64("infected_per_enterprise")?,
            infected_per_isp: f.u64("infected_per_isp")?,
            probes_per_host: f.u64("probes_per_host")?,
            blaster_scan_len: f.u64_or("blaster_scan_len", (30 * 24 * 3600) as u64 * 11)?,
            rng_seed: f.u64_or("rng_seed", 0x7ab1e2)?,
        },
        "ablations" => StudySpec::Ablations {
            nat_population: f.u64("nat_population")?,
            nat_max_time: f.f64("nat_max_time")?,
            sensor_hosts: f.u64("sensor_hosts")?,
            sensor_max_time: f.f64("sensor_max_time")?,
            reboot_hosts: f.u64("reboot_hosts")?,
        },
        "sensitivity" => StudySpec::Sensitivity {
            trials: f.u64("trials")?,
            codered_hosts: f.u64("codered_hosts")?,
            codered_probes_per_host: f.u64("codered_probes_per_host")?,
            slammer_hosts: f.u64("slammer_hosts")?,
            rng_seed: f.u64_or("rng_seed", 0x5ee0)?,
        },
        other => {
            return Err(SpecError::new(
                "study.kind",
                format!("unknown study kind {other:?}"),
            ));
        }
    };
    f.finish()?;
    Ok(study)
}

// ---------------------------------------------------------------------------
// Embedded mini-grammars (prefixes, services, filters, preference entries)
// ---------------------------------------------------------------------------

/// Parses `"tcp/80"` / `"udp/1434"`.
pub fn parse_service(field: &str, s: &str) -> Result<Service, SpecError> {
    let (proto, port) = s
        .split_once('/')
        .ok_or_else(|| SpecError::new(field, format!("expected \"proto/port\", got {s:?}")))?;
    let proto = match proto {
        "tcp" => Proto::Tcp,
        "udp" => Proto::Udp,
        other => {
            return Err(SpecError::new(
                field,
                format!("unknown protocol {other:?} (expected tcp or udp)"),
            ));
        }
    };
    let port: u16 = port
        .parse()
        .map_err(|_| SpecError::new(field, format!("bad port {port:?}")))?;
    Ok(Service::new(proto, port))
}

/// Parses a CIDR prefix (`"11.0.0.0/12"`).
pub fn parse_prefix(field: &str, s: &str) -> Result<Prefix, SpecError> {
    s.parse::<Prefix>()
        .map_err(|e| SpecError::new(field, format!("bad prefix {s:?}: {e}")))
}

/// Parses a dotted-quad address.
pub fn parse_ip(field: &str, s: &str) -> Result<Ip, SpecError> {
    s.parse::<Ip>()
        .map_err(|e| SpecError::new(field, format!("bad address {s:?}: {e}")))
}

/// Parses a preference entry `"<dotted-mask>*<weight>"` (`"255.0.0.0*4"`).
pub fn parse_preference_entry(field: &str, s: &str) -> Result<PreferenceEntry, SpecError> {
    let (mask, weight) = s
        .split_once('*')
        .ok_or_else(|| SpecError::new(field, format!("expected \"<mask>*<weight>\", got {s:?}")))?;
    let mask = parse_ip(field, mask)?.value();
    let weight: u32 = weight
        .parse()
        .map_err(|_| SpecError::new(field, format!("bad weight {weight:?}")))?;
    if weight == 0 {
        return Err(SpecError::new(field, "weight must be positive"));
    }
    Ok(PreferenceEntry { mask, weight })
}

/// A parsed filter rule string.
pub struct ParsedFilter {
    /// `"egress"` or `"ingress"`.
    pub direction: String,
    /// The filtered prefix.
    pub prefix: Prefix,
    /// `None` = any service.
    pub service: Option<Service>,
}

/// Parses `"<direction> <prefix> <service>"` (`"egress 163.37.8.0/22
/// udp/1434"`); service `"*"` matches any.
pub fn parse_filter(field: &str, s: &str) -> Result<ParsedFilter, SpecError> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    let [direction, prefix, service] = parts.as_slice() else {
        return Err(SpecError::new(
            field,
            format!("expected \"<direction> <prefix> <service>\", got {s:?}"),
        ));
    };
    if *direction != "egress" && *direction != "ingress" {
        return Err(SpecError::new(
            field,
            format!("unknown direction {direction:?} (expected egress or ingress)"),
        ));
    }
    let prefix = parse_prefix(field, prefix)?;
    let service = if *service == "*" {
        None
    } else {
        Some(parse_service(field, service)?)
    };
    Ok(ParsedFilter {
        direction: (*direction).to_owned(),
        prefix,
        service,
    })
}

fn parse_time(field: &str, role: &str, s: &str) -> Result<f64, SpecError> {
    let x: f64 = s
        .parse()
        .map_err(|_| SpecError::new(field, format!("{role} {s:?} is not a number")))?;
    if !x.is_finite() {
        return Err(SpecError::new(field, format!("{role} must be finite")));
    }
    Ok(x)
}

fn parse_fault_window(field: &str, t0: &str, t1: &str) -> Result<FaultWindow, SpecError> {
    let t0 = parse_time(field, "t0", t0)?;
    let t1 = parse_time(field, "t1", t1)?;
    if t0 < 0.0 {
        return Err(SpecError::new(
            field,
            format!("t0 must be non-negative, got {t0}"),
        ));
    }
    if t1 <= t0 {
        return Err(SpecError::new(
            field,
            format!("window must be non-empty: t1 ({t1}) must exceed t0 ({t0})"),
        ));
    }
    Ok(FaultWindow::new(t0, t1))
}

/// Parses one fault-schedule entry (see [`FaultsSpec::schedule`] for the
/// grammar) into a netmodel [`FaultEvent`].
pub fn parse_fault(field: &str, s: &str) -> Result<FaultEvent, SpecError> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    match parts.as_slice() {
        ["outage", prefix, t0, t1] => Ok(FaultEvent::new(
            FaultKind::SensorOutage {
                block: parse_prefix(field, prefix)?,
            },
            parse_fault_window(field, t0, t1)?,
        )),
        ["blackhole", prefix, t0, t1] => Ok(FaultEvent::new(
            FaultKind::Blackhole {
                prefix: parse_prefix(field, prefix)?,
            },
            parse_fault_window(field, t0, t1)?,
        )),
        ["flap", direction, prefix, service, t0, t1, period, duty] => {
            let prefix = parse_prefix(field, prefix)?;
            let service = if *service == "*" {
                None
            } else {
                Some(parse_service(field, service)?)
            };
            let rule = match *direction {
                "egress" => FilterRule::egress(prefix, service),
                "ingress" => FilterRule::ingress(prefix, service),
                other => {
                    return Err(SpecError::new(
                        field,
                        format!("unknown direction {other:?} (expected egress or ingress)"),
                    ));
                }
            };
            let period = parse_time(field, "period", period)?;
            if period <= 0.0 {
                return Err(SpecError::new(
                    field,
                    format!("period must be positive, got {period}"),
                ));
            }
            let duty = parse_time(field, "duty", duty)?;
            if !(duty > 0.0 && duty <= 1.0) {
                return Err(SpecError::new(
                    field,
                    format!("duty must be in (0, 1], got {duty}"),
                ));
            }
            Ok(FaultEvent::new(
                FaultKind::FilterFlap { rule, period, duty },
                parse_fault_window(field, t0, t1)?,
            ))
        }
        ["degraded", prefix, t0, t1, rate] => {
            let rate = parse_time(field, "rate", rate)?;
            validate_fraction(field, rate)?;
            Ok(FaultEvent::new(
                FaultKind::DegradedLoss {
                    prefix: parse_prefix(field, prefix)?,
                    rate,
                },
                parse_fault_window(field, t0, t1)?,
            ))
        }
        _ => Err(SpecError::new(
            field,
            format!(
                "expected \"outage <prefix> <t0> <t1>\", \"blackhole <prefix> <t0> <t1>\", \
                 \"flap <direction> <prefix> <service> <t0> <t1> <period> <duty>\", or \
                 \"degraded <prefix> <t0> <t1> <rate>\", got {s:?}"
            ),
        )),
    }
}

// ---------------------------------------------------------------------------
// Semantic validation
// ---------------------------------------------------------------------------

fn validate_fraction(field: &str, x: f64) -> Result<(), SpecError> {
    if (0.0..=1.0).contains(&x) {
        Ok(())
    } else {
        Err(SpecError::new(field, format!("must be in [0, 1], got {x}")))
    }
}

fn validate_positive(field: &str, x: f64) -> Result<(), SpecError> {
    if x > 0.0 && x.is_finite() {
        Ok(())
    } else {
        Err(SpecError::new(field, format!("must be positive, got {x}")))
    }
}

fn validate_worm(worm: &WormSpec) -> Result<(), SpecError> {
    match worm {
        WormSpec::Uniform | WormSpec::Slammer | WormSpec::CodeRed2 => Ok(()),
        WormSpec::Blaster { hardware, model } => {
            if !matches!(
                hardware.as_str(),
                "pentium-ii" | "pentium-iii" | "pentium-iv"
            ) {
                return Err(SpecError::new(
                    "worm.hardware",
                    format!(
                        "unknown generation {hardware:?} (expected pentium-ii, pentium-iii, \
                         or pentium-iv)"
                    ),
                ));
            }
            if !matches!(model.as_str(), "reboot" | "population") {
                return Err(SpecError::new(
                    "worm.model",
                    format!("unknown seed model {model:?} (expected reboot or population)"),
                ));
            }
            Ok(())
        }
        WormSpec::HitList { prefixes, service } => {
            if prefixes.is_empty() {
                return Err(SpecError::new("worm.prefixes", "must be non-empty"));
            }
            for (i, p) in prefixes.iter().enumerate() {
                parse_prefix(&format!("worm.prefixes[{i}]"), p)?;
            }
            if let Some(s) = service {
                parse_service("worm.service", s)?;
            }
            Ok(())
        }
        WormSpec::LocalPreference { entries, service } => {
            if entries.is_empty() {
                return Err(SpecError::new("worm.entries", "must be non-empty"));
            }
            for (i, e) in entries.iter().enumerate() {
                parse_preference_entry(&format!("worm.entries[{i}]"), e)?;
            }
            if let Some(s) = service {
                parse_service("worm.service", s)?;
            }
            Ok(())
        }
        WormSpec::Bot { command } => {
            command
                .parse::<hotspots_botnet::BotCommand>()
                .map_err(|e| SpecError::new("worm.command", format!("{e}")))?;
            Ok(())
        }
    }
}

fn validate_env(env: &EnvSpec) -> Result<(), SpecError> {
    if let Some(loss) = env.loss {
        validate_fraction("environment.loss", loss)?;
    }
    for (i, rule) in env.filters.iter().enumerate() {
        parse_filter(&format!("environment.filters[{i}]"), rule)?;
    }
    if let Some(lat) = &env.latency {
        if lat.base_secs < 0.0 || lat.jitter_secs < 0.0 {
            return Err(SpecError::new(
                "environment.latency",
                "delays must be non-negative",
            ));
        }
    }
    if let Some(nat) = &env.nat {
        validate_fraction("environment.nat.fraction", nat.fraction)?;
        if !matches!(nat.topology.as_str(), "isolated" | "shared") {
            return Err(SpecError::new(
                "environment.nat.topology",
                format!(
                    "unknown topology {:?} (expected isolated or shared)",
                    nat.topology
                ),
            ));
        }
    }
    Ok(())
}

fn validate_faults(faults: &FaultsSpec) -> Result<(), SpecError> {
    for (i, entry) in faults.schedule.iter().enumerate() {
        parse_fault(&format!("faults.schedule[{i}]"), entry)?;
    }
    Ok(())
}

fn validate_pop(pop: &PopSpec) -> Result<(), SpecError> {
    match pop {
        PopSpec::Range {
            base,
            count,
            stride,
        } => {
            parse_ip("population.base", base)?;
            if *count == 0 {
                return Err(SpecError::new("population.count", "must be positive"));
            }
            if u32::try_from(*count).is_err() {
                return Err(SpecError::new(
                    "population.count",
                    format!("{count} exceeds 2^32 - 1"),
                ));
            }
            if *stride == 0 {
                return Err(SpecError::new("population.stride", "must be positive"));
            }
            if u32::try_from(*stride).is_err() {
                return Err(SpecError::new(
                    "population.stride",
                    format!("{stride} exceeds 2^32 - 1"),
                ));
            }
            Ok(())
        }
        PopSpec::Synthetic { size, slash8s, .. } => {
            if *size == 0 {
                return Err(SpecError::new("population.size", "must be positive"));
            }
            if !(1..=200).contains(slash8s) {
                return Err(SpecError::new(
                    "population.slash8s",
                    format!("must be in [1, 200], got {slash8s}"),
                ));
            }
            Ok(())
        }
        PopSpec::Paper { .. } => Ok(()),
        PopSpec::Hosts { addrs } => {
            if addrs.is_empty() {
                return Err(SpecError::new("population.addrs", "must be non-empty"));
            }
            for addr in addrs {
                parse_ip("population.addrs", addr)?;
            }
            Ok(())
        }
        PopSpec::Zipf {
            size,
            slash8s,
            store,
            ..
        } => {
            if *size == 0 {
                return Err(SpecError::new("population.size", "must be positive"));
            }
            if !(1..=200).contains(slash8s) {
                return Err(SpecError::new(
                    "population.slash8s",
                    format!("must be in [1, 200], got {slash8s}"),
                ));
            }
            // each /8 holds at most 2^24 addresses
            if *size > slash8s * (1 << 24) {
                return Err(SpecError::new(
                    "population.size",
                    format!("{size} hosts exceed the capacity of {slash8s} /8s"),
                ));
            }
            if !matches!(store.as_str(), "dense" | "compressed") {
                return Err(SpecError::new(
                    "population.store",
                    format!("unknown store {store:?} (expected dense or compressed)"),
                ));
            }
            Ok(())
        }
    }
}

fn validate_telescope(t: &TelescopeSpec) -> Result<(), SpecError> {
    match t {
        TelescopeSpec::None => Ok(()),
        TelescopeSpec::Field {
            placement, mode, ..
        } => {
            if !matches!(mode.as_str(), "active" | "passive") {
                return Err(SpecError::new(
                    "telescope.mode",
                    format!("unknown mode {mode:?} (expected active or passive)"),
                ));
            }
            match placement {
                PlacementSpec::Prefixes { prefixes } => {
                    if prefixes.is_empty() {
                        return Err(SpecError::new(
                            "telescope.placement.prefixes",
                            "must be non-empty",
                        ));
                    }
                    for (i, p) in prefixes.iter().enumerate() {
                        parse_prefix(&format!("telescope.placement.prefixes[{i}]"), p)?;
                    }
                }
                PlacementSpec::Random { sensors, .. } => {
                    if *sensors == 0 {
                        return Err(SpecError::new(
                            "telescope.placement.sensors",
                            "must be positive",
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

fn validate_sim(sim: &SimSpec) -> Result<(), SpecError> {
    validate_positive("sim.scan_rate", sim.scan_rate)?;
    if sim.scan_rate_sigma < 0.0 || !sim.scan_rate_sigma.is_finite() {
        return Err(SpecError::new(
            "sim.scan_rate_sigma",
            "must be non-negative",
        ));
    }
    if sim.seeds == 0 {
        return Err(SpecError::new("sim.seeds", "must be positive"));
    }
    validate_positive("sim.dt", sim.dt)?;
    if sim.max_time < sim.dt {
        return Err(SpecError::new("sim.max_time", "shorter than one step"));
    }
    if let Some(f) = sim.stop_at_fraction {
        validate_fraction("sim.stop_at_fraction", f)?;
    }
    if sim.removal_rate < 0.0 || !sim.removal_rate.is_finite() {
        return Err(SpecError::new("sim.removal_rate", "must be non-negative"));
    }
    // sim.threads = 0 is legal: "auto", resolved to the machine's
    // available parallelism when the engine config is built.
    Ok(())
}

fn validate_detection(d: &DetectionParams) -> Result<(), SpecError> {
    if d.population == 0 {
        return Err(SpecError::new(
            "study.detection.population",
            "must be positive",
        ));
    }
    if d.seeds == 0 {
        return Err(SpecError::new("study.detection.seeds", "must be positive"));
    }
    validate_positive("study.detection.scan_rate", d.scan_rate)?;
    validate_positive("study.detection.max_time", d.max_time)?;
    validate_fraction("study.detection.stop_at_fraction", d.stop_at_fraction)?;
    Ok(())
}

fn validate_study(study: &StudySpec) -> Result<(), SpecError> {
    match study {
        StudySpec::BlasterCoverage {
            hosts,
            window_secs,
            scan_rate,
            reboot_fraction,
            ..
        } => {
            if *hosts == 0 {
                return Err(SpecError::new("study.hosts", "must be positive"));
            }
            validate_positive("study.window_secs", *window_secs)?;
            validate_positive("study.scan_rate", *scan_rate)?;
            validate_fraction("study.reboot_fraction", *reboot_fraction)?;
        }
        StudySpec::SlammerCoverage { hosts, .. } => {
            if *hosts == 0 {
                return Err(SpecError::new("study.hosts", "must be positive"));
            }
        }
        StudySpec::SlammerHosts { probes_per_host } => {
            if *probes_per_host == 0 {
                return Err(SpecError::new("study.probes_per_host", "must be positive"));
            }
        }
        StudySpec::CodeRedNat {
            hosts,
            probes_per_host,
            nat_fraction,
            ..
        } => {
            if *hosts == 0 {
                return Err(SpecError::new("study.hosts", "must be positive"));
            }
            if *probes_per_host == 0 {
                return Err(SpecError::new("study.probes_per_host", "must be positive"));
            }
            validate_fraction("study.nat_fraction", *nat_fraction)?;
        }
        StudySpec::HitListInfection { detection, sizes }
        | StudySpec::HitListDetection { detection, sizes } => {
            validate_detection(detection)?;
            if sizes.is_empty() {
                return Err(SpecError::new("study.sizes", "must be non-empty"));
            }
        }
        StudySpec::NatDetection {
            detection,
            nat_fraction,
            sensors,
            top_k_slash8s,
        } => {
            validate_detection(detection)?;
            validate_fraction("study.nat_fraction", *nat_fraction)?;
            if *sensors == 0 {
                return Err(SpecError::new("study.sensors", "must be positive"));
            }
            if *top_k_slash8s == 0 {
                return Err(SpecError::new("study.top_k_slash8s", "must be positive"));
            }
        }
        StudySpec::BotCommands { drone, .. } => {
            parse_ip("study.drone", drone)?;
        }
        StudySpec::Filtering {
            infected_per_enterprise,
            infected_per_isp,
            probes_per_host,
            ..
        } => {
            if *infected_per_enterprise == 0 || *infected_per_isp == 0 {
                return Err(SpecError::new(
                    "study.infected_per_enterprise",
                    "infected host counts must be positive",
                ));
            }
            if *probes_per_host == 0 {
                return Err(SpecError::new("study.probes_per_host", "must be positive"));
            }
        }
        StudySpec::Ablations {
            nat_population,
            nat_max_time,
            sensor_hosts,
            sensor_max_time,
            reboot_hosts,
        } => {
            if *nat_population == 0 || *sensor_hosts == 0 || *reboot_hosts == 0 {
                return Err(SpecError::new("study", "populations must be positive"));
            }
            validate_positive("study.nat_max_time", *nat_max_time)?;
            validate_positive("study.sensor_max_time", *sensor_max_time)?;
        }
        StudySpec::Sensitivity {
            trials,
            codered_hosts,
            codered_probes_per_host,
            slammer_hosts,
            ..
        } => {
            if *trials == 0 {
                return Err(SpecError::new("study.trials", "must be positive"));
            }
            if *codered_hosts == 0 || *slammer_hosts == 0 {
                return Err(SpecError::new("study", "host counts must be positive"));
            }
            if *codered_probes_per_host == 0 {
                return Err(SpecError::new(
                    "study.codered_probes_per_host",
                    "must be positive",
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("test");
        spec.meta.artifact = Some("Figure X".into());
        spec.worm = Some(WormSpec::HitList {
            prefixes: vec!["11.11.0.0/16".into()],
            service: Some("udp/1434".into()),
        });
        spec.environment = EnvSpec {
            loss: Some(0.1),
            filters: vec!["egress 163.37.8.0/22 udp/1434".into()],
            latency: Some(LatencySpec {
                base_secs: 0.5,
                jitter_secs: 2.0,
            }),
            nat: Some(NatSpec {
                fraction: 0.5,
                topology: "isolated".into(),
                seed: 7,
            }),
        };
        spec.faults = FaultsSpec {
            schedule: vec![
                "outage 66.66.0.0/16 100 300".into(),
                "blackhole 12.0.0.0/8 50 150".into(),
                "flap ingress 77.0.0.0/8 udp/1434 0 400 10 0.5".into(),
                "degraded 88.0.0.0/8 0 200 0.3".into(),
            ],
        };
        spec.population = Some(PopSpec::Range {
            base: "11.11.0.0".into(),
            count: 300,
            stride: 3,
        });
        spec.telescope = TelescopeSpec::Field {
            placement: PlacementSpec::Random {
                sensors: 100,
                seed: 9,
            },
            alert_threshold: 5,
            mode: "active".into(),
        };
        spec.sim.scan_rate = 30.0;
        spec.sim.stop_at_fraction = Some(0.9);
        spec
    }

    fn study_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("fig5a-test");
        spec.study = Some(StudySpec::HitListInfection {
            detection: DetectionParams {
                population: 10_000,
                slash8s: 47,
                paper_profile: false,
                seeds: 25,
                scan_rate: 10.0,
                alert_threshold: 5,
                max_time: 4_000.0,
                stop_at_fraction: 0.95,
                rng_seed: 0xf15_2006,
            },
            sizes: vec![Some(10), Some(100), Some(1000), None],
        });
        spec
    }

    #[test]
    fn toml_round_trips() {
        for spec in [engine_spec(), study_spec()] {
            spec.validate().expect("valid");
            let toml = spec.to_toml();
            let back = ScenarioSpec::from_toml(&toml).expect("parses");
            assert_eq!(spec, back, "TOML:\n{toml}");
        }
    }

    #[test]
    fn auto_threads_spec_round_trips() {
        // sim.threads = 0 is the "auto" sentinel: it must validate and
        // survive serialization as the literal 0 — resolution to a
        // concrete count happens at build time, never in the spec.
        let mut spec = engine_spec();
        spec.sim.threads = 0;
        spec.validate().expect("0 = auto is valid");
        let back = ScenarioSpec::from_toml(&spec.to_toml()).expect("parses");
        assert_eq!(back.sim.threads, 0);
        assert_eq!(spec, back);
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back.sim.threads, 0);
    }

    #[test]
    fn json_round_trips() {
        for spec in [engine_spec(), study_spec()] {
            let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn unknown_keys_are_named() {
        let mut toml = engine_spec().to_toml();
        toml.push_str("\n[sim]\nscna_rate = 3.0\n");
        // Re-declaring [sim] replaces it; the typo key must be reported.
        let err = ScenarioSpec::from_toml(&toml).unwrap_err();
        assert_eq!(err.field, "sim.scna_rate");
    }

    #[test]
    fn validation_names_fields() {
        let mut spec = engine_spec();
        spec.environment.nat.as_mut().unwrap().fraction = 1.5;
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "environment.nat.fraction");

        let mut spec = engine_spec();
        spec.worm = Some(WormSpec::HitList {
            prefixes: vec!["11.0.0.0/33".into()],
            service: None,
        });
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "worm.prefixes[0]");

        let mut spec = engine_spec();
        spec.population = None;
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "population");
    }

    #[test]
    fn shape_is_exclusive() {
        let mut both = engine_spec();
        both.study = study_spec().study;
        assert_eq!(both.validate().unwrap_err().field, "study");

        let neither = ScenarioSpec::named("empty");
        assert_eq!(neither.validate().unwrap_err().field, "worm");
    }

    #[test]
    fn sizes_encode_full_as_string() {
        let spec = study_spec();
        let toml = spec.to_toml();
        assert!(toml.contains("\"full\""), "TOML:\n{toml}");
    }

    #[test]
    fn sweep_param_must_resolve() {
        let mut spec = engine_spec();
        spec.sweep = Some(SweepSpec {
            param: "sim.scan_rte".into(),
            values: vec![Value::Float(1.0)],
        });
        assert_eq!(spec.validate().unwrap_err().field, "sweep.param");

        spec.sweep = Some(SweepSpec {
            param: "sim.scan_rate".into(),
            values: vec![Value::Float(1.0), Value::Float(2.0)],
        });
        spec.validate().expect("valid sweep");
    }

    #[test]
    fn filter_grammar_parses() {
        let f = parse_filter("x", "egress 163.37.8.0/22 udp/1434").unwrap();
        assert_eq!(f.direction, "egress");
        assert_eq!(f.service, Some(Service::SLAMMER_SQL));
        let f = parse_filter("x", "ingress 10.0.0.0/8 *").unwrap();
        assert!(f.service.is_none());
        assert!(parse_filter("x", "sideways 10.0.0.0/8 *").is_err());
        assert!(parse_filter("x", "egress 10.0.0.0/8").is_err());
    }

    #[test]
    fn fault_grammar_parses() {
        let e = parse_fault("x", "outage 66.66.0.0/16 100 300").unwrap();
        assert!(matches!(e.kind, FaultKind::SensorOutage { .. }));
        assert_eq!(e.window, FaultWindow::new(100.0, 300.0));

        let e = parse_fault("x", "blackhole 12.0.0.0/8 0 50").unwrap();
        assert!(matches!(e.kind, FaultKind::Blackhole { .. }));

        let e = parse_fault("x", "flap egress 10.0.0.0/8 * 0 100 5 0.25").unwrap();
        match e.kind {
            FaultKind::FilterFlap { rule, period, duty } => {
                assert!(rule.src.is_some() && rule.dst.is_none());
                assert!(rule.service.is_none());
                assert_eq!(period, 5.0);
                assert_eq!(duty, 0.25);
            }
            other => panic!("unexpected kind {other:?}"),
        }

        let e = parse_fault("x", "degraded 88.0.0.0/8 10 20 0.5").unwrap();
        assert!(matches!(e.kind, FaultKind::DegradedLoss { rate, .. } if rate == 0.5));

        // malformed entries are rejected with the offending detail
        assert!(parse_fault("x", "outage 66.66.0.0/16 100").is_err());
        assert!(parse_fault("x", "outage 66.66.0.0/33 100 300").is_err());
        assert!(parse_fault("x", "outage 66.66.0.0/16 300 100").is_err());
        assert!(parse_fault("x", "outage 66.66.0.0/16 -5 100").is_err());
        assert!(parse_fault("x", "blackhole 12.0.0.0/8 50 50").is_err());
        assert!(parse_fault("x", "flap sideways 10.0.0.0/8 * 0 100 5 0.5").is_err());
        assert!(parse_fault("x", "flap ingress 10.0.0.0/8 * 0 100 0 0.5").is_err());
        assert!(parse_fault("x", "flap ingress 10.0.0.0/8 * 0 100 5 1.5").is_err());
        assert!(parse_fault("x", "degraded 88.0.0.0/8 10 20 1.5").is_err());
        assert!(parse_fault("x", "meteor 88.0.0.0/8 10 20").is_err());
    }

    #[test]
    fn fault_validation_names_schedule_entries() {
        let mut spec = engine_spec();
        spec.faults.schedule.push("outage nonsense 0 10".into());
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "faults.schedule[4]");
    }

    #[test]
    fn oversized_range_integers_fail_validation() {
        let mut spec = engine_spec();
        spec.population = Some(PopSpec::Range {
            base: "11.11.0.0".into(),
            count: 300,
            stride: u64::from(u32::MAX) + 1,
        });
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "population.stride");

        let mut spec = engine_spec();
        spec.population = Some(PopSpec::Range {
            base: "11.11.0.0".into(),
            count: u64::from(u32::MAX) + 1,
            stride: 1,
        });
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "population.count");
    }

    #[test]
    fn preference_entry_grammar_parses() {
        let e = parse_preference_entry("x", "255.0.0.0*4").unwrap();
        assert_eq!(e.mask, 0xff00_0000);
        assert_eq!(e.weight, 4);
        assert!(parse_preference_entry("x", "255.0.0.0*0").is_err());
        assert!(parse_preference_entry("x", "255.0.0.0").is_err());
    }
}
