//! The typed error hierarchy for the run path.
//!
//! Everything between a command line and an emitted run report reports
//! failure as a [`HotspotsError`]: spec problems keep their dotted-path
//! [`SpecError`], argument problems keep their [`ArgError`], and the
//! runner's own failures (a worker that never produced its result, an
//! I/O failure while emitting) get typed variants instead of panics.
//! Front-ends map an error to a process exit status with
//! [`HotspotsError::exit_code`] — usage and spec mistakes exit 2 (the
//! caller can fix the invocation), runtime failures exit 1.

use std::fmt;

use crate::cli::ArgError;
use crate::spec::SpecError;

/// A failure anywhere on the run path: spec handling, argument
/// parsing, or the runner itself.
#[derive(Debug)]
pub enum HotspotsError {
    /// A spec failed to parse, validate, or build; carries the
    /// dotted-path field that caused it.
    Spec(SpecError),
    /// A rejected command line.
    Args(ArgError),
    /// A worker thread failed to produce its result.
    Worker {
        /// What the workers were running when the result went missing.
        context: String,
    },
    /// An I/O failure, e.g. while reading a spec file or appending a
    /// run report.
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl HotspotsError {
    /// A [`HotspotsError::Worker`] with the given context.
    pub fn worker(context: impl Into<String>) -> HotspotsError {
        HotspotsError::Worker {
            context: context.into(),
        }
    }

    /// The process exit status this error maps to: 2 for mistakes the
    /// caller can fix (bad flags, bad specs), 1 for runtime failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            HotspotsError::Spec(_) | HotspotsError::Args(_) => 2,
            HotspotsError::Worker { .. } | HotspotsError::Io { .. } => 1,
        }
    }
}

impl fmt::Display for HotspotsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HotspotsError::Spec(e) => e.fmt(f),
            HotspotsError::Args(e) => e.fmt(f),
            HotspotsError::Worker { context } => {
                write!(f, "worker failed without a result while {context}")
            }
            HotspotsError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for HotspotsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HotspotsError::Spec(e) => Some(e),
            HotspotsError::Args(e) => Some(e),
            HotspotsError::Worker { .. } => None,
            HotspotsError::Io { source, .. } => Some(source),
        }
    }
}

impl From<SpecError> for HotspotsError {
    fn from(e: SpecError) -> HotspotsError {
        HotspotsError::Spec(e)
    }
}

impl From<ArgError> for HotspotsError {
    fn from(e: ArgError) -> HotspotsError {
        HotspotsError::Args(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        let spec: HotspotsError = SpecError::new("sim.threads", "too large").into();
        assert_eq!(spec.exit_code(), 2);
        assert_eq!(HotspotsError::worker("a sweep").exit_code(), 1);
        let io = HotspotsError::Io {
            context: "reading spec.toml".to_owned(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert_eq!(io.exit_code(), 1);
    }

    #[test]
    fn display_keeps_the_inner_message() {
        let e: HotspotsError = SpecError::new("faults.schedule[0]", "bad window").into();
        let text = e.to_string();
        assert!(text.contains("faults.schedule[0]"), "got: {text}");
        let w = HotspotsError::worker("the hit-list sweep");
        assert!(w.to_string().contains("the hit-list sweep"));
    }
}
