//! Declarative scenario layer for the hotspots reproduction.
//!
//! Everything the repository can simulate — worm targeting models,
//! network environments, populations, telescope deployments, the
//! figure/table studies — is describable as a [`ScenarioSpec`]: a plain
//! data tree that round-trips through TOML and JSON, validates with
//! errors naming the offending field, and builds into the concrete
//! engine or study types. A [`registry`] of named presets covers every
//! paper artifact (`fig1`…`fig5c`, `table1`, `table2`, the cross-mode
//! determinism scenarios, the bench workloads), and [`run::run_spec`]
//! executes any spec through the telemetry [`ReportBuilder`] so the
//! `hotspots` CLI, the experiment binaries, and the test suites all
//! share one execution path.
//!
//! The determinism contract: the same spec and seed produce the same
//! run report at any thread count (per-host SplitMix64 streams plus
//! input-order result collection — see `DESIGN.md` §5d).

#![forbid(unsafe_code)]

pub mod build;
pub mod cli;
pub mod error;
pub mod registry;
pub mod run;
pub mod spec;
pub mod value;

pub use build::{BuildError, Built};
pub use cli::{experiment_flags, parse_flags, usage, ArgError, FlagSpec, ParsedArgs, Scale};
pub use error::HotspotsError;
pub use registry::{find_preset, presets, Preset};
pub use run::{fold_run, fold_sim_result, run_spec, Outcome, RunContext, RunSet, ScenarioRun};
pub use spec::{
    DetectionParams, EnvSpec, FaultsSpec, MetaSpec, PopSpec, ScenarioSpec, SimSpec, SpecError,
    StudySpec, SweepSpec, TelescopeSpec, WormSpec,
};
pub use value::{ParseError, Value};

pub use hotspots_telemetry::{ReportBuilder, RunReport, RUN_REPORT_ENV};
