//! Named scenario presets: every paper artifact the repository
//! regenerates, plus the cross-mode determinism scenarios and the bench
//! workloads, each as a [`ScenarioSpec`] factory.
//!
//! A preset is parameterized only by [`Scale`]: `quick` picks the smoke
//! sizes the experiment binaries use under `--quick`, `paper` the
//! full-scale parameters. The factories reproduce the binaries'
//! hard-coded configurations exactly — `hotspots run fig2 --quick` and
//! `fig2_slammer --quick` emit the same run report because they execute
//! the same spec.

use crate::cli::Scale;
use crate::spec::{
    DetectionParams, EnvSpec, FaultsSpec, LatencySpec, NatSpec, PlacementSpec, PopSpec,
    ScenarioSpec, SimSpec, StudySpec, TelescopeSpec, WormSpec,
};

/// A named, registered scenario.
pub struct Preset {
    /// Registry name (`"fig2"`).
    pub name: &'static str,
    /// The dedicated experiment binary (`"fig2_slammer"`), or the
    /// preset family's runner for cross-mode/bench presets.
    pub binary: &'static str,
    /// Banner artifact label (`"FIGURE 2"`).
    pub artifact: &'static str,
    /// Scenario label echoed in run reports (`"Figure 2"`).
    pub scenario: &'static str,
    /// One-line banner title.
    pub title: &'static str,
    /// What in the source paper this maps to (`list --verbose`).
    pub paper: &'static str,
    /// Grouping: `"figure"`, `"table"`, `"analysis"`, `"cross-mode"`,
    /// `"bench"`.
    pub family: &'static str,
    spec_fn: fn(Scale) -> ScenarioSpec,
}

impl Preset {
    /// Instantiates the preset's spec at `scale`, with `meta` filled
    /// from the registry entry.
    pub fn spec(&self, scale: Scale) -> ScenarioSpec {
        let mut spec = (self.spec_fn)(scale);
        spec.meta.name = self.name.to_owned();
        spec.meta.scenario = Some(self.scenario.to_owned());
        spec.meta.artifact = Some(self.artifact.to_owned());
        spec.meta.title = Some(self.title.to_owned());
        spec.meta.scale = Some(scale.label().to_owned());
        spec
    }
}

impl std::fmt::Debug for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Preset")
            .field("name", &self.name)
            .field("binary", &self.binary)
            .field("family", &self.family)
            .finish()
    }
}

/// All registered presets, in display order.
pub fn presets() -> &'static [Preset] {
    &PRESETS
}

/// Looks up a preset by registry name.
pub fn find_preset(name: &str) -> Option<&'static Preset> {
    PRESETS.iter().find(|p| p.name == name)
}

fn named_study(study: StudySpec) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("");
    spec.study = Some(study);
    spec
}

fn dense_engine(worm: WormSpec, count: u64, sim: SimSpec) -> ScenarioSpec {
    engine_spec(
        worm,
        PopSpec::Range {
            base: "11.11.0.0".to_owned(),
            count,
            stride: 1,
        },
        EnvSpec::default(),
        sim,
    )
}

fn engine_spec(
    worm: WormSpec,
    population: PopSpec,
    environment: EnvSpec,
    sim: SimSpec,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("");
    spec.worm = Some(worm);
    spec.population = Some(population);
    spec.environment = environment;
    spec.sim = sim;
    spec
}

fn xmode_hitlist_worm() -> WormSpec {
    WormSpec::HitList {
        prefixes: vec!["11.11.0.0/16".to_owned()],
        service: None,
    }
}

fn fig5_detection(scale: Scale, max_time_quick: f64, max_time_paper: f64) -> DetectionParams {
    DetectionParams {
        population: scale.pick(10_000, 134_586),
        slash8s: 47,
        paper_profile: scale.pick(false, true),
        seeds: 25,
        scan_rate: 10.0,
        alert_threshold: 5,
        max_time: scale.pick(max_time_quick, max_time_paper),
        stop_at_fraction: 0.95,
        rng_seed: 0xf15_2006,
    }
}

fn fig5_sizes() -> Vec<Option<u64>> {
    vec![Some(10), Some(100), Some(1000), None]
}

static PRESETS: [Preset; 24] = [
    Preset {
        name: "fig1",
        binary: "fig1_blaster",
        artifact: "FIGURE 1",
        scenario: "Figure 1",
        title: "Blaster unique sources by destination /24 (boot-time seeding)",
        paper: "Figure 1: Blaster hotspots from boot-time PRNG seeding (§3.1)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::BlasterCoverage {
                hosts: scale.pick(5_000, 60_000),
                window_secs: scale.pick(7.0, 30.0) * 24.0 * 3600.0,
                scan_rate: 11.0,
                reboot_fraction: 0.5,
                rng_seed: 0xb1a5_7e12,
            })
        },
    },
    Preset {
        name: "fig2",
        binary: "fig2_slammer",
        artifact: "FIGURE 2",
        scenario: "Figure 2",
        title: "Slammer unique sources by destination /24 (flawed LCG cycles)",
        paper: "Figure 2: Slammer per-/24 bias from the broken LCG (§3.2)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::SlammerCoverage {
                hosts: scale.pick(20_000, 75_000),
                m_block_filter: true,
                rng_seed: 0x51a3_3e12,
            })
        },
    },
    Preset {
        name: "fig3",
        binary: "fig3_slammer_hosts",
        artifact: "FIGURE 3",
        scenario: "Figure 3",
        title: "per-host Slammer scanning bias and the LCG cycle periods",
        paper: "Figure 3: two Slammer hosts' footprints + cycle periods (§3.2)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::SlammerHosts {
                probes_per_host: scale.pick(200_000, 20_000_000),
            })
        },
    },
    Preset {
        name: "fig4",
        binary: "fig4_codered_nat",
        artifact: "FIGURE 4",
        scenario: "Figure 4",
        title: "CodeRedII × NAT topology: the 192/8 hotspot",
        paper: "Figure 4: CodeRedII 192/8 spike from NATted local preference (§3.3)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::CodeRedNat {
                hosts: scale.pick(3_000, 12_000),
                probes_per_host: scale.pick(8_000, 20_000),
                nat_fraction: 0.15,
                rng_seed: 0xc0de_4ed2,
                quarantine_probes_public: scale.pick(500_000, 7_567_093),
                quarantine_probes_natted: scale.pick(500_000, 7_567_361),
                quarantine_seed: 4,
            })
        },
    },
    Preset {
        name: "fig5a",
        binary: "fig5a_hitlist_infection",
        artifact: "FIGURE 5(a)",
        scenario: "Figure 5(a)",
        title: "infection rate vs time for 4 hit-list sizes",
        paper: "Figure 5(a): hit-list size vs infection speed (§4)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::HitListInfection {
                detection: fig5_detection(scale, 4_000.0, 20_000.0),
                sizes: fig5_sizes(),
            })
        },
    },
    Preset {
        name: "fig5b",
        binary: "fig5b_hitlist_detection",
        artifact: "FIGURE 5(b)",
        scenario: "Figure 5(b)",
        title: "sensor detection rate vs time for 4 hit-list sizes",
        paper: "Figure 5(b): hit-list size vs sensor alert rate (§4)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::HitListDetection {
                detection: fig5_detection(scale, 4_000.0, 20_000.0),
                sizes: fig5_sizes(),
            })
        },
    },
    Preset {
        name: "fig5c",
        binary: "fig5c_nat_detection",
        artifact: "FIGURE 5(c)",
        scenario: "Figure 5(c)",
        title: "sensor placement vs the NAT-driven 192/8 hotspot",
        paper: "Figure 5(c): sensor placement vs the NAT hotspot (§4)",
        family: "figure",
        spec_fn: |scale| {
            named_study(StudySpec::NatDetection {
                detection: fig5_detection(scale, 3_000.0, 12_000.0),
                nat_fraction: 0.15,
                sensors: scale.pick(1_000, 10_000),
                top_k_slash8s: 20,
            })
        },
    },
    Preset {
        name: "table1",
        binary: "table1_bot_commands",
        artifact: "TABLE 1",
        scenario: "Table 1",
        title: "botnet scan commands and their hit-lists",
        paper: "Table 1: captured bot propagation commands and hit-lists (§3.4)",
        family: "table",
        spec_fn: |scale| {
            named_study(StudySpec::BotCommands {
                synthetic_commands: scale.pick(40, 400),
                corpus_seed: 0x7ab1e,
                drone: "141.20.33.7".to_owned(),
            })
        },
    },
    Preset {
        name: "table2",
        binary: "table2_filtering",
        artifact: "TABLE 2",
        scenario: "Table 2",
        title: "enterprise egress filtering hides infections from the telescope",
        paper: "Table 2: enterprise vs ISP filtering and observed sources (§3.5)",
        family: "table",
        spec_fn: |scale| {
            named_study(StudySpec::Filtering {
                infected_per_enterprise: scale.pick(100, 800),
                infected_per_isp: scale.pick(1_000, 20_000),
                probes_per_host: scale.pick(4_000, 12_000),
                blaster_scan_len: (30.0 * 24.0 * 3600.0 * 11.0) as u64,
                rng_seed: 0x7ab1e2,
            })
        },
    },
    Preset {
        name: "ablations",
        binary: "ablations",
        artifact: "ABLATIONS",
        scenario: "design-decision ablations",
        title: "design-decision ablations",
        paper: "beyond the paper: NAT topology, sensor mode, reboot fraction (DESIGN.md §5)",
        family: "analysis",
        spec_fn: |scale| {
            named_study(StudySpec::Ablations {
                nat_population: scale.pick(5_000, 40_000),
                nat_max_time: scale.pick(2_500.0, 6_000.0),
                sensor_hosts: scale.pick(800, 3_000),
                sensor_max_time: scale.pick(1_500.0, 3_000.0),
                reboot_hosts: scale.pick(3_000, 20_000),
            })
        },
    },
    Preset {
        name: "sensitivity",
        binary: "sensitivity",
        artifact: "SENSITIVITY",
        scenario: "placement sensitivity",
        title: "case studies over randomized sensor placements",
        paper: "beyond the paper: conclusions under randomized telescope placement (DESIGN.md §2)",
        family: "analysis",
        spec_fn: |scale| {
            named_study(StudySpec::Sensitivity {
                trials: scale.pick(3, 8),
                codered_hosts: scale.pick(1_200, 6_000),
                codered_probes_per_host: scale.pick(8_000, 15_000),
                slammer_hosts: scale.pick(10_000, 40_000),
                rng_seed: 0x5ee0,
            })
        },
    },
    Preset {
        name: "fig5-outage",
        binary: "hotspots",
        artifact: "FIGURE 5 + OUTAGE",
        scenario: "fig5-outage",
        title: "quorum detection misses the outbreak during a sensor outage",
        paper: "beyond the paper: Figure 5(b) detection under sensor failure (DESIGN.md §5e)",
        family: "analysis",
        spec_fn: |scale| {
            // the worm scans both the populated /16 and the dark sensor
            // /16, so the field would normally alert early in the run
            let mut spec = engine_spec(
                WormSpec::HitList {
                    prefixes: vec!["11.11.0.0/16".to_owned(), "66.66.0.0/16".to_owned()],
                    service: None,
                },
                PopSpec::Range {
                    base: "11.11.0.0".to_owned(),
                    count: scale.pick(400, 2_000),
                    stride: 1,
                },
                EnvSpec::default(),
                SimSpec {
                    scan_rate: 20.0,
                    seeds: 5,
                    max_time: scale.pick(120.0, 600.0),
                    stop_at_fraction: Some(0.95),
                    rng_seed: 0xfa17,
                    ..SimSpec::default()
                },
            );
            spec.telescope = TelescopeSpec::Field {
                placement: PlacementSpec::Prefixes {
                    prefixes: (0..16u32)
                        .map(|i| format!("66.66.{}.0/24", i * 16))
                        .collect(),
                },
                alert_threshold: 5,
                mode: "active".to_owned(),
            };
            // the sensor block fails for the growth phase: probes that
            // would have tripped the quorum are consumed by the outage
            spec.faults = FaultsSpec {
                schedule: vec![format!("outage 66.66.0.0/16 0 {}", scale.pick(90, 450))],
            };
            spec
        },
    },
    Preset {
        name: "xmode-uniform",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-uniform",
        title: "uniform worm, dense /16 population",
        paper: "determinism harness: uniform scanning (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            dense_engine(
                WormSpec::Uniform,
                200,
                SimSpec {
                    scan_rate: 40.0,
                    seeds: 8,
                    max_time: 40.0,
                    rng_seed: 11,
                    ..SimSpec::default()
                },
            )
        },
    },
    Preset {
        name: "xmode-blaster",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-blaster",
        title: "Blaster reboot seeding under 20% loss",
        paper: "determinism harness: sequential scanning + loss (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = dense_engine(
                WormSpec::Blaster {
                    hardware: "pentium-iv".to_owned(),
                    model: "reboot".to_owned(),
                },
                150,
                SimSpec {
                    scan_rate: 25.0,
                    seeds: 6,
                    max_time: 60.0,
                    rng_seed: 12,
                    ..SimSpec::default()
                },
            );
            spec.environment.loss = Some(0.2);
            spec
        },
    },
    Preset {
        name: "xmode-slammer",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-slammer",
        title: "Slammer LCG walk with rate dispersion under 10% loss",
        paper: "determinism harness: LCG scanning + rate dispersion (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = dense_engine(
                WormSpec::Slammer,
                300,
                SimSpec {
                    scan_rate: 30.0,
                    scan_rate_sigma: 1.0,
                    seeds: 10,
                    max_time: 50.0,
                    rng_seed: 13,
                    ..SimSpec::default()
                },
            );
            spec.environment.loss = Some(0.1);
            spec
        },
    },
    Preset {
        name: "xmode-codered2-nat",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-codered2-nat",
        title: "CodeRedII local preference over a half-NATted population",
        paper: "determinism harness: local preference + NAT realms (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = engine_spec(
                WormSpec::CodeRed2,
                PopSpec::Range {
                    base: "11.11.0.0".to_owned(),
                    count: 250,
                    stride: 3,
                },
                EnvSpec::default(),
                SimSpec {
                    scan_rate: 60.0,
                    seeds: 6,
                    max_time: 120.0,
                    stop_at_fraction: Some(0.9),
                    rng_seed: 14,
                    ..SimSpec::default()
                },
            );
            spec.environment.nat = Some(NatSpec {
                fraction: 0.5,
                topology: "isolated".to_owned(),
                seed: 7,
            });
            spec
        },
    },
    Preset {
        name: "xmode-hitlist",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-hitlist",
        title: "hit-list worm over a dense /16",
        paper: "determinism harness: hit-list targeting + early stop (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            dense_engine(
                xmode_hitlist_worm(),
                400,
                SimSpec {
                    scan_rate: 10.0,
                    seeds: 5,
                    max_time: 600.0,
                    stop_at_fraction: Some(0.95),
                    rng_seed: 15,
                    ..SimSpec::default()
                },
            )
        },
    },
    Preset {
        name: "xmode-hitlist-latency",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-hitlist-latency",
        title: "hit-list worm under latency, loss, dispersion, and removal",
        paper: "determinism harness: the heaviest engine configuration (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = dense_engine(
                xmode_hitlist_worm(),
                300,
                SimSpec {
                    scan_rate: 12.0,
                    scan_rate_sigma: 0.6,
                    seeds: 6,
                    max_time: 500.0,
                    removal_rate: 0.004,
                    rng_seed: 16,
                    ..SimSpec::default()
                },
            );
            spec.environment.latency = Some(LatencySpec {
                base_secs: 0.5,
                jitter_secs: 2.0,
            });
            spec.environment.loss = Some(0.1);
            spec
        },
    },
    Preset {
        name: "xmode-outage",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-outage",
        title: "hit-list worm through a sensor outage and a flapping filter",
        paper: "determinism harness: fault schedule — outage + flap (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = dense_engine(
                xmode_hitlist_worm(),
                300,
                SimSpec {
                    scan_rate: 15.0,
                    seeds: 6,
                    max_time: 80.0,
                    rng_seed: 17,
                    ..SimSpec::default()
                },
            );
            spec.faults = FaultsSpec {
                schedule: vec![
                    "outage 11.11.64.0/18 10 40".to_owned(),
                    "flap ingress 11.11.128.0/18 * 0 80 8 0.5".to_owned(),
                ],
            };
            spec
        },
    },
    Preset {
        name: "xmode-blackhole",
        binary: "hotspots",
        artifact: "CROSS-MODE",
        scenario: "xmode-blackhole",
        title: "hit-list worm through an upstream blackhole and degraded loss",
        paper:
            "determinism harness: fault schedule — blackhole + degraded loss (no paper artifact)",
        family: "cross-mode",
        spec_fn: |_| {
            let mut spec = dense_engine(
                xmode_hitlist_worm(),
                300,
                SimSpec {
                    scan_rate: 15.0,
                    seeds: 6,
                    max_time: 80.0,
                    rng_seed: 18,
                    ..SimSpec::default()
                },
            );
            spec.faults = FaultsSpec {
                schedule: vec![
                    // the blackhole matches source hosts too, so the
                    // outbreak stalls completely inside [5, 30)
                    "blackhole 11.11.0.0/18 5 30".to_owned(),
                    "degraded 11.11.192.0/18 0 60 0.3".to_owned(),
                ],
            };
            spec
        },
    },
    Preset {
        name: "fig2-million",
        binary: "hotspots",
        artifact: "FIGURE 2 AT SCALE",
        scenario: "fig2-million",
        title: "Slammer LCG bias over a 1M-host Internet-scale population",
        paper: "Figure 2 extended: per-/24 bias with 1M+ Zipf-placed vulnerable hosts (§3.2)",
        family: "figure",
        spec_fn: |scale| {
            engine_spec(
                WormSpec::Slammer,
                PopSpec::Zipf {
                    size: scale.pick(1_100_000, 2_200_000),
                    slash8s: 47,
                    seed: 0x51a3_2006,
                    store: "compressed".to_owned(),
                },
                EnvSpec::default(),
                // Paper scale stays pre-saturation: at 2.2M hosts a
                // scan rate past ~300/s saturates the population and
                // the per-step probe batch (held in memory for the
                // observer) grows toward hosts × rate entries.
                SimSpec {
                    scan_rate: scale.pick(50.0, 300.0),
                    seeds: 25,
                    max_time: scale.pick(20.0, 50.0),
                    rng_seed: 20,
                    ..SimSpec::default()
                },
            )
        },
    },
    Preset {
        name: "bench-hitlist",
        binary: "hotspots",
        artifact: "BENCH",
        scenario: "bench-hitlist",
        title: "hit-list outbreak, 5k hosts / 100 s (Criterion workload)",
        paper: "engine throughput workload (BENCH_engine.json; no paper artifact)",
        family: "bench",
        spec_fn: |scale| {
            engine_spec(
                WormSpec::HitList {
                    prefixes: vec!["11.0.0.0/12".to_owned()],
                    service: None,
                },
                PopSpec::Range {
                    base: "11.0.0.0".to_owned(),
                    count: 5_000,
                    stride: 37,
                },
                EnvSpec::default(),
                SimSpec {
                    scan_rate: 10.0,
                    seeds: 25,
                    max_time: scale.pick(25.0, 100.0),
                    rng_seed: 1,
                    ..SimSpec::default()
                },
            )
        },
    },
    Preset {
        name: "bench-slammer",
        binary: "hotspots",
        artifact: "BENCH",
        scenario: "bench-slammer",
        title: "Slammer probe-pipeline throughput, 5k hosts (timed run)",
        paper: "engine throughput workload (BENCH_engine.json; no paper artifact)",
        family: "bench",
        spec_fn: |scale| {
            engine_spec(
                WormSpec::Slammer,
                PopSpec::Range {
                    base: "11.0.0.0".to_owned(),
                    count: 5_000,
                    stride: 37,
                },
                EnvSpec::default(),
                SimSpec {
                    scan_rate: scale.pick(200.0, 2_000.0),
                    seeds: 25,
                    max_time: scale.pick(60.0, 300.0),
                    rng_seed: 7,
                    ..SimSpec::default()
                },
            )
        },
    },
    Preset {
        name: "bench-million",
        binary: "hotspots",
        artifact: "BENCH",
        scenario: "bench-million",
        title: "Slammer over 1M+ Zipf-placed hosts (compressed store)",
        paper:
            "Internet-scale engine workload: memory + throughput at 1M hosts (BENCH_engine.json)",
        family: "bench",
        spec_fn: |scale| {
            engine_spec(
                WormSpec::Slammer,
                PopSpec::Zipf {
                    size: scale.pick(1_050_000, 4_200_000),
                    slash8s: 47,
                    seed: 0x2006_2006,
                    store: "compressed".to_owned(),
                },
                EnvSpec::default(),
                // Pre-saturation parameters (see fig2-million): the
                // bench measures the probe pipeline at 1M+ hosts, not
                // a fully saturated population's per-step batch.
                SimSpec {
                    scan_rate: scale.pick(100.0, 200.0),
                    seeds: 25,
                    max_time: scale.pick(30.0, 40.0),
                    rng_seed: 21,
                    ..SimSpec::default()
                },
            )
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = presets().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets().len());
    }

    #[test]
    fn every_preset_validates_at_both_scales() {
        for preset in presets() {
            for scale in [Scale::Quick, Scale::Paper] {
                let spec = preset.spec(scale);
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} @ {:?}: {e}", preset.name, scale));
            }
        }
    }

    #[test]
    fn every_preset_round_trips_through_toml() {
        for preset in presets() {
            let spec = preset.spec(Scale::Quick);
            let toml = spec.to_toml();
            let back = ScenarioSpec::from_toml(&toml)
                .unwrap_or_else(|e| panic!("{}: {e}\n{toml}", preset.name));
            assert_eq!(spec, back, "{} TOML round-trip", preset.name);
        }
    }

    #[test]
    fn engine_presets_build() {
        for preset in presets() {
            let spec = preset.spec(Scale::Quick);
            if spec.study.is_none() {
                spec.build()
                    .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            }
        }
    }

    #[test]
    fn find_preset_resolves_names() {
        assert!(find_preset("fig2").is_some());
        assert!(find_preset("xmode-slammer").is_some());
        assert!(find_preset("nope").is_none());
    }
}
