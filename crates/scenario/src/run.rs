//! Executing a [`ScenarioSpec`]: one entry point shared by the
//! `hotspots` CLI, the experiment binaries, and the test suites.
//!
//! [`run_spec`] performs the scenario's computation and folds its
//! accounting into a telemetry [`ReportBuilder`] in a fixed order, so a
//! spec produces the *same* run report no matter which front-end runs
//! it. Rendering (tables, bar charts, curves) is separate: the returned
//! [`Outcome`] carries the raw results for the presentation layer in
//! `hotspots-experiments`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use hotspots::scenarios::blaster::{sources_by_block, BlasterStudy};
use hotspots::scenarios::codered::{quarantine_run, sources_by_block_accounted, CodeRedStudy};
use hotspots::scenarios::detection::{
    hitlist_runs, nat_run, nat_run_with_topology, DetectionStudy, HitListRun, NatRun, NatTopology,
    Placement,
};
use hotspots::scenarios::filtering::{table2_with_accounting, FilteringStudy, Table2Row};
use hotspots::scenarios::slammer::{
    block_cycle_length_sums, host_histogram, sources_by_block_with, unique_sources_per_block,
    SlammerStudy,
};
use hotspots::scenarios::CoverageRow;
use hotspots::HotspotReport;
use hotspots_botnet::corpus;
use hotspots_ipspace::{ims_deployment, random_ims_deployment, AddressBlock, Bucket24, Ip, Prefix};
use hotspots_netmodel::{DeliveryLedger, Environment, Service};
use hotspots_prng::cycles::AffineMap;
use hotspots_prng::SqlsortDll;
use hotspots_sim::{
    fold_ledger, Engine, FieldObserver, HitListWorm, NullObserver, Population, SimConfig, SimResult,
};
use hotspots_stats::CountHistogram;
use hotspots_targeting::HitList;
use hotspots_telemetry::ReportBuilder;
use hotspots_telescope::{DetectorField, SensorMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::build::{resolve_threads, spec_u32, spec_usize};
use crate::error::HotspotsError;
use crate::spec::{parse_ip, DetectionParams, ScenarioSpec, SpecError, StudySpec};

/// Front-end context for a run: the binary name stamped into the run
/// report and an optional worker-thread override.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// The `binary` field of the emitted run report.
    pub binary: String,
    /// Worker threads: overrides `sim.threads` on the engine path and
    /// the sweep pool size on the study path. `None` = the spec's value
    /// (engine) / all cores (sweeps). `Some(0)` = auto: resolve to the
    /// machine's available parallelism and record the resolved count in
    /// the report.
    pub threads: Option<usize>,
    /// Force span tracing on for engine runs (as if the spec had
    /// `sim.trace = true`). Used by `hotspots profile`.
    pub trace: bool,
}

impl RunContext {
    /// A context emitting under `binary` with default threading.
    pub fn new(binary: impl Into<String>) -> RunContext {
        RunContext {
            binary: binary.into(),
            threads: None,
            trace: false,
        }
    }

    /// Overrides the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> RunContext {
        self.threads = Some(threads);
        self
    }

    /// Turns span tracing on for engine runs.
    pub fn with_trace(mut self) -> RunContext {
        self.trace = true;
        self
    }
}

/// One executed scenario: the accumulated report (finish with
/// [`ScenarioRun::emit_report`]) plus the raw results for rendering.
pub struct ScenarioRun {
    /// The run report, fully folded; not yet emitted.
    pub report: ReportBuilder,
    /// The scenario's results.
    pub outcome: Outcome,
}

impl ScenarioRun {
    /// Emits the run report (stdout + the `HOTSPOTS_RUN_REPORT` file,
    /// if set), surfacing append failures as [`HotspotsError::Io`] so a
    /// bad report path fails the run loudly instead of being swallowed.
    ///
    /// # Errors
    ///
    /// Returns [`HotspotsError::Io`] when the report file append fails.
    pub fn emit_report(self) -> Result<hotspots_telemetry::RunReport, HotspotsError> {
        self.report.try_emit().map_err(|e| HotspotsError::Io {
            context: format!("appending run report to {}", e.path),
            source: e.source,
        })
    }
}

/// A single host's probe trace for the Figure 3 study.
pub struct SlammerHostTrace {
    /// Display name (`"Host A"`).
    pub name: &'static str,
    /// The host's `sqlsort.dll` variant.
    pub dll: SqlsortDll,
    /// The host's LCG seed.
    pub seed: u32,
    /// The period of the cycle the seed sits on.
    pub cycle_len: u64,
    /// Telescope hits per /24.
    pub hist: CountHistogram<Bucket24>,
}

/// One quarantined-host trace for the Figure 4 study.
pub struct QuarantineTrace {
    /// Row label (`"4(b) public 57.20.3.9"`).
    pub label: String,
    /// Probes drawn.
    pub probes: u64,
    /// Telescope hits per /24.
    pub hist: CountHistogram<Bucket24>,
}

/// One engine run of the sensor-mode ablation.
pub struct SensorModeRun {
    /// Worm transport label (`"TCP worm (CodeRed-style)"`).
    pub transport: String,
    /// Sensor mode under test.
    pub mode: SensorMode,
    /// Sensors that alerted.
    pub alerted: usize,
    /// Total sensors.
    pub sensors: usize,
}

/// One randomized-deployment CodeRedII trial of the sensitivity study.
pub struct CodeRedTrial {
    /// Trial index.
    pub trial: u64,
    /// The randomized deployment.
    pub blocks: Vec<AddressBlock>,
    /// Infected host count.
    pub hosts: usize,
    /// Per-prefix unique sources.
    pub rows: Vec<CoverageRow>,
}

/// One randomized-deployment Slammer trial of the sensitivity study.
pub struct SlammerTrial {
    /// Trial index.
    pub trial: u64,
    /// The randomized deployment.
    pub blocks: Vec<AddressBlock>,
    /// Per-prefix unique sources.
    pub rows: Vec<CoverageRow>,
}

/// The raw results of a scenario, for the presentation layer.
pub enum Outcome {
    /// An engine-path run: one outbreak.
    Engine {
        /// The engine's result.
        result: Box<SimResult>,
        /// The detector field after the run, if the spec deployed one.
        field: Option<DetectorField>,
    },
    /// Figure 1.
    BlasterCoverage {
        /// The study configuration.
        study: BlasterStudy,
        /// Per-prefix unique sources.
        rows: Vec<CoverageRow>,
    },
    /// Figure 2.
    SlammerCoverage {
        /// The study configuration.
        study: SlammerStudy,
        /// Per-prefix unique sources.
        rows: Vec<CoverageRow>,
        /// Per-block unique source totals.
        unique: Vec<(String, u64)>,
        /// The paper's D/H/I cycle-length comparison.
        cycle_sums: Vec<(String, f64)>,
    },
    /// Figure 3.
    SlammerHosts {
        /// Probes drawn per host.
        probes: u64,
        /// The two hosts' traces.
        hosts: Vec<SlammerHostTrace>,
    },
    /// Figure 4.
    CodeRedNat {
        /// The study configuration.
        study: CodeRedStudy,
        /// Per-prefix unique sources (mixed population).
        rows: Vec<CoverageRow>,
        /// The 4(b)/4(c) quarantine traces.
        quarantines: Vec<QuarantineTrace>,
    },
    /// Figure 5(a).
    HitListInfection {
        /// The study configuration.
        study: DetectionStudy,
        /// One run per hit-list size.
        runs: Vec<HitListRun>,
    },
    /// Figure 5(b).
    HitListDetection {
        /// The study configuration.
        study: DetectionStudy,
        /// One run per hit-list size.
        runs: Vec<HitListRun>,
    },
    /// Figure 5(c).
    NatDetection {
        /// The study configuration.
        study: DetectionStudy,
        /// Fraction of hosts behind NAT.
        nat_fraction: f64,
        /// One run per placement.
        runs: Vec<NatRun>,
    },
    /// Table 1.
    BotCommands {
        /// The observing drone's address.
        drone: Ip,
        /// The paper's verbatim commands: (command, range, addresses).
        paper: Vec<(String, String, u64)>,
        /// The synthetic capture's report rows.
        synthetic: Vec<(String, String, u64)>,
        /// Synthetic commands generated.
        synthetic_commands: u64,
        /// Commands restricting propagation below full IPv4.
        restricted: u64,
    },
    /// Table 2.
    Filtering {
        /// The study configuration.
        study: FilteringStudy,
        /// The table rows.
        rows: Vec<Table2Row>,
    },
    /// The ablation suite.
    Ablations {
        /// NAT-topology runs, in `[Shared, Isolated]` order.
        nat: Vec<(NatTopology, NatRun)>,
        /// Sensor-mode engine runs.
        sensor: Vec<SensorModeRun>,
        /// Reboot-fraction sweep: (fraction, hotspot score).
        reboot: Vec<(f64, HotspotReport)>,
    },
    /// The placement-sensitivity sweep.
    Sensitivity {
        /// CodeRedII trials.
        codered: Vec<CodeRedTrial>,
        /// Slammer trials.
        slammer: Vec<SlammerTrial>,
    },
}

// ---------------------------------------------------------------------------
// Report folds (moved here from hotspots-experiments so every front-end
// shares one accounting path)
// ---------------------------------------------------------------------------

/// Folds one sweep run's accounting into a report: its delivery ledger,
/// the population it ran over, its infection count, and its simulated
/// seconds — the fold every sweep repeats per run.
pub fn fold_run(
    report: &mut ReportBuilder,
    ledger: &DeliveryLedger,
    population: u64,
    infections: u64,
    sim_seconds: f64,
) {
    fold_ledger(report, ledger);
    report
        .add_population(population)
        .add_infections(infections)
        .add_sim_seconds(sim_seconds);
}

/// Folds an engine [`SimResult`] into a report: probe accounting,
/// population, infections, simulated time, and — when this crate's
/// `telemetry` feature is on — the engine's per-phase timings and step
/// peak.
pub fn fold_sim_result(report: &mut ReportBuilder, result: &SimResult) {
    fold_ledger(report, &result.ledger);
    report
        .add_population(result.population as u64)
        .add_infections(result.infected as u64)
        .add_sim_seconds(result.elapsed);
    #[cfg(feature = "telemetry")]
    {
        for (name, total, _) in result.telemetry.phases.iter() {
            report.add_phase_seconds(name, total.as_secs_f64());
        }
        report.peak_step_seconds(result.telemetry.peak_step_seconds);
    }
}

/// Runs a set of independent experiment configurations across threads,
/// returning results in input order.
///
/// Each input is handed to the job exactly once, workers pull from a
/// shared queue, and results land in their input's slot — so the output
/// is deterministic (input order) no matter how the OS schedules the
/// workers. Jobs must be independently seeded (as every sweep behind
/// [`run_spec`] is); `RunSet` adds no randomness of its own.
#[derive(Debug, Clone, Copy)]
pub struct RunSet {
    threads: usize,
}

impl Default for RunSet {
    fn default() -> RunSet {
        RunSet::new()
    }
}

impl RunSet {
    /// A run set using all available cores.
    pub fn new() -> RunSet {
        RunSet {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// A run set with an explicit worker count (at least 1).
    pub fn with_threads(threads: usize) -> RunSet {
        RunSet {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` over every input, in parallel, returning the results
    /// in input order.
    ///
    /// Poisoned slot mutexes are recovered rather than unwrapped — each
    /// slot holds a plain `Option` that stays valid whatever happened on
    /// another thread — and a slot that still has no result after every
    /// worker joined surfaces as [`HotspotsError::Worker`] instead of a
    /// panic of our own.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job when the worker scope joins.
    pub fn run<I, R, F>(&self, inputs: Vec<I>, job: F) -> Result<Vec<R>, HotspotsError>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = inputs.len();
        if self.threads <= 1 || n <= 1 {
            return Ok(inputs.into_iter().map(job).collect());
        }
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    // each index is claimed by exactly one worker, so a
                    // vacant slot (impossible today) is simply skipped
                    let input = slots[idx]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                    let Some(input) = input else { continue };
                    let out = job(input);
                    *results[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .ok_or_else(|| HotspotsError::worker("a parallel run set"))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Executes a validated spec, folding its accounting into a fresh
/// report. The report's `binary` comes from `ctx`; its `scenario` is
/// `meta.scenario` (default: `meta.name`); `meta.scale`, when present,
/// is echoed as the first config entry — matching the experiment
/// binaries' reports field for field.
pub fn run_spec(spec: &ScenarioSpec, ctx: &RunContext) -> Result<ScenarioRun, HotspotsError> {
    spec.validate()?;
    let scenario = spec.meta.scenario.as_deref().unwrap_or(&spec.meta.name);
    let mut report = ReportBuilder::new(&ctx.binary, scenario);
    if let Some(scale) = &spec.meta.scale {
        report.config("scale", scale);
    }
    let runset = match ctx.threads {
        // 0 = auto, same as no override: all cores.
        Some(0) | None => RunSet::new(),
        Some(t) => RunSet::with_threads(t),
    };
    let outcome = match &spec.study {
        None => run_engine(spec, ctx, &mut report)?,
        Some(study) => run_study(study, &runset, &mut report)?,
    };
    Ok(ScenarioRun { report, outcome })
}

fn run_engine(
    spec: &ScenarioSpec,
    ctx: &RunContext,
    report: &mut ReportBuilder,
) -> Result<Outcome, HotspotsError> {
    let mut built = spec.build()?;
    // `threads = 0` (spec or context) means auto. `build()` already
    // resolved a spec-level 0, so the engine only ever sees a concrete
    // count; remember the resolution so the report can record what
    // actually ran (a report must replay without re-querying the host).
    let mut auto_threads = (spec.sim.threads == 0).then_some(built.config.threads);
    if let Some(threads) = ctx.threads {
        built.config.threads = resolve_threads(threads);
        auto_threads = (threads == 0).then_some(built.config.threads);
    }
    if ctx.trace {
        built.config.trace = true;
    }
    report
        .config("worm", built.worm.name())
        .config("hosts", built.population.len())
        .config("scan_rate", built.config.scan_rate)
        .config("seeds", built.config.seeds)
        .config("max_time", built.config.max_time)
        .config("rng_seed", built.config.rng_seed);
    if let Some(resolved) = auto_threads {
        // Recorded only when auto-resolved: explicit thread counts are
        // a pure throughput knob and keep reports byte-stable across
        // machines, but an auto run must disclose what it resolved to.
        report.config("threads", resolved);
    }
    if let Some(det) = &built.detector {
        report.config("sensors", det.len());
    }
    let service = built.worm.service();
    let mut engine = Engine::new(
        built.config,
        built.population,
        built.environment,
        built.worm,
    );
    let (result, field) = match built.detector {
        Some(field) => {
            let mut observer = FieldObserver::with_service(field, service);
            let result = engine.run(&mut observer);
            (result, Some(observer.into_field()))
        }
        None => (engine.run(&mut NullObserver), None),
    };
    fold_sim_result(report, &result);
    Ok(Outcome::Engine {
        result: Box::new(result),
        field,
    })
}

fn detection_study(params: &DetectionParams) -> Result<DetectionStudy, SpecError> {
    Ok(DetectionStudy {
        population: spec_usize("study.population", params.population)?,
        slash8s: spec_usize("study.slash8s", params.slash8s)?,
        paper_profile: params.paper_profile,
        seeds: spec_usize("study.seeds", params.seeds)?,
        scan_rate: params.scan_rate,
        alert_threshold: params.alert_threshold,
        max_time: params.max_time,
        stop_at_fraction: params.stop_at_fraction,
        rng_seed: params.rng_seed,
    })
}

fn run_study(
    study: &StudySpec,
    runset: &RunSet,
    out: &mut ReportBuilder,
) -> Result<Outcome, HotspotsError> {
    match study {
        StudySpec::BlasterCoverage {
            hosts,
            window_secs,
            scan_rate,
            reboot_fraction,
            rng_seed,
        } => {
            let study = BlasterStudy {
                hosts: spec_usize("study.hosts", *hosts)?,
                window_secs: *window_secs,
                scan_rate: *scan_rate,
                reboot_fraction: *reboot_fraction,
                rng_seed: *rng_seed,
            };
            // interval-coverage study: closed form, nothing routed
            out.config("hosts", study.hosts)
                .config("window_days", study.window_secs / 86_400.0)
                .config("reboot_fraction", study.reboot_fraction)
                .add_population(study.hosts as u64)
                .add_sim_seconds(study.window_secs);
            let rows = sources_by_block(&study);
            Ok(Outcome::BlasterCoverage { study, rows })
        }
        StudySpec::SlammerCoverage {
            hosts,
            m_block_filter,
            rng_seed,
        } => {
            let mut study = SlammerStudy {
                hosts: spec_usize("study.hosts", *hosts)?,
                rng_seed: *rng_seed,
                ..SlammerStudy::default()
            };
            if *m_block_filter {
                study = study.with_m_block_filter();
            }
            // cycle-exact closed form: per-block coverage comes from the
            // LCG cycle structure, no probes are routed
            out.config("hosts", study.hosts)
                .config("m_block_filter", m_block_filter)
                .add_population(study.hosts as u64);
            let blocks = ims_deployment();
            let rows = sources_by_block_with(&study, &blocks);
            let unique = unique_sources_per_block(&study, &blocks);
            let dhi: Vec<AddressBlock> = blocks
                .iter()
                .filter(|b| ["D", "H", "I"].contains(&b.label()))
                .cloned()
                .collect();
            let cycle_sums = block_cycle_length_sums(&dhi);
            Ok(Outcome::SlammerCoverage {
                study,
                rows,
                unique,
                cycle_sums,
            })
        }
        StudySpec::SlammerHosts { probes_per_host } => {
            let probes = *probes_per_host;
            // raw scanner walks against the telescope index — no
            // environment, so nothing enters the delivery accounting
            out.config("probes_per_host", probes).add_population(2);
            let blocks = ims_deployment();
            // Host A: a seed on I's cycle; Host B: on the Z-block cycle —
            // the paper's pair of extreme per-host footprints.
            let host_a_seed = Ip::from_octets(199, 77, 10, 1).to_le_state();
            let host_b_seed = Ip::from_octets(96, 50, 60, 70).to_le_state();
            let hosts = [
                ("Host A", SqlsortDll::Sp2, host_a_seed),
                ("Host B", SqlsortDll::Gold, host_b_seed),
            ]
            .into_iter()
            .map(|(name, dll, seed)| {
                let cycle_len = AffineMap::slammer(dll)
                    .cycle_length(seed)
                    .expect("fixed point exists"); // hotspots-lint: allow(panic-path) reason="every Slammer-parameter map has a fixed point"
                SlammerHostTrace {
                    name,
                    dll,
                    seed,
                    cycle_len,
                    hist: host_histogram(dll, seed, probes, &blocks),
                }
            })
            .collect();
            Ok(Outcome::SlammerHosts { probes, hosts })
        }
        StudySpec::CodeRedNat {
            hosts,
            probes_per_host,
            nat_fraction,
            rng_seed,
            quarantine_probes_public,
            quarantine_probes_natted,
            quarantine_seed,
        } => {
            let study = CodeRedStudy {
                hosts: spec_usize("study.hosts", *hosts)?,
                nat_fraction: *nat_fraction,
                probes_per_host: *probes_per_host,
                rng_seed: *rng_seed,
            };
            out.config("hosts", study.hosts)
                .config("probes_per_host", study.probes_per_host)
                .config("nat_fraction", study.nat_fraction)
                .add_population(study.hosts as u64);
            let blocks = ims_deployment();
            let (rows, ledger) = sources_by_block_accounted(&study, &blocks);
            fold_ledger(out, &ledger);
            // the quarantine runs scan straight into the telescope index
            // (no environment), so only the mixed run's probes are ledgered
            let quarantines = vec![
                QuarantineTrace {
                    label: "4(b) public 57.20.3.9".to_owned(),
                    probes: *quarantine_probes_public,
                    hist: quarantine_run(
                        Ip::from_octets(57, 20, 3, 9),
                        *quarantine_probes_public,
                        &blocks,
                        *quarantine_seed,
                    ),
                },
                QuarantineTrace {
                    label: "4(c) NATed 192.168.0.100".to_owned(),
                    probes: *quarantine_probes_natted,
                    hist: quarantine_run(
                        Ip::from_octets(192, 168, 0, 100),
                        *quarantine_probes_natted,
                        &blocks,
                        *quarantine_seed,
                    ),
                },
            ];
            Ok(Outcome::CodeRedNat {
                study,
                rows,
                quarantines,
            })
        }
        StudySpec::HitListInfection { detection, sizes } => {
            let study = detection_study(detection)?;
            let runs = hitlist_sweep(&study, sizes, runset)?;
            out.config("population", study.population_size())
                .config("seeds", study.seeds)
                .config("scan_rate", study.scan_rate)
                .config("hit_list_sizes", size_labels(sizes));
            for run in &runs {
                fold_run(
                    out,
                    &run.ledger,
                    study.population_size() as u64,
                    run.infected_hosts,
                    run.sim_seconds,
                );
            }
            Ok(Outcome::HitListInfection { study, runs })
        }
        StudySpec::HitListDetection { detection, sizes } => {
            let study = detection_study(detection)?;
            let runs = hitlist_sweep(&study, sizes, runset)?;
            out.config("population", study.population_size())
                .config("alert_threshold", study.alert_threshold)
                .config("hit_list_sizes", size_labels(sizes));
            for run in &runs {
                fold_run(
                    out,
                    &run.ledger,
                    study.population_size() as u64,
                    run.infected_hosts,
                    run.sim_seconds,
                );
            }
            Ok(Outcome::HitListDetection { study, runs })
        }
        StudySpec::NatDetection {
            detection,
            nat_fraction,
            sensors,
            top_k_slash8s,
        } => {
            let study = detection_study(detection)?;
            let sensors = spec_usize("study.sensors", *sensors)?;
            let placements = vec![
                Placement::Random { sensors },
                Placement::TopSlash8s {
                    sensors,
                    k: spec_usize("study.top_k_slash8s", *top_k_slash8s)?,
                },
                Placement::Inside192,
            ];
            let runs = runset.run(placements, |p| nat_run(&study, *nat_fraction, p))?;
            out.config("population", study.population_size())
                .config("nat_fraction", nat_fraction)
                .config("placements", "Random,TopSlash8s,Inside192");
            for run in &runs {
                fold_run(
                    out,
                    &run.ledger,
                    study.population_size() as u64,
                    run.infected_hosts,
                    run.sim_seconds,
                );
            }
            Ok(Outcome::NatDetection {
                study,
                nat_fraction: *nat_fraction,
                runs,
            })
        }
        StudySpec::BotCommands {
            synthetic_commands,
            corpus_seed,
            drone,
        } => {
            let drone = parse_ip("study.drone", drone)?;
            // grammar/corpus analysis: no probes, no environment
            let paper = corpus::hit_list_report(&corpus::table1(), drone);
            let n = spec_usize("study.synthetic_commands", *synthetic_commands)?;
            let mut rng = StdRng::seed_from_u64(*corpus_seed);
            let commands = corpus::generate(n, &mut rng);
            let synthetic = corpus::hit_list_report(&commands, drone);
            let restricted = synthetic
                .iter()
                .filter(|(_, _, size)| *size < (1u64 << 32))
                .count();
            out.config("synthetic_commands", n)
                .config("restricted", restricted);
            Ok(Outcome::BotCommands {
                drone,
                paper,
                synthetic,
                synthetic_commands: n as u64,
                restricted: restricted as u64,
            })
        }
        StudySpec::Filtering {
            infected_per_enterprise,
            infected_per_isp,
            probes_per_host,
            blaster_scan_len,
            rng_seed,
        } => {
            let study = FilteringStudy {
                infected_per_enterprise: spec_usize(
                    "study.infected_per_enterprise",
                    *infected_per_enterprise,
                )?,
                infected_per_isp: spec_usize("study.infected_per_isp", *infected_per_isp)?,
                probes_per_host: *probes_per_host,
                blaster_scan_len: *blaster_scan_len,
                rng_seed: *rng_seed,
            };
            out.config("infected_per_enterprise", study.infected_per_enterprise)
                .config("infected_per_isp", study.infected_per_isp)
                .config("probes_per_host", study.probes_per_host);
            let (rows, ledger) = table2_with_accounting(&study);
            fold_ledger(out, &ledger);
            out.add_population(rows.iter().map(|r| r.infected_inside).sum::<u64>());
            Ok(Outcome::Filtering { study, rows })
        }
        StudySpec::Ablations {
            nat_population,
            nat_max_time,
            sensor_hosts,
            sensor_max_time,
            reboot_hosts,
        } => Ok(run_ablations(
            spec_usize("study.nat_population", *nat_population)?,
            *nat_max_time,
            spec_u32("study.sensor_hosts", *sensor_hosts)?,
            *sensor_max_time,
            spec_usize("study.reboot_hosts", *reboot_hosts)?,
            out,
        )),
        StudySpec::Sensitivity {
            trials,
            codered_hosts,
            codered_probes_per_host,
            slammer_hosts,
            rng_seed,
        } => {
            let trials = *trials;
            let codered_hosts = spec_usize("study.codered_hosts", *codered_hosts)?;
            let slammer_hosts = spec_usize("study.slammer_hosts", *slammer_hosts)?;
            let mut rng = StdRng::seed_from_u64(*rng_seed);
            out.config("trials", trials);
            let mut ledger = DeliveryLedger::new();
            // Deployments are drawn sequentially from one stream; the
            // independently seeded trials then run across threads.
            let codered_deployments: Vec<(u64, Vec<AddressBlock>)> = (0..trials)
                .map(|trial| (trial, random_ims_deployment(&mut rng)))
                .collect();
            let slammer_deployments: Vec<(u64, Vec<AddressBlock>)> = (0..trials)
                .map(|trial| (trial, random_ims_deployment(&mut rng)))
                .collect();
            let codered_runs = runset.run(codered_deployments, |(trial, blocks)| {
                let study = CodeRedStudy {
                    hosts: codered_hosts,
                    nat_fraction: 0.15,
                    probes_per_host: *codered_probes_per_host,
                    rng_seed: 1_000 + trial,
                };
                let (rows, trial_ledger) = sources_by_block_accounted(&study, &blocks);
                (trial, blocks, study.hosts, rows, trial_ledger)
            })?;
            let mut codered = Vec::new();
            for (trial, blocks, hosts, rows, trial_ledger) in codered_runs {
                ledger.merge(&trial_ledger);
                out.add_population(hosts as u64);
                codered.push(CodeRedTrial {
                    trial,
                    blocks,
                    hosts,
                    rows,
                });
            }
            let slammer = runset
                .run(slammer_deployments, |(trial, blocks)| {
                    let study = SlammerStudy {
                        hosts: slammer_hosts,
                        rng_seed: 2_000 + trial,
                        ..SlammerStudy::default()
                    };
                    let rows = sources_by_block_with(&study, &blocks);
                    (trial, blocks, rows)
                })?
                .into_iter()
                .map(|(trial, blocks, rows)| SlammerTrial {
                    trial,
                    blocks,
                    rows,
                })
                .collect();
            // Slammer trials are cycle-exact (nothing routed); only the
            // CodeRedII trials contribute delivery accounting
            fold_ledger(out, &ledger);
            Ok(Outcome::Sensitivity { codered, slammer })
        }
    }
}

fn hitlist_sweep(
    study: &DetectionStudy,
    sizes: &[Option<u64>],
    runset: &RunSet,
) -> Result<Vec<HitListRun>, HotspotsError> {
    let sizes: Vec<Option<usize>> = sizes
        .iter()
        .map(|s| s.map(|n| spec_usize("study.sizes", n)).transpose())
        .collect::<Result<_, _>>()?;
    // the sweep is embarrassingly parallel: one engine per hit-list size
    runset.run(sizes, |size| hitlist_runs(study, &[size]).remove(0))
}

fn size_labels(sizes: &[Option<u64>]) -> String {
    sizes
        .iter()
        .map(|s| s.map_or_else(|| "full".to_owned(), |n| n.to_string()))
        .collect::<Vec<_>>()
        .join(",")
}

// hotspots-lint: certifies(panic-free) reason="sensor prefixes and hit-list entries are literals that parse"
fn run_ablations(
    nat_population: usize,
    nat_max_time: f64,
    sensor_hosts: u32,
    sensor_max_time: f64,
    reboot_hosts: usize,
    out: &mut ReportBuilder,
) -> Outcome {
    // 1. NAT topology: shared 192.168/16 vs isolated home NATs.
    let nat_study = DetectionStudy {
        population: nat_population,
        slash8s: 20,
        max_time: nat_max_time,
        ..DetectionStudy::default()
    };
    let mut nat = Vec::new();
    for topology in [NatTopology::Shared, NatTopology::Isolated] {
        let run = nat_run_with_topology(&nat_study, 0.15, Placement::Inside192, topology);
        fold_run(
            out,
            &run.ledger,
            nat_study.population_size() as u64,
            run.infected_hosts,
            run.sim_seconds,
        );
        nat.push((topology, run));
    }

    // 2. Sensor mode: active (SYN-ACK responder) vs passive capture.
    // The address set is bespoke (a random BTreeSet inside 66.67/16), so
    // this is the one engine assembly that lives in the runner rather
    // than behind a PopSpec.
    let addrs: Vec<Ip> = {
        let mut rng = StdRng::seed_from_u64(21);
        let mut set = std::collections::BTreeSet::new();
        while (set.len() as u32) < sensor_hosts {
            set.insert(Ip::new(0x4242_0000 | rng.gen::<u32>() & 0xffff));
        }
        set.into_iter().collect()
    };
    let sensors: Vec<Prefix> = (0..16u32)
        .map(|i| format!("66.66.{}.0/24", i * 16).parse().expect("valid"))
        .collect();
    let mut sensor = Vec::new();
    for (proto_name, service) in [
        ("TCP worm (CodeRed-style)", Service::CODERED_HTTP),
        ("UDP worm (Slammer-style)", Service::SLAMMER_SQL),
    ] {
        for mode in [SensorMode::Active, SensorMode::Passive] {
            let field = DetectorField::with_mode(sensors.clone(), 5, mode);
            let mut observer = FieldObserver::with_service(field, service);
            let config = SimConfig {
                scan_rate: 20.0,
                seeds: 10,
                max_time: sensor_max_time,
                stop_at_fraction: Some(0.9),
                ..SimConfig::default()
            };
            // worm targets 66.66/16 (where hosts are NOT — pure noise
            // toward the sensors) plus the host /16
            let both = HitList::new(vec![
                "66.66.0.0/16".parse().expect("valid"),
                "66.67.0.0/16".parse().expect("valid"),
            ])
            .expect("non-empty hit-list");
            let mut engine = Engine::new(
                config,
                Population::from_public(addrs.iter().map(|ip| Ip::new(ip.value() | 0x0001_0000))),
                Environment::new(),
                Box::new(HitListWorm::new(both).with_service(service)),
            );
            let result = engine.run(&mut observer);
            fold_sim_result(out, &result);
            let field = observer.into_field();
            sensor.push(SensorModeRun {
                transport: proto_name.to_owned(),
                mode,
                alerted: field.alerted(),
                sensors: field.len(),
            });
        }
    }

    // 3. Blaster reboot fraction vs Figure 1 hotspot strength.
    let mut reboot = Vec::new();
    for reboot_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let study = BlasterStudy {
            hosts: reboot_hosts,
            window_secs: 7.0 * 24.0 * 3600.0,
            reboot_fraction,
            ..BlasterStudy::default()
        };
        let rows = sources_by_block(&study);
        // score over the /24 rows only: interval-coverage counts do not
        // scale with cell size, so mixing the Z block's /16 rows in would
        // bias the uniform null (see DESIGN.md)
        let counts: Vec<u64> = rows
            .iter()
            .filter(|r| r.prefix.len() == 24)
            .map(|r| r.unique_sources)
            .collect();
        reboot.push((reboot_fraction, HotspotReport::from_counts(&counts)));
    }
    // interval-coverage sweep: closed form, nothing routed
    out.config("reboot_fractions", "0,0.25,0.5,0.75,1");
    Outcome::Ablations {
        nat,
        sensor,
        reboot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PopSpec, SimSpec, WormSpec};

    fn tiny_engine_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("tiny");
        spec.worm = Some(WormSpec::Uniform);
        spec.population = Some(PopSpec::Range {
            base: "11.11.0.1".to_owned(),
            count: 120,
            stride: 1,
        });
        spec.sim = SimSpec {
            scan_rate: 40.0,
            seeds: 6,
            max_time: 30.0,
            stop_at_fraction: None,
            rng_seed: 5,
            ..SimSpec::default()
        };
        spec
    }

    #[test]
    fn run_set_preserves_input_order() {
        let set = RunSet::with_threads(4);
        let out = set.run((0..64).collect(), |i| i * 2).expect("runs");
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_set_single_thread_and_empty_inputs() {
        let out = RunSet::with_threads(1).run(vec![3, 1], |i| i + 1).unwrap();
        assert_eq!(out, [4, 2]);
        let empty: Vec<i32> = RunSet::with_threads(8).run(Vec::new(), |i: i32| i).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn fold_run_accumulates() {
        let mut report = ReportBuilder::new("t", "t");
        let ledger = DeliveryLedger::new();
        fold_run(&mut report, &ledger, 10, 3, 5.0);
        fold_run(&mut report, &ledger, 10, 4, 5.0);
        let built = report.build();
        assert_eq!(built.population, 20);
        assert_eq!(built.infections, 7);
        assert!((built.sim_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn engine_path_runs_and_reports() {
        let spec = tiny_engine_spec();
        let run = run_spec(&spec, &RunContext::new("test")).expect("runs");
        match run.outcome {
            Outcome::Engine { result, field } => {
                assert!(result.probes_sent > 0);
                assert!(field.is_none());
            }
            _ => panic!("expected engine outcome"),
        }
        let report = run.report.build();
        assert_eq!(report.binary, "test");
        assert_eq!(report.population, 120);
    }

    #[test]
    fn engine_path_is_thread_count_invariant() {
        let spec = tiny_engine_spec();
        let base = run_spec(&spec, &RunContext::new("t"))
            .expect("runs")
            .report
            .build();
        for threads in [2, 4] {
            let report = run_spec(&spec, &RunContext::new("t").with_threads(threads))
                .expect("runs")
                .report
                .build();
            assert_eq!(report.probes_sent, base.probes_sent);
            assert_eq!(report.infections, base.infections);
            assert_eq!(report.config, base.config);
        }
    }

    #[test]
    fn auto_threads_records_resolved_count() {
        // threads = 0 (spec or CLI override) resolves to the machine's
        // available parallelism, and the report must disclose the
        // resolved count — never the 0 sentinel. Explicit counts record
        // nothing, keeping reports byte-stable across machines.
        let threads_entry = |report: &hotspots_telemetry::RunReport| {
            report
                .config
                .iter()
                .find(|(k, _)| k == "threads")
                .map(|(_, v)| v.clone())
        };
        let spec = tiny_engine_spec();
        let base = run_spec(&spec, &RunContext::new("t"))
            .expect("runs")
            .report
            .build();
        assert_eq!(threads_entry(&base), None);

        let auto = run_spec(&spec, &RunContext::new("t").with_threads(0))
            .expect("runs")
            .report
            .build();
        let resolved = threads_entry(&auto).expect("auto run records threads");
        assert!(resolved.parse::<usize>().expect("count") >= 1);
        assert_eq!(auto.probes_sent, base.probes_sent);
        assert_eq!(auto.infections, base.infections);

        let mut spec_auto = tiny_engine_spec();
        spec_auto.sim.threads = 0;
        let from_spec = run_spec(&spec_auto, &RunContext::new("t"))
            .expect("runs")
            .report
            .build();
        assert_eq!(threads_entry(&from_spec), Some(resolved));
        assert_eq!(from_spec.probes_sent, base.probes_sent);
    }

    #[test]
    fn study_path_slammer_hosts_reports() {
        let mut spec = ScenarioSpec::named("fig3-test");
        spec.study = Some(StudySpec::SlammerHosts {
            probes_per_host: 2_000,
        });
        let run = run_spec(&spec, &RunContext::new("t")).expect("runs");
        match run.outcome {
            Outcome::SlammerHosts { probes, hosts } => {
                assert_eq!(probes, 2_000);
                assert_eq!(hosts.len(), 2);
                assert!(hosts.iter().all(|h| h.cycle_len > 0));
            }
            _ => panic!("expected slammer-hosts outcome"),
        }
        let report = run.report.build();
        assert_eq!(report.population, 2);
    }

    #[test]
    fn oversized_study_integers_fail_typed() {
        let mut spec = ScenarioSpec::named("abl");
        spec.study = Some(StudySpec::Ablations {
            nat_population: 10,
            nat_max_time: 1.0,
            sensor_hosts: 1 << 32,
            sensor_max_time: 1.0,
            reboot_hosts: 10,
        });
        let Err(err) = run_spec(&spec, &RunContext::new("t")) else {
            panic!("expected an oversized-integer error");
        };
        assert!(err.to_string().contains("study.sensor_hosts"), "got: {err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn meta_scale_is_echoed_first() {
        let mut spec = tiny_engine_spec();
        spec.meta.scale = Some("QUICK".to_owned());
        let run = run_spec(&spec, &RunContext::new("t")).expect("runs");
        let report = run.report.build();
        assert_eq!(
            report.config.first().map(|(k, _)| k.as_str()),
            Some("scale")
        );
    }
}
