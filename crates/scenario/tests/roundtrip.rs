//! Serialization round-trip properties for [`ScenarioSpec`].
//!
//! Specs are plain data; the contract is that `to_toml`/`from_toml` and
//! `to_json`/`from_json` are inverses over every *valid* spec. The
//! generator below samples the whole schema — both the engine path and
//! all eleven study kinds, with random environments, telescopes, and
//! sweeps — keeping each draw inside the validated ranges so the
//! property quantifies over specs a user could actually run.

use hotspots_scenario::spec::{
    DetectionParams, EnvSpec, FaultsSpec, LatencySpec, NatSpec, PlacementSpec, PopSpec, SimSpec,
    StudySpec, SweepSpec, TelescopeSpec, WormSpec,
};
use hotspots_scenario::{presets, Scale, ScenarioSpec, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pick<'a, T>(rng: &mut StdRng, choices: &'a [T]) -> &'a T {
    &choices[rng.gen_range(0..choices.len())]
}

/// Seeds in specs serialize through `Value::Int` (i64), so stay inside it.
fn arb_seed(rng: &mut StdRng) -> u64 {
    rng.gen::<u64>() >> 1
}

fn arb_ip(rng: &mut StdRng) -> String {
    // public-ish dotted quads: keep the first octet clear of 0/127/224+
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1u32..=200),
        rng.gen_range(0u32..=255),
        rng.gen_range(0u32..=255),
        rng.gen_range(0u32..=255)
    )
}

fn arb_prefix(rng: &mut StdRng) -> String {
    let len = rng.gen_range(8u32..=24);
    let base = (rng.gen::<u32>() >> (32 - len)) << (32 - len);
    let [a, b, c, d] = base.to_be_bytes();
    format!("{a}.{b}.{c}.{d}/{len}")
}

fn arb_worm(rng: &mut StdRng) -> WormSpec {
    let service = |rng: &mut StdRng| match rng.gen_range(0u32..3) {
        0 => None,
        1 => Some("tcp/80".to_owned()),
        _ => Some("udp/1434".to_owned()),
    };
    match rng.gen_range(0u32..7) {
        0 => WormSpec::Uniform,
        1 => WormSpec::Slammer,
        2 => WormSpec::CodeRed2,
        3 => WormSpec::Blaster {
            hardware: pick(rng, &["pentium-ii", "pentium-iii", "pentium-iv"]).to_string(),
            model: pick(rng, &["reboot", "population"]).to_string(),
        },
        4 => {
            let n = rng.gen_range(1usize..=4);
            WormSpec::HitList {
                prefixes: (0..n).map(|_| arb_prefix(rng)).collect(),
                service: service(rng),
            }
        }
        5 => {
            let n = rng.gen_range(1usize..=3);
            let masks = ["255.0.0.0", "255.255.0.0", "0.0.0.0"];
            WormSpec::LocalPreference {
                entries: (0..n)
                    .map(|i| format!("{}*{}", masks[i % masks.len()], rng.gen_range(1u32..=8)))
                    .collect(),
                service: service(rng),
            }
        }
        _ => WormSpec::Bot {
            command: pick(
                rng,
                &["advscan dcom2 150 3 0 -r -s", "ipscan 20.40.x.x dcom2 -s"],
            )
            .to_string(),
        },
    }
}

fn arb_pop(rng: &mut StdRng) -> PopSpec {
    match rng.gen_range(0u32..4) {
        0 => PopSpec::Range {
            base: arb_ip(rng),
            count: rng.gen_range(1u64..=100_000),
            stride: rng.gen_range(1u64..=1_000),
        },
        1 => PopSpec::Synthetic {
            size: rng.gen_range(1u64..=100_000),
            slash8s: rng.gen_range(1u64..=64),
            seed: arb_seed(rng),
        },
        2 => PopSpec::Paper {
            seed: arb_seed(rng),
        },
        _ => {
            let n = rng.gen_range(1usize..=8);
            PopSpec::Hosts {
                addrs: (0..n).map(|_| arb_ip(rng)).collect(),
            }
        }
    }
}

fn arb_env(rng: &mut StdRng) -> EnvSpec {
    let filters = match rng.gen_range(0u32..3) {
        0 => vec![],
        1 => vec![format!("egress {} udp/1434", arb_prefix(rng))],
        _ => vec![
            format!("egress {} tcp/80", arb_prefix(rng)),
            format!("ingress {} *", arb_prefix(rng)),
        ],
    };
    EnvSpec {
        loss: rng.gen_bool(0.5).then(|| rng.gen_range(0.0..1.0)),
        filters,
        latency: rng.gen_bool(0.3).then(|| LatencySpec {
            base_secs: rng.gen_range(0.0..2.0),
            jitter_secs: rng.gen_range(0.0..1.0),
        }),
        nat: rng.gen_bool(0.3).then(|| NatSpec {
            fraction: rng.gen_range(0.0..1.0),
            topology: pick(rng, &["isolated", "shared"]).to_string(),
            seed: arb_seed(rng),
        }),
    }
}

fn arb_faults(rng: &mut StdRng) -> FaultsSpec {
    let n = rng.gen_range(0usize..=4);
    let schedule = (0..n)
        .map(|_| {
            let t0 = rng.gen_range(0u64..1_000);
            let t1 = t0 + rng.gen_range(1u64..=1_000);
            match rng.gen_range(0u32..4) {
                0 => format!("outage {} {t0} {t1}", arb_prefix(rng)),
                1 => format!("blackhole {} {t0} {t1}", arb_prefix(rng)),
                2 => format!(
                    "flap {} {} {} {t0} {t1} {} 0.{}",
                    pick(rng, &["egress", "ingress"]),
                    arb_prefix(rng),
                    pick(rng, &["tcp/80", "udp/1434", "*"]),
                    rng.gen_range(1u64..=60),
                    rng.gen_range(1u32..=9),
                ),
                _ => format!(
                    "degraded {} {t0} {t1} 0.{}",
                    arb_prefix(rng),
                    rng.gen_range(1u32..=9)
                ),
            }
        })
        .collect();
    FaultsSpec { schedule }
}

fn arb_telescope(rng: &mut StdRng) -> TelescopeSpec {
    match rng.gen_range(0u32..3) {
        0 => TelescopeSpec::None,
        1 => {
            let n = rng.gen_range(1usize..=6);
            TelescopeSpec::Field {
                placement: PlacementSpec::Prefixes {
                    prefixes: (0..n).map(|_| arb_prefix(rng)).collect(),
                },
                alert_threshold: rng.gen_range(1u64..=50),
                mode: pick(rng, &["active", "passive"]).to_string(),
            }
        }
        _ => TelescopeSpec::Field {
            placement: PlacementSpec::Random {
                sensors: rng.gen_range(1u64..=2_000),
                seed: arb_seed(rng),
            },
            alert_threshold: rng.gen_range(1u64..=50),
            mode: pick(rng, &["active", "passive"]).to_string(),
        },
    }
}

fn arb_sim(rng: &mut StdRng) -> SimSpec {
    let dt = *pick(rng, &[0.1, 0.5, 1.0]);
    SimSpec {
        scan_rate: rng.gen_range(0.5..4_000.0),
        scan_rate_sigma: rng.gen_range(0.0..2.0),
        seeds: rng.gen_range(1u64..=100),
        dt,
        max_time: rng.gen_range(dt..10_000.0),
        stop_at_fraction: rng.gen_bool(0.5).then(|| rng.gen_range(0.05..1.0)),
        removal_rate: rng.gen_range(0.0..0.1),
        rng_seed: arb_seed(rng),
        threads: rng.gen_range(1u64..=8),
        trace: rng.gen_bool(0.25),
    }
}

fn arb_detection(rng: &mut StdRng) -> DetectionParams {
    DetectionParams {
        population: rng.gen_range(100u64..=200_000),
        slash8s: rng.gen_range(1u64..=64),
        paper_profile: rng.gen_bool(0.3),
        seeds: rng.gen_range(1u64..=50),
        scan_rate: rng.gen_range(0.5..100.0),
        alert_threshold: rng.gen_range(1u64..=20),
        max_time: rng.gen_range(10.0..10_000.0),
        stop_at_fraction: rng.gen_range(0.05..1.0),
        rng_seed: arb_seed(rng),
    }
}

fn arb_sizes(rng: &mut StdRng) -> Vec<Option<u64>> {
    let n = rng.gen_range(1usize..=4);
    (0..n)
        .map(|_| rng.gen_bool(0.8).then(|| rng.gen_range(1u64..=500)))
        .collect()
}

fn arb_study(rng: &mut StdRng) -> StudySpec {
    match rng.gen_range(0u32..11) {
        0 => StudySpec::BlasterCoverage {
            hosts: rng.gen_range(10u64..=100_000),
            window_secs: rng.gen_range(60.0..7_200.0),
            scan_rate: rng.gen_range(0.5..100.0),
            reboot_fraction: rng.gen_range(0.0..1.0),
            rng_seed: arb_seed(rng),
        },
        1 => StudySpec::SlammerCoverage {
            hosts: rng.gen_range(10u64..=100_000),
            m_block_filter: rng.gen_bool(0.5),
            rng_seed: arb_seed(rng),
        },
        2 => StudySpec::SlammerHosts {
            probes_per_host: rng.gen_range(1_000u64..=1_000_000),
        },
        3 => StudySpec::CodeRedNat {
            hosts: rng.gen_range(10u64..=10_000),
            probes_per_host: rng.gen_range(100u64..=100_000),
            nat_fraction: rng.gen_range(0.0..1.0),
            rng_seed: arb_seed(rng),
            quarantine_probes_public: rng.gen_range(1_000u64..=2_000_000),
            quarantine_probes_natted: rng.gen_range(1_000u64..=2_000_000),
            quarantine_seed: arb_seed(rng),
        },
        4 => StudySpec::HitListInfection {
            detection: arb_detection(rng),
            sizes: arb_sizes(rng),
        },
        5 => StudySpec::HitListDetection {
            detection: arb_detection(rng),
            sizes: arb_sizes(rng),
        },
        6 => StudySpec::NatDetection {
            detection: arb_detection(rng),
            nat_fraction: rng.gen_range(0.0..1.0),
            sensors: rng.gen_range(1u64..=2_000),
            top_k_slash8s: rng.gen_range(1u64..=64),
        },
        7 => StudySpec::BotCommands {
            synthetic_commands: rng.gen_range(1u64..=10_000),
            corpus_seed: arb_seed(rng),
            drone: arb_ip(rng),
        },
        8 => StudySpec::Filtering {
            infected_per_enterprise: rng.gen_range(1u64..=10_000),
            infected_per_isp: rng.gen_range(1u64..=10_000),
            probes_per_host: rng.gen_range(100u64..=100_000),
            blaster_scan_len: rng.gen_range(100u64..=100_000),
            rng_seed: arb_seed(rng),
        },
        9 => StudySpec::Ablations {
            nat_population: rng.gen_range(10u64..=50_000),
            nat_max_time: rng.gen_range(10.0..10_000.0),
            sensor_hosts: rng.gen_range(10u64..=50_000),
            sensor_max_time: rng.gen_range(10.0..10_000.0),
            reboot_hosts: rng.gen_range(10u64..=100_000),
        },
        _ => StudySpec::Sensitivity {
            trials: rng.gen_range(1u64..=50),
            codered_hosts: rng.gen_range(10u64..=10_000),
            codered_probes_per_host: rng.gen_range(100u64..=100_000),
            slammer_hosts: rng.gen_range(10u64..=100_000),
            rng_seed: arb_seed(rng),
        },
    }
}

fn arb_sweep(rng: &mut StdRng) -> SweepSpec {
    let n = rng.gen_range(1usize..=4);
    let (param, values): (&str, Vec<Value>) = match rng.gen_range(0u32..3) {
        0 => (
            "sim.scan_rate",
            (0..n)
                .map(|_| Value::Float(rng.gen_range(0.5..100.0)))
                .collect(),
        ),
        1 => (
            "sim.seeds",
            (0..n)
                .map(|_| Value::Int(rng.gen_range(1i64..=100)))
                .collect(),
        ),
        _ => (
            // always present: the sim table is emitted on both paths
            "sim.threads",
            (0..n)
                .map(|_| Value::Int(rng.gen_range(1i64..=8)))
                .collect(),
        ),
    };
    SweepSpec {
        param: param.to_owned(),
        values,
    }
}

/// One valid spec, sampled across the whole schema.
fn arb_spec(seed: u64) -> ScenarioSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    let mut spec = ScenarioSpec::named(format!("prop-{}", rng.gen_range(0u32..1_000_000)));
    if rng.gen_bool(0.5) {
        spec.meta.scenario = Some("a property-test scenario".to_owned());
    }
    if rng.gen_bool(0.3) {
        spec.meta.artifact = Some("FIGURE X".to_owned());
        spec.meta.title = Some("generated".to_owned());
    }
    if rng.gen_bool(0.3) {
        spec.meta.scale = Some(pick(rng, &["quick", "paper"]).to_string());
    }
    if rng.gen_bool(0.5) {
        // engine path
        spec.worm = Some(arb_worm(rng));
        spec.population = Some(arb_pop(rng));
        spec.environment = arb_env(rng);
        spec.faults = arb_faults(rng);
        spec.telescope = arb_telescope(rng);
        spec.sim = arb_sim(rng);
    } else {
        spec.study = Some(arb_study(rng));
    }
    if rng.gen_bool(0.3) {
        spec.sweep = Some(arb_sweep(rng));
    }
    spec
}

/// An arbitrary Unicode string biased toward the corners the escapers
/// must handle: C0 controls, quotes/backslashes, BMP scalars, and
/// non-BMP scalars (which the writers emit as surrogate pairs).
fn arb_unicode(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..40);
    (0..len)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => char::from(rng.gen_range(0x20u8..0x7f)), // printable ASCII
            1 => char::from_u32(rng.gen_range(0u32..0x20)).expect("C0 is scalar"),
            2 => *pick(rng, &['"', '\\', '/', '\n', '\t', '\r', '#', '[', ']', '=']),
            3 => {
                // BMP, re-rolling the surrogate gap
                loop {
                    if let Some(c) = char::from_u32(rng.gen_range(0x80u32..0x1_0000)) {
                        break c;
                    }
                }
            }
            _ => char::from_u32(rng.gen_range(0x1_0000u32..0x11_0000).min(0x10_FFFF))
                .unwrap_or('\u{10000}'),
        })
        .collect()
}

proptest! {
    /// Satellite pin (PR 10): arbitrary Unicode — including control
    /// characters, non-BMP scalars, and every quoting hazard — survives
    /// the hand-rolled writer/parser pair on both the TOML and JSON
    /// paths, at the raw Value layer.
    #[test]
    fn arbitrary_unicode_strings_round_trip_both_formats(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = Value::table();
        for key in ["a", "b", "c"] {
            v.set(key, Value::Str(arb_unicode(&mut rng)));
        }
        v.set(
            "arr",
            Value::Array((0..3).map(|_| Value::Str(arb_unicode(&mut rng))).collect()),
        );
        let toml = hotspots_scenario::value::to_toml(&v);
        let back = hotspots_scenario::value::from_toml(&toml)
            .map_err(|e| TestCaseError::fail(format!("toml re-parse: {e}\n{toml:?}")))?;
        prop_assert_eq!(&v, &back);
        let json = hotspots_scenario::value::to_json(&v);
        let back = hotspots_scenario::value::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("json re-parse: {e}\n{json:?}")))?;
        prop_assert_eq!(&v, &back);
    }

    /// The same property one level up: a spec whose free-form meta
    /// strings are arbitrary Unicode still round-trips as a spec.
    #[test]
    fn specs_with_arbitrary_meta_strings_round_trip(seed in any::<u64>()) {
        let mut spec = arb_spec(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        spec.meta.title = Some(arb_unicode(&mut rng));
        spec.meta.artifact = Some(arb_unicode(&mut rng));
        let toml = spec.to_toml();
        let back = ScenarioSpec::from_toml(&toml)
            .map_err(|e| TestCaseError::fail(format!("toml re-parse: {e}\n{toml:?}")))?;
        prop_assert_eq!(&spec, &back);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("json re-parse: {e}\n{json:?}")))?;
        prop_assert_eq!(&spec, &back);
    }

    #[test]
    fn generated_specs_validate(seed in any::<u64>()) {
        let spec = arb_spec(seed);
        if let Err(e) = spec.validate() {
            return Err(TestCaseError::fail(format!("generator produced invalid spec: {e}")));
        }
    }

    #[test]
    fn toml_round_trip_is_identity(seed in any::<u64>()) {
        let spec = arb_spec(seed);
        let toml = spec.to_toml();
        let back = ScenarioSpec::from_toml(&toml)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{toml}")))?;
        prop_assert_eq!(&spec, &back);
        // and the emitted text itself is a fixed point
        prop_assert_eq!(toml, back.to_toml());
    }

    #[test]
    fn json_round_trip_is_identity(seed in any::<u64>()) {
        let spec = arb_spec(seed);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{json}")))?;
        prop_assert_eq!(&spec, &back);
    }

    #[test]
    fn toml_and_json_agree(seed in any::<u64>()) {
        let spec = arb_spec(seed);
        let via_toml = ScenarioSpec::from_toml(&spec.to_toml())
            .map_err(|e| TestCaseError::fail(format!("toml: {e}")))?;
        let via_json = ScenarioSpec::from_json(&spec.to_json())
            .map_err(|e| TestCaseError::fail(format!("json: {e}")))?;
        prop_assert_eq!(via_toml, via_json);
    }
}

/// The registry is covered exhaustively (not statistically): every
/// preset at both scales validates and survives both formats.
#[test]
fn every_preset_round_trips_at_both_scales() {
    for preset in presets() {
        for scale in [Scale::Quick, Scale::Paper] {
            let spec = preset.spec(scale);
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: invalid at {scale:?}: {e}", preset.name));
            let toml = ScenarioSpec::from_toml(&spec.to_toml())
                .unwrap_or_else(|e| panic!("{}: toml re-parse: {e}", preset.name));
            assert_eq!(spec, toml, "{}: toml round-trip drifted", preset.name);
            let json = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{}: json re-parse: {e}", preset.name));
            assert_eq!(spec, json, "{}: json round-trip drifted", preset.name);
        }
    }
}
