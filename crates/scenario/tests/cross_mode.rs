//! Cross-mode determinism: the staged probe pipeline must produce
//! bit-identical results whether it runs serially (`threads = 1`) or
//! sharded across worker threads — same infection times, same ledger,
//! same observer-visible probe stream.
//!
//! Each mode is an `xmode-*` registry preset, so the exact scenarios the
//! suite pins are runnable by hand (`hotspots run xmode-slammer`) and
//! serialize to TOML like any other spec.
//!
//! Without the `parallel` cargo feature, `threads > 1` falls back to the
//! serial path and these tests pass trivially; the CI `parallel` job
//! compiles the real sharded path and re-runs them.

use hotspots_ipspace::Ip;
use hotspots_netmodel::{Delivery, DeliveryLedger, Locus};
use hotspots_scenario::{find_preset, Scale};
use hotspots_sim::{Engine, SimObserver, SimResult};

/// Everything the engine hands an observer, aggregated, so cross-mode
/// equality covers the observer-visible stream and not just `SimResult`.
#[derive(Default)]
struct EventTally {
    probes: u64,
    publics: u64,
    locals: u64,
    infections: u64,
    batch_calls: u64,
}

impl SimObserver for EventTally {
    fn on_probe(&mut self, _time: f64, _src: Ip, delivery: Delivery) {
        self.probes += 1;
        match delivery {
            Delivery::Public(_) => self.publics += 1,
            Delivery::Local { .. } => self.locals += 1,
            Delivery::Dropped(_) => {}
        }
    }

    fn on_probe_batch(&mut self, time: f64, probes: &[(Ip, Delivery)], ledger: &DeliveryLedger) {
        self.batch_calls += 1;
        assert_eq!(
            ledger.probes(),
            probes.len() as u64,
            "batch ledger must cover exactly the batch's probes"
        );
        for &(src, delivery) in probes {
            self.on_probe(time, src, delivery);
        }
    }

    fn on_infection(&mut self, _time: f64, _host: usize, _locus: Locus) {
        self.infections += 1;
    }
}

fn run_with_threads(preset: &str, threads: usize) -> (SimResult, EventTally) {
    let preset = find_preset(preset).expect("registered preset");
    let mut built = preset
        .spec(Scale::Quick)
        .build()
        .expect("cross-mode presets build");
    built.config.threads = threads;
    let mut engine = Engine::new(
        built.config,
        built.population,
        built.environment,
        built.worm,
    );
    let mut tally = EventTally::default();
    let result = engine.run(&mut tally);
    (result, tally)
}

/// Builds `preset` fresh per thread count, runs it serially and at 2 and
/// 4 worker threads (plus a more-threads-than-hosts configuration), and
/// asserts every deterministic output is identical.
fn assert_cross_mode_identical(name: &str) {
    let (base, base_tally) = run_with_threads(name, 1);
    assert!(base.probes_sent > 0, "{name}: run emitted no probes");
    assert!(
        base_tally.batch_calls > 0,
        "{name}: observer saw no batches"
    );
    let base_curve: Vec<(f64, f64)> = base.infection_curve.iter().collect();

    for threads in [2, 4, 64] {
        let (other, tally) = run_with_threads(name, threads);
        assert_eq!(
            base.infection_times, other.infection_times,
            "{name}: infection times diverge at {threads} threads"
        );
        assert_eq!(
            base.probes_sent, other.probes_sent,
            "{name}: probe count diverges at {threads} threads"
        );
        assert_eq!(
            base.ledger, other.ledger,
            "{name}: ledger diverges at {threads} threads"
        );
        assert_eq!(base.infected, other.infected, "{name} @ {threads} threads");
        assert_eq!(base.removed, other.removed, "{name} @ {threads} threads");
        assert_eq!(base.elapsed, other.elapsed, "{name} @ {threads} threads");
        let curve: Vec<(f64, f64)> = other.infection_curve.iter().collect();
        assert_eq!(
            base_curve, curve,
            "{name}: infection curve diverges at {threads} threads"
        );
        assert_eq!(
            base_tally.probes, tally.probes,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.publics, tally.publics,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.locals, tally.locals,
            "{name} @ {threads} threads"
        );
        assert_eq!(
            base_tally.infections, tally.infections,
            "{name} @ {threads} threads"
        );
    }
}

#[test]
fn uniform_worm_is_thread_invariant() {
    assert_cross_mode_identical("xmode-uniform");
}

#[test]
fn blaster_worm_is_thread_invariant() {
    assert_cross_mode_identical("xmode-blaster");
}

#[test]
fn slammer_worm_is_thread_invariant() {
    assert_cross_mode_identical("xmode-slammer");
}

#[test]
fn codered2_worm_with_nat_is_thread_invariant() {
    assert_cross_mode_identical("xmode-codered2-nat");
}

#[test]
fn hitlist_worm_is_thread_invariant() {
    assert_cross_mode_identical("xmode-hitlist");
}

#[test]
fn latency_and_removal_are_thread_invariant() {
    // The heaviest configuration: latency with jitter (pending-activation
    // heap and the dedicated latency stream), removal (per-host streams),
    // rate dispersion, and loss, all at once.
    assert_cross_mode_identical("xmode-hitlist-latency");
}

#[test]
fn outage_faults_are_thread_invariant() {
    // Sensor outage + flapping filter: fault activity must be a pure
    // function of simulation time, so the faulted verdicts land on the
    // same probes at any shard count.
    assert_cross_mode_identical("xmode-outage");
}

#[test]
fn blackhole_faults_are_thread_invariant() {
    // Upstream blackhole + degraded loss: the degraded window draws an
    // extra Bernoulli from each probe's RNG stream, the alignment most
    // at risk of diverging between the scalar and batch paths.
    assert_cross_mode_identical("xmode-blackhole");
}

#[test]
fn faulted_runs_conserve_ledger_accounting() {
    use hotspots_netmodel::DropReason;

    // Across both faulted presets: every fault verdict class that the
    // schedule can produce actually fires, and every probe is accounted
    // for — delivered + dropped == probes, with the fault classes
    // carrying their own counts rather than leaking into base loss.
    let cases = [
        (
            "xmode-outage",
            vec![DropReason::SensorOutage, DropReason::FilterFlap],
        ),
        (
            "xmode-blackhole",
            vec![DropReason::UpstreamBlackhole, DropReason::DegradedLoss],
        ),
    ];
    for (name, expected) in cases {
        for threads in [1, 4] {
            let (result, _) = run_with_threads(name, threads);
            let ledger = &result.ledger;
            assert_eq!(
                ledger.delivered() + ledger.dropped_total(),
                ledger.probes(),
                "{name} @ {threads} threads: ledger does not conserve probes"
            );
            for reason in &expected {
                assert!(
                    ledger.dropped(*reason) > 0,
                    "{name} @ {threads} threads: no {reason} drops recorded"
                );
            }
            // fault drops are attributed, not folded into random loss
            assert_eq!(
                ledger.dropped(DropReason::PacketLoss),
                0,
                "{name} @ {threads} threads: fault drops leaked into base loss"
            );
        }
    }
}
