//! Cross-store determinism: the dense and compressed population stores
//! must produce bit-identical outbreaks — same infection times, same
//! ledger, same curve — on every cross-mode preset and at every thread
//! count.
//!
//! Host ids are the population's RNG-stream keys, so the comparison
//! fixes one canonical id assignment (sorted public addresses first,
//! then private hosts in input order — the compressed store's native
//! layout) and builds *both* stores from it via
//! [`hotspots_sim::canonical_parts`]. Any divergence between the stores'
//! `find_public` / `find_private` / `locus` answers shows up as a
//! different outbreak.

use hotspots_netmodel::Locus;
use hotspots_scenario::{find_preset, presets, Scale, ScenarioSpec};
use hotspots_sim::{canonical_parts, Engine, NullObserver, Population, SimResult};

/// Runs `spec` with its population rebuilt in canonical order on the
/// chosen store.
fn run_store(spec: &ScenarioSpec, threads: usize, compressed: bool) -> SimResult {
    let mut built = spec.build().expect("cross-store specs build");
    built.config.threads = threads;
    let loci: Vec<Locus> = (0..built.population.len())
        .map(|i| built.population.locus(i))
        .collect();
    let (public, private) = canonical_parts(&loci);
    let population = if compressed {
        Population::try_compressed_from_parts(&public, private.iter().copied())
            .expect("canonical parts feed the compressed store")
    } else {
        Population::try_from_loci(
            public.iter().copied().map(Locus::Public).chain(
                private
                    .iter()
                    .map(|&(realm, ip)| Locus::Private { realm, ip }),
            ),
        )
        .expect("canonical loci feed the dense store")
    };
    assert_eq!(
        population.store_label(),
        if compressed { "compressed" } else { "dense" }
    );
    let mut engine = Engine::new(built.config, population, built.environment, built.worm);
    engine.run(&mut NullObserver)
}

fn assert_stores_identical(spec: &ScenarioSpec, label: &str) {
    for threads in [1, 2, 4, 64] {
        let dense = run_store(spec, threads, false);
        let compressed = run_store(spec, threads, true);
        assert!(dense.probes_sent > 0, "{label}: run emitted no probes");
        assert_eq!(
            dense.infection_times, compressed.infection_times,
            "{label}: infection times diverge across stores at {threads} threads"
        );
        assert_eq!(
            dense.probes_sent, compressed.probes_sent,
            "{label}: probe count diverges across stores at {threads} threads"
        );
        assert_eq!(
            dense.ledger, compressed.ledger,
            "{label}: ledger diverges across stores at {threads} threads"
        );
        assert_eq!(dense.infected, compressed.infected, "{label} @ {threads}");
        assert_eq!(dense.removed, compressed.removed, "{label} @ {threads}");
        assert_eq!(dense.elapsed, compressed.elapsed, "{label} @ {threads}");
        let dense_curve: Vec<(f64, f64)> = dense.infection_curve.iter().collect();
        let compressed_curve: Vec<(f64, f64)> = compressed.infection_curve.iter().collect();
        assert_eq!(
            dense_curve, compressed_curve,
            "{label}: infection curve diverges across stores at {threads} threads"
        );
    }
}

/// Every cross-mode preset — uniform, Blaster + loss, Slammer +
/// dispersion, CodeRedII + NAT realms, hit-list, latency + removal, and
/// both fault schedules — at threads 1/2/4/64 on both stores.
#[test]
fn every_cross_mode_preset_is_store_invariant() {
    let mut covered = 0;
    for preset in presets() {
        if preset.family != "cross-mode" {
            continue;
        }
        covered += 1;
        assert_stores_identical(&preset.spec(Scale::Quick), preset.name);
    }
    assert!(
        covered >= 8,
        "expected the full xmode family, got {covered}"
    );
}

/// The Zipf population the million-host presets use, shrunk to a size
/// the debug-mode suite can run at every thread count: the run must not
/// depend on which store the spec's `store` knob picked.
#[test]
fn zipf_population_is_store_invariant() {
    let mut spec = find_preset("bench-million")
        .expect("registered preset")
        .spec(Scale::Quick);
    let Some(hotspots_scenario::PopSpec::Zipf { size, .. }) = &mut spec.population else {
        panic!("bench-million must carry a zipf population");
    };
    *size = 30_000;
    spec.sim.max_time = 10.0;
    assert_stores_identical(&spec, "bench-million@30k");
}

/// The spec-level `store` knob itself: building `bench-million` as-is
/// yields the compressed store, and flipping the knob to dense yields
/// the identical outbreak.
#[test]
fn store_knob_selects_equivalent_stores() {
    let mut spec = find_preset("bench-million")
        .expect("registered preset")
        .spec(Scale::Quick);
    let Some(hotspots_scenario::PopSpec::Zipf { size, .. }) = &mut spec.population else {
        panic!("bench-million must carry a zipf population");
    };
    *size = 20_000;
    spec.sim.max_time = 10.0;
    let compressed = spec.build().expect("builds compressed");
    assert_eq!(compressed.population.store_label(), "compressed");

    let Some(hotspots_scenario::PopSpec::Zipf { store, .. }) = &mut spec.population else {
        unreachable!()
    };
    *store = "dense".to_owned();
    let dense = spec.build().expect("builds dense");
    assert_eq!(dense.population.store_label(), "dense");

    // same addresses, same ids, either way
    assert_eq!(dense.population.len(), compressed.population.len());
    for i in 0..dense.population.len() {
        assert_eq!(dense.population.locus(i), compressed.population.locus(i));
    }
}
