//! Extracting bot commands from captured IRC traffic.
//!
//! The paper's Table 1 data came from "the specific command signatures of
//! Agobot/Phatbot, rbot/sdbot, and Ghost-Bot in the payload of traffic
//! captured in a large academic network". This module is that extraction
//! step: scan a line-oriented capture (IRC PRIVMSG payloads, channel
//! noise, partial lines) and pull out every parsable scan command.

use crate::command::BotCommand;

/// One extracted command: where it was found and what it parsed to.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHit {
    /// 0-based line number in the scanned input.
    pub line: usize,
    /// The raw payload text the command was found in.
    pub raw: String,
    /// The parsed command.
    pub command: BotCommand,
}

/// Scans a line-oriented capture for bot propagation commands.
///
/// Tolerant of IRC framing: a command may appear anywhere in the line
/// (e.g. after `PRIVMSG #channel :` or a `.` command prefix), and lines
/// with no command are skipped. Only `advscan`/`ipscan` verbs are
/// recognized; everything after the verb until end-of-line is handed to
/// the grammar, and unparsable candidates are ignored (real captures are
/// full of typos and truncation).
///
/// # Examples
///
/// ```
/// use hotspots_botnet::log_scanner::scan_lines;
///
/// let capture = [
///     "PING :irc.example.net",
///     ":boss!u@h PRIVMSG #w00t :.advscan dcom2 150 3 0 -r -s",
///     "some unrelated chatter about ipscanning",
///     ":boss!u@h PRIVMSG #w00t :ipscan 192.s.s.s dcom2 -s",
/// ];
/// let hits = scan_lines(capture.iter().map(|s| s.to_string()));
/// assert_eq!(hits.len(), 2);
/// assert_eq!(hits[1].command.module().name(), "dcom2");
/// ```
pub fn scan_lines<I>(lines: I) -> Vec<LogHit>
where
    I: IntoIterator<Item = String>,
{
    let mut hits = Vec::new();
    for (line_no, line) in lines.into_iter().enumerate() {
        if let Some(command) = extract_command(&line) {
            hits.push(LogHit {
                line: line_no,
                raw: line,
                command,
            });
        }
    }
    hits
}

/// Finds and parses the first scan command embedded in a line, if any.
pub fn extract_command(line: &str) -> Option<BotCommand> {
    for verb in ["advscan", "ipscan"] {
        let mut search_from = 0;
        while let Some(rel) = line[search_from..].find(verb) {
            let at = search_from + rel;
            // verb must start a token: preceded by start, whitespace,
            // ':' (IRC payload marker) or '.' (bot command prefix)
            let boundary_ok =
                at == 0 || matches!(line.as_bytes()[at - 1], b' ' | b'\t' | b':' | b'.' | b'"');
            let candidate = &line[at..];
            // the verb must be followed by whitespace (not "ipscanning")
            let followed_ok = candidate
                .as_bytes()
                .get(verb.len())
                .is_some_and(|b| b.is_ascii_whitespace());
            if boundary_ok && followed_ok {
                // trim trailing IRC cruft commonly glued on
                let trimmed = candidate.trim_end_matches(['\r', '\n']);
                if let Ok(cmd) = trimmed.parse::<BotCommand>() {
                    return Some(cmd);
                }
            }
            search_from = at + verb.len();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TABLE1_COMMANDS;

    #[test]
    fn extracts_from_irc_framing() {
        let cmd = extract_command(":op!ident@host PRIVMSG ##x :.advscan lsass 200 5 0 -r")
            .expect("command present");
        assert_eq!(cmd.module().name(), "lsass");
        assert_eq!(cmd.threads(), Some(200));
    }

    #[test]
    fn rejects_partial_words_and_chatter() {
        assert!(extract_command("we were ipscanning all night").is_none());
        assert!(extract_command("advscanner pro 2004").is_none());
        assert!(extract_command("PING :irc.example.net").is_none());
        assert!(extract_command("").is_none());
    }

    #[test]
    fn unparsable_candidates_are_skipped() {
        // verb present but grammar-invalid tail
        assert!(extract_command("PRIVMSG #x :ipscan --lol").is_none());
    }

    #[test]
    fn finds_later_occurrence_when_first_is_garbage() {
        let cmd = extract_command("re: ipscan broken? use: ipscan s.s dcom2 -s")
            .expect("the second occurrence parses");
        assert_eq!(cmd.pattern().unwrap().to_string(), "s.s");
    }

    #[test]
    fn scan_lines_recovers_table1_from_noisy_log() {
        // interleave the Table 1 commands with realistic channel noise
        let mut log: Vec<String> = Vec::new();
        for (i, cmd) in TABLE1_COMMANDS.iter().enumerate() {
            log.push(format!("PING :srv{i}"));
            log.push(format!(":bot{i}!u@h JOIN ##w0rm"));
            log.push(format!(":boss!u@h PRIVMSG ##w0rm :{cmd}"));
            log.push("random chatter with no commands".to_owned());
        }
        let hits = scan_lines(log);
        assert_eq!(hits.len(), TABLE1_COMMANDS.len());
        for (hit, original) in hits.iter().zip(TABLE1_COMMANDS) {
            assert_eq!(hit.command.to_string(), original);
        }
    }

    #[test]
    fn line_numbers_are_reported() {
        let log = vec![
            "noise".to_owned(),
            "ipscan s.s dcom2".to_owned(),
            "noise".to_owned(),
            "advscan dcom2 100 5 0 -s".to_owned(),
        ];
        let hits = scan_lines(log);
        assert_eq!(hits.iter().map(|h| h.line).collect::<Vec<_>>(), vec![1, 3]);
    }
}
