//! Synthetic bot-command corpora shaped like the paper's Table 1.
//!
//! The live capture behind Table 1 is unavailable (it was sniffed from a
//! production academic network), so this module generates command logs
//! with the same observed structure: a mix of `advscan`/`ipscan`, the
//! exploit modules seen in the wild, octet patterns dominated by sticky
//! (`s`) subnet picks, a minority of hit-lists pinned to specific first
//! octets, and the `-r -b -s` flag idioms.

use hotspots_ipspace::Ip;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::command::BotCommand;

/// The commands reported in Table 1 of the paper, one per detected bot
/// (whitespace-normalized; the published table truncates some numeric
/// parameters, which are restored with representative values).
pub const TABLE1_COMMANDS: [&str; 16] = [
    "ipscan i.i.i.i dcom2 -s",
    "advscan wkssvceng 100 5 0 -r -s",
    "ipscan s.s.s.s dcom2 -s",
    "ipscan r.r.r.r dcom2 -s",
    "advscan dcass 150 3 9999 x.x.x -b -s",
    "advscan lsass 200 5 0 -r -b",
    "advscan dcass 150 3 9999 x.x -b -s",
    "ipscan s.s dcom2 -s",
    "ipscan s.s mssql2000 -s",
    "ipscan s.s.s lsass -s",
    "ipscan s.s webdav3 -s",
    "ipscan r.r.r.r dcom2 -s",
    "ipscan 194.s.s.s dcom2 -s",
    "ipscan s.s dcom2",
    "ipscan 192.s.s.s dcom2 -s",
    "ipscan 128.s.s.s dcom2 -s",
];

/// Parses the Table 1 commands (they are all valid under the grammar).
///
/// # Examples
///
/// ```
/// let cmds = hotspots_botnet::corpus::table1();
/// assert_eq!(cmds.len(), 16);
/// ```
// hotspots-lint: certifies(panic-free) reason="table 1 commands are literals that parse"
pub fn table1() -> Vec<BotCommand> {
    TABLE1_COMMANDS
        .iter()
        .map(|s| s.parse().expect("table 1 commands parse"))
        .collect()
}

/// Generates `n` synthetic commands with Table-1-like composition.
///
/// Composition (matched to the table): ~70% `ipscan`, ~30% `advscan`;
/// module mix dominated by `dcom2`; ~20% of patterns pin the first octet
/// to an address-rich /8 (academic-network targeting, per the paper's
/// observation that bots aim at ranges "known to contain live hosts").
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let corpus = hotspots_botnet::corpus::generate(50, &mut rng);
/// assert_eq!(corpus.len(), 50);
/// ```
// hotspots-lint: certifies(panic-free) reason="every choice list is a non-empty literal and generated commands are grammatical"
pub fn generate<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<BotCommand> {
    let modules = [
        "dcom2",
        "dcom2",
        "dcom2",
        "dcom2",
        "lsass",
        "dcass",
        "mssql2000",
        "webdav3",
        "wkssvceng",
    ];
    let literal_octets: [u8; 6] = [128, 129, 141, 192, 194, 210];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let module = *modules.choose(rng).expect("non-empty");
        let text = if rng.gen_bool(0.7) {
            // ipscan <pattern> <module> [-s]
            let pattern = random_pattern(rng, &literal_octets);
            let flag = if rng.gen_bool(0.85) { " -s" } else { "" };
            format!("ipscan {pattern} {module}{flag}")
        } else {
            // advscan <module> <threads> <delay> <count> [pattern] [-flags]
            let threads = *[100u32, 150, 200, 250].choose(rng).expect("non-empty");
            let delay = rng.gen_range(3..=7);
            let count = *[0u32, 9999].choose(rng).expect("non-empty");
            let pattern = if rng.gen_bool(0.4) {
                format!(" {}", random_pattern(rng, &literal_octets))
            } else {
                String::new()
            };
            let flags = ["", " -r", " -b", " -r -b", " -r -s", " -b -s", " -r -b -s"]
                .choose(rng)
                .expect("non-empty");
            format!("advscan {module} {threads} {delay} {count}{pattern}{flags}")
        };
        out.push(text.parse().expect("generated commands are grammatical"));
    }
    out
}

// hotspots-lint: certifies(panic-free) reason="every choice list is a non-empty literal"
fn random_pattern<R: Rng + ?Sized>(rng: &mut R, literal_octets: &[u8]) -> String {
    let arity = *[2usize, 3, 4, 4].choose(rng).expect("non-empty");
    let body_symbol = *["s", "s", "s", "r", "x", "i"]
        .choose(rng)
        .expect("non-empty");
    let mut parts: Vec<String> = Vec::with_capacity(arity);
    if rng.gen_bool(0.2) {
        parts.push(literal_octets.choose(rng).expect("non-empty").to_string());
    } else {
        parts.push(body_symbol.to_owned());
    }
    for _ in 1..arity {
        parts.push(body_symbol.to_owned());
    }
    parts.join(".")
}

/// Summarizes a corpus the way the paper analyzes Table 1: for each
/// command, the scan range a drone at `local` would cover, as
/// `(command text, range, range size)` rows.
pub fn hit_list_report(commands: &[BotCommand], local: Ip) -> Vec<(String, String, u64)> {
    use hotspots_prng::SplitMix;
    let mut prng = SplitMix::new(0x7ab1e1);
    commands
        .iter()
        .map(|cmd| {
            let (range, size) = match cmd.target_range(local, &mut prng) {
                Ok(p) => (p.to_string(), p.size()),
                Err(_) => (
                    "(non-prefix)".to_owned(),
                    cmd.pattern().map_or(0, |p| p.reachable_addresses()),
                ),
            };
            (cmd.to_string(), range, size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_all_parse_and_roundtrip() {
        let cmds = table1();
        assert_eq!(cmds.len(), TABLE1_COMMANDS.len());
        for (cmd, text) in cmds.iter().zip(TABLE1_COMMANDS) {
            assert_eq!(cmd.to_string(), text);
        }
    }

    #[test]
    fn table1_hit_lists_include_restricted_ranges() {
        // The paper's point: commands restrict propagation to subnets.
        let report = hit_list_report(&table1(), Ip::from_octets(141, 20, 0, 9));
        let restricted: Vec<&(String, String, u64)> = report
            .iter()
            .filter(|(_, _, size)| *size < (1u64 << 32))
            .collect();
        assert!(
            restricted.len() >= 8,
            "expected most Table 1 commands to restrict their range, got {}",
            restricted.len()
        );
        // the literal-octet commands pin their scans inside the named /8
        assert!(report
            .iter()
            .any(|(c, r, _)| c.contains("194.") && r.starts_with("194.")));
    }

    #[test]
    fn generated_corpus_parses_and_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = generate(200, &mut rng);
        assert_eq!(corpus.len(), 200);
        let ipscans = corpus
            .iter()
            .filter(|c| c.kind() == crate::CommandKind::Ipscan)
            .count();
        assert!((100..190).contains(&ipscans), "ipscan count {ipscans}");
        let with_literal = corpus
            .iter()
            .filter_map(|c| c.pattern())
            .filter(|p| matches!(p.octets()[0], crate::OctetSpec::Literal(_)))
            .count();
        assert!(with_literal > 5, "literal-octet hit-lists missing");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(50, &mut StdRng::seed_from_u64(7));
        let b = generate(50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
