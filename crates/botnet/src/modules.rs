//! Exploit modules and their network services.

use std::fmt;

use hotspots_netmodel::Service;

/// An exploit module named in a bot scan command (`dcom2`, `lsass`, …),
/// mapped to the transport service its probes target.
///
/// Unknown module names are preserved (bots grow modules faster than
/// taxonomies) and default to TCP/445.
///
/// # Examples
///
/// ```
/// use hotspots_botnet::ExploitModule;
/// use hotspots_netmodel::Service;
///
/// let m = ExploitModule::named("dcom2");
/// assert_eq!(m.service(), Service::BLASTER_RPC);
/// assert_eq!(m.name(), "dcom2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExploitModule {
    name: String,
    service: Service,
}

impl ExploitModule {
    /// Looks up a module by the name it carries in commands.
    pub fn named(name: impl Into<String>) -> ExploitModule {
        let name = name.into();
        let service = match name.as_str() {
            // MS RPC DCOM (the Blaster vector)
            "dcom" | "dcom2" | "dcom135" => Service::BLASTER_RPC,
            // LSASS / workstation service / dcass — SMB-side exploits
            "lsass" | "lsass_445" | "dcass" | "wkssvc" | "wkssvceng" | "netapi" => Service::BOT_SMB,
            // SQL Server Resolution (the Slammer vector)
            "mssql" | "mssql2000" | "sqlslam" => Service::SLAMMER_SQL,
            // IIS WebDAV
            "webdav" | "webdav2" | "webdav3" | "iis" => Service::CODERED_HTTP,
            _ => Service::BOT_SMB,
        };
        ExploitModule { name, service }
    }

    /// The module name as it appears on the wire.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transport service the module's probes target.
    pub fn service(&self) -> Service {
        self.service
    }
}

impl fmt::Display for ExploitModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_netmodel::Proto;

    #[test]
    fn table1_modules_resolve() {
        let cases = [
            ("dcom2", Service::BLASTER_RPC),
            ("wkssvceng", Service::BOT_SMB),
            ("dcass", Service::BOT_SMB),
            ("lsass", Service::BOT_SMB),
            ("mssql2000", Service::SLAMMER_SQL),
            ("webdav3", Service::CODERED_HTTP),
        ];
        for (name, service) in cases {
            assert_eq!(ExploitModule::named(name).service(), service, "{name}");
        }
    }

    #[test]
    fn unknown_module_preserved_with_default_service() {
        let m = ExploitModule::named("zeroday9000");
        assert_eq!(m.name(), "zeroday9000");
        assert_eq!(m.service(), Service::new(Proto::Tcp, 445));
    }
}
