//! Bot command parsing and hit-list extraction.
//!
//! The paper's Table 1 is a capture of IRC scan commands sent to
//! Agobot/Phatbot, rbot/SDBot, and Ghost-Bot drones on a live /15 academic
//! network, e.g.:
//!
//! ```text
//! advscan dcom2 150 3 9999 x.x.x.x -r -b -s
//! ipscan 192.s.s.s dcom2 -s
//! ```
//!
//! Commands carry an octet *pattern* (`192.s.s.s`) that restricts which
//! addresses the drones will scan — a hit-list, and therefore an
//! algorithmic hotspot factor. This crate provides:
//!
//! * [`ScanPattern`] — the dotted octet pattern language
//!   (`literal`/`i`/`s`/`r`/`x`),
//! * [`BotCommand`] — a parser for the `advscan`/`ipscan` grammar,
//! * [`ExploitModule`] — the exploit-module → service mapping,
//! * [`corpus`] — a generator of Table-1-shaped synthetic command logs,
//! * [`log_scanner`] — extraction of commands from noisy IRC captures
//!   (the step that produced Table 1 from live traffic),
//! * [`BotCommand::scanner`] — turning a command into a live
//!   [`TargetGenerator`](hotspots_targeting::TargetGenerator).
//!
//! # Examples
//!
//! ```
//! use hotspots_botnet::BotCommand;
//! use hotspots_ipspace::Ip;
//! use hotspots_prng::SplitMix;
//!
//! let cmd: BotCommand = "ipscan 192.s.s.s dcom2 -s".parse().unwrap();
//! assert_eq!(cmd.module().name(), "dcom2");
//! let range = cmd
//!     .pattern()
//!     .unwrap()
//!     .resolve(Ip::from_octets(141, 20, 0, 1), &mut SplitMix::new(1))
//!     .unwrap();
//! // each drone sweeps its own /24 inside 192/8
//! assert_eq!(range.len(), 24);
//! assert_eq!(range.base().octets()[0], 192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod command;
pub mod corpus;
pub mod log_scanner;
mod modules;
mod pattern;

pub use command::{BotCommand, CommandKind, ParseCommandError};
pub use modules::ExploitModule;
pub use pattern::{OctetSpec, ParsePatternError, ResolveError, ScanPattern};
