//! The `advscan` / `ipscan` command grammar.

use std::fmt;
use std::str::FromStr;

use hotspots_ipspace::{Ip, Prefix};
use hotspots_prng::Prng32;
use hotspots_targeting::{HitList, HitListScanner};

use crate::modules::ExploitModule;
use crate::pattern::{looks_like_pattern, ScanPattern};

/// Which command family a parsed command belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommandKind {
    /// `advscan <module> [threads [delay [count]]] [pattern] [-flags]`
    /// (Agobot/rbot style).
    Advscan,
    /// `ipscan <pattern> <module> [-flags]` (SDBot/Ghost-Bot style).
    Ipscan,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommandKind::Advscan => "advscan",
            CommandKind::Ipscan => "ipscan",
        })
    }
}

/// Error parsing a [`BotCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCommandError {
    /// The first token was not a known command verb.
    UnknownVerb(String),
    /// A required element (pattern or module) was missing.
    Missing(&'static str),
    /// A token could not be interpreted.
    BadToken(String),
}

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCommandError::UnknownVerb(v) => write!(f, "unknown command verb: {v:?}"),
            ParseCommandError::Missing(what) => write!(f, "command is missing its {what}"),
            ParseCommandError::BadToken(t) => write!(f, "unparseable token: {t:?}"),
        }
    }
}

impl std::error::Error for ParseCommandError {}

/// A parsed bot propagation command.
///
/// # Examples
///
/// ```
/// use hotspots_botnet::{BotCommand, CommandKind};
///
/// let cmd: BotCommand = "advscan dcom2 150 3 9999 x.x.x.x -r -b -s".parse().unwrap();
/// assert_eq!(cmd.kind(), CommandKind::Advscan);
/// assert_eq!(cmd.module().name(), "dcom2");
/// assert_eq!(cmd.threads(), Some(150));
/// assert!(cmd.flags().contains(&'b'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BotCommand {
    kind: CommandKind,
    module: ExploitModule,
    pattern: Option<ScanPattern>,
    params: Vec<u32>,
    flags: Vec<char>,
}

impl BotCommand {
    /// The command family.
    pub fn kind(&self) -> CommandKind {
        self.kind
    }

    /// The exploit module to scan with.
    pub fn module(&self) -> &ExploitModule {
        &self.module
    }

    /// The octet pattern, if the command carries one (`advscan` without a
    /// pattern scans everywhere).
    pub fn pattern(&self) -> Option<&ScanPattern> {
        self.pattern.as_ref()
    }

    /// Numeric parameters in order (threads, delay, count for `advscan`).
    pub fn params(&self) -> &[u32] {
        &self.params
    }

    /// Thread count (first numeric parameter), if present.
    pub fn threads(&self) -> Option<u32> {
        self.params.first().copied()
    }

    /// Single-letter flags (`-r -b -s` → `['r', 'b', 's']`).
    pub fn flags(&self) -> &[char] {
        &self.flags
    }

    /// The address range a drone at `local` will scan under this command:
    /// the resolved pattern prefix, or the whole space when no pattern is
    /// given.
    ///
    /// # Errors
    ///
    /// Propagates [`ResolveError`](crate::ResolveError) for non-prefix
    /// patterns.
    pub fn target_range<P: Prng32>(
        &self,
        local: Ip,
        prng: &mut P,
    ) -> Result<Prefix, crate::pattern::ResolveError> {
        match &self.pattern {
            Some(p) => p.resolve(local, prng),
            None => Ok(Prefix::ALL),
        }
    }

    /// Builds a live scanner for a drone at `local`: the command's
    /// hit-list restriction driving a
    /// [`HitListScanner`].
    ///
    /// # Errors
    ///
    /// Propagates pattern-resolution errors.
    pub fn scanner<P: Prng32>(
        &self,
        local: Ip,
        mut prng: P,
    ) -> Result<HitListScanner<P>, crate::pattern::ResolveError> {
        let range = self.target_range(local, &mut prng)?;
        let list = HitList::new(vec![range]).expect("single prefix list is valid"); // hotspots-lint: allow(panic-path) reason="single prefix list is valid"
        Ok(HitListScanner::new(list, prng))
    }
}

impl fmt::Display for BotCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match self.kind {
            CommandKind::Ipscan => {
                if let Some(p) = &self.pattern {
                    write!(f, " {p}")?;
                }
                write!(f, " {}", self.module.name())?;
            }
            CommandKind::Advscan => {
                write!(f, " {}", self.module.name())?;
                for p in &self.params {
                    write!(f, " {p}")?;
                }
                if let Some(p) = &self.pattern {
                    write!(f, " {p}")?;
                }
            }
        }
        for flag in &self.flags {
            write!(f, " -{flag}")?;
        }
        Ok(())
    }
}

impl FromStr for BotCommand {
    type Err = ParseCommandError;

    fn from_str(s: &str) -> Result<BotCommand, ParseCommandError> {
        let mut tokens = s.split_whitespace();
        let verb = tokens.next().ok_or(ParseCommandError::Missing("verb"))?;
        let kind = match verb {
            "advscan" | ".advscan" => CommandKind::Advscan,
            "ipscan" | ".ipscan" => CommandKind::Ipscan,
            other => return Err(ParseCommandError::UnknownVerb(other.to_owned())),
        };
        let rest: Vec<&str> = tokens.collect();

        let mut module: Option<ExploitModule> = None;
        let mut pattern: Option<ScanPattern> = None;
        let mut params: Vec<u32> = Vec::new();
        let mut flags: Vec<char> = Vec::new();

        for token in rest {
            if let Some(stripped) = token.strip_prefix('-') {
                if stripped.len() == 1 && stripped.chars().all(|c| c.is_ascii_alphabetic()) {
                    flags.push(stripped.chars().next().expect("len checked")); // hotspots-lint: allow(panic-path) reason="length checked on the previous line"
                    continue;
                }
                return Err(ParseCommandError::BadToken(token.to_owned()));
            }
            if looks_like_pattern(token) && pattern.is_none() {
                pattern = Some(
                    token
                        .parse()
                        .map_err(|_| ParseCommandError::BadToken(token.to_owned()))?,
                );
                continue;
            }
            if token.bytes().all(|b| b.is_ascii_digit()) {
                params.push(
                    token
                        .parse()
                        .map_err(|_| ParseCommandError::BadToken(token.to_owned()))?,
                );
                continue;
            }
            if module.is_none() {
                module = Some(ExploitModule::named(token));
                continue;
            }
            return Err(ParseCommandError::BadToken(token.to_owned()));
        }

        Ok(BotCommand {
            kind,
            module: module.ok_or(ParseCommandError::Missing("module"))?,
            pattern,
            params,
            flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;
    use hotspots_targeting::TargetGenerator;

    #[test]
    fn parse_ipscan_forms() {
        let cmd: BotCommand = "ipscan s.s.s.s dcom2 -s".parse().unwrap();
        assert_eq!(cmd.kind(), CommandKind::Ipscan);
        assert_eq!(cmd.module().name(), "dcom2");
        assert_eq!(cmd.pattern().unwrap().to_string(), "s.s.s.s");
        assert_eq!(cmd.flags(), ['s']);
    }

    #[test]
    fn parse_advscan_with_params_and_pattern() {
        let cmd: BotCommand = "advscan dcass 150 3 9999 x.x.x -b -s".parse().unwrap();
        assert_eq!(cmd.kind(), CommandKind::Advscan);
        assert_eq!(cmd.module().name(), "dcass");
        assert_eq!(cmd.params(), [150, 3, 9999]);
        assert_eq!(cmd.pattern().unwrap().to_string(), "x.x.x");
        assert_eq!(cmd.flags(), ['b', 's']);
    }

    #[test]
    fn parse_advscan_without_pattern() {
        let cmd: BotCommand = "advscan wkssvceng 100 5 0 -r -s".parse().unwrap();
        assert!(cmd.pattern().is_none());
        assert_eq!(cmd.threads(), Some(100));
        let range = cmd.target_range(Ip::MIN, &mut SplitMix::new(0)).unwrap();
        assert_eq!(range, Prefix::ALL);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "frobnicate 1.2.3.4".parse::<BotCommand>(),
            Err(ParseCommandError::UnknownVerb(_))
        ));
        assert!(matches!(
            "ipscan s.s.s.s".parse::<BotCommand>(),
            Err(ParseCommandError::Missing("module"))
        ));
        assert!(matches!(
            "advscan dcom2 --verbose".parse::<BotCommand>(),
            Err(ParseCommandError::BadToken(_))
        ));
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "ipscan i.i.i.i dcom2 -s",
            "advscan wkssvceng 100 5 0 -r -s",
            "ipscan 192.s.s.s dcom2 -s",
            "advscan dcass 150 3 9999 x.x.x -b -s",
            "ipscan s.s dcom2",
        ] {
            let cmd: BotCommand = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(cmd.to_string(), s);
            let again: BotCommand = cmd.to_string().parse().unwrap();
            assert_eq!(cmd, again);
        }
    }

    #[test]
    fn dotted_prefix_verbs_accepted() {
        let cmd: BotCommand = ".advscan lsass 200 5 0 -r".parse().unwrap();
        assert_eq!(cmd.module().name(), "lsass");
    }

    #[test]
    fn literal_octet_pattern_restricts_scanner() {
        let cmd: BotCommand = "ipscan 128.s.s.s dcom2 -s".parse().unwrap();
        let mut scanner = cmd
            .scanner(Ip::from_octets(141, 20, 0, 1), SplitMix::new(5))
            .unwrap();
        for _ in 0..1000 {
            assert_eq!(scanner.next_target().octets()[0], 128);
        }
    }

    #[test]
    fn local_pattern_scans_drone_home_network() {
        let cmd: BotCommand = "ipscan i.i.x.x dcom2 -s".parse().unwrap();
        let home = Ip::from_octets(141, 21, 0, 1);
        let range = cmd.target_range(home, &mut SplitMix::new(0)).unwrap();
        assert_eq!(range.to_string(), "141.21.0.0/16");
    }
}
