//! The dotted octet pattern language of bot scan commands.

use std::fmt;
use std::str::FromStr;

use hotspots_ipspace::{Ip, Prefix};
use hotspots_prng::Prng32;

/// One octet position of a [`ScanPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OctetSpec {
    /// A literal octet value (`192`).
    Literal(u8),
    /// `i` — inherit the bot's own octet (scan near home).
    Local,
    /// `s` — pick a random value once when the scan starts, then stick
    /// with it (each drone picks its own subnet).
    Sticky,
    /// `r` — a fresh random value for every probe.
    Random,
    /// `x` — wildcard, random per probe (synonym of `r` in the wild;
    /// kept distinct so parsed commands print back verbatim).
    Wildcard,
}

impl fmt::Display for OctetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OctetSpec::Literal(v) => write!(f, "{v}"),
            OctetSpec::Local => f.write_str("i"),
            OctetSpec::Sticky => f.write_str("s"),
            OctetSpec::Random => f.write_str("r"),
            OctetSpec::Wildcard => f.write_str("x"),
        }
    }
}

/// Error parsing a [`ScanPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    input: String,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scan pattern: {:?}", self.input)
    }
}

impl std::error::Error for ParsePatternError {}

/// Error resolving a pattern into a scan range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// A fixed octet (literal/`i`/`s`) appears after a free octet
    /// (`r`/`x`/omitted), so the reachable set is not a prefix. Such
    /// commands exist but are rare; callers may fall back to counting.
    NotAPrefix,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NotAPrefix => {
                f.write_str("pattern fixes an octet after a free octet; range is not a prefix")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// A dotted octet pattern such as `192.s.s.s`, `i.i.i.i`, `x.x.x`, or
/// `194.s.s` — between one and four octet positions; omitted trailing
/// positions are swept like `r`.
///
/// # Examples
///
/// ```
/// use hotspots_botnet::ScanPattern;
///
/// let p: ScanPattern = "194.s.s.s".parse().unwrap();
/// assert_eq!(p.to_string(), "194.s.s.s");
/// assert_eq!(p.reachable_addresses(), 1 << 24); // all of 194/8
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanPattern {
    octets: Vec<OctetSpec>,
}

impl ScanPattern {
    /// Creates a pattern from explicit octet specs.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= octets.len() <= 4`.
    pub fn new(octets: Vec<OctetSpec>) -> ScanPattern {
        assert!(
            (1..=4).contains(&octets.len()),
            "pattern needs 1..=4 octets, got {}",
            octets.len()
        );
        ScanPattern { octets }
    }

    /// The octet specs, leading first.
    pub fn octets(&self) -> &[OctetSpec] {
        &self.octets
    }

    /// Number of distinct addresses the pattern can ever emit, across all
    /// sticky choices and probes (literals and `i` count 1; everything
    /// else counts 256).
    pub fn reachable_addresses(&self) -> u64 {
        let mut total = 1u64;
        for i in 0..4 {
            let spec = self.octets.get(i).copied().unwrap_or(OctetSpec::Random);
            total *= match spec {
                OctetSpec::Literal(_) | OctetSpec::Local => 1,
                OctetSpec::Sticky | OctetSpec::Random | OctetSpec::Wildcard => 256,
            };
        }
        total
    }

    /// Resolves the pattern for one drone's scan session: literals stay,
    /// `i` takes the drone's own octets, `s` draws one sticky random
    /// value per position, and the free tail becomes the scanned range.
    ///
    /// A scan session must sweep *something*, so `i` and `s` in the final
    /// (fourth) octet position are treated as part of the swept range —
    /// `s.s.s.s` means "each drone picks its own /24 and sweeps it", and
    /// `i.i.i.i` means "sweep my own /24", matching observed drone
    /// behavior. Only a literal can pin the last octet.
    ///
    /// Returns the CIDR prefix this drone's scan session covers.
    ///
    /// # Errors
    ///
    /// [`ResolveError::NotAPrefix`] if a fixed octet follows a free one
    /// (e.g. `r.194.x.x`).
    pub fn resolve<P: Prng32>(&self, local: Ip, prng: &mut P) -> Result<Prefix, ResolveError> {
        let local_octets = local.octets();
        let mut fixed: Vec<u8> = Vec::with_capacity(4);
        let mut free_seen = false;
        for (i, &local_octet) in local_octets.iter().enumerate() {
            let spec = self.octets.get(i).copied().unwrap_or(OctetSpec::Random);
            let is_final = i == 3;
            match spec {
                OctetSpec::Literal(v) => {
                    if free_seen {
                        return Err(ResolveError::NotAPrefix);
                    }
                    fixed.push(v);
                }
                OctetSpec::Local if !is_final => {
                    if free_seen {
                        return Err(ResolveError::NotAPrefix);
                    }
                    fixed.push(local_octet);
                }
                OctetSpec::Sticky if !is_final => {
                    if free_seen {
                        return Err(ResolveError::NotAPrefix);
                    }
                    fixed.push((prng.next_u32() >> 24) as u8);
                }
                OctetSpec::Local | OctetSpec::Sticky | OctetSpec::Random | OctetSpec::Wildcard => {
                    free_seen = true;
                }
            }
        }
        let mut base = [0u8; 4];
        base[..fixed.len()].copy_from_slice(&fixed);
        let len = (fixed.len() * 8) as u8;
        Ok(Prefix::containing(Ip::from(base), len))
    }
}

impl fmt::Display for ScanPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, o) in self.octets.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

impl FromStr for ScanPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<ScanPattern, ParsePatternError> {
        let err = || ParsePatternError {
            input: s.to_owned(),
        };
        let parts: Vec<&str> = s.split('.').collect();
        if parts.is_empty() || parts.len() > 4 {
            return Err(err());
        }
        let mut octets = Vec::with_capacity(parts.len());
        for part in parts {
            let spec = match part {
                "i" => OctetSpec::Local,
                "s" => OctetSpec::Sticky,
                "r" => OctetSpec::Random,
                "x" => OctetSpec::Wildcard,
                lit => {
                    if lit.is_empty() || lit.len() > 3 || !lit.bytes().all(|b| b.is_ascii_digit()) {
                        return Err(err());
                    }
                    OctetSpec::Literal(lit.parse::<u8>().map_err(|_| err())?)
                }
            };
            octets.push(spec);
        }
        Ok(ScanPattern { octets })
    }
}

/// Returns `true` if a token looks like a scan pattern (used by the
/// command parser to distinguish patterns from numeric parameters: a bare
/// number like `150` is a parameter, not a single-octet pattern).
pub(crate) fn looks_like_pattern(token: &str) -> bool {
    token.contains('.') && token.parse::<ScanPattern>().is_ok()
        || matches!(token, "i" | "s" | "r" | "x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;
    use proptest::prelude::*;

    #[test]
    fn parse_table1_shapes() {
        for s in [
            "i.i.i.i",
            "s.s.s.s",
            "r.r.r.r",
            "x.x.x",
            "x.x",
            "s.s",
            "s.s.s",
            "194.s.s.s",
            "192.s.s.s",
            "128.s.s.s",
        ] {
            let p: ScanPattern = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(p.to_string(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "....",
            "1.2.3.4.5",
            "256.s.s.s",
            "a.b.c.d",
            "-1.s",
            "1..2",
        ] {
            assert!(s.parse::<ScanPattern>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn literal_pattern_is_single_slash32_family() {
        let p: ScanPattern = "10.1.2.3".parse().unwrap();
        assert_eq!(p.reachable_addresses(), 1);
        let r = p.resolve(Ip::MIN, &mut SplitMix::new(0)).unwrap();
        assert_eq!(r.to_string(), "10.1.2.3/32");
    }

    #[test]
    fn local_pattern_scans_home() {
        let p: ScanPattern = "i.i.x.x".parse().unwrap();
        let home = Ip::from_octets(141, 20, 7, 7);
        let r = p.resolve(home, &mut SplitMix::new(0)).unwrap();
        assert_eq!(r.to_string(), "141.20.0.0/16");
    }

    #[test]
    fn sticky_pattern_fixes_subnet_per_session() {
        let p: ScanPattern = "s.s".parse().unwrap();
        let mut prng = SplitMix::new(9);
        let r1 = p.resolve(Ip::MIN, &mut prng).unwrap();
        let r2 = p.resolve(Ip::MIN, &mut prng).unwrap();
        assert_eq!(r1.len(), 16);
        assert_ne!(r1, r2, "two sessions should pick different /16s");
    }

    #[test]
    fn short_pattern_sweeps_tail() {
        let p: ScanPattern = "194.s.s".parse().unwrap();
        // only 3 positions given: 4th octet swept
        let r = p.resolve(Ip::MIN, &mut SplitMix::new(3)).unwrap();
        assert_eq!(r.len(), 24);
        assert_eq!(r.base().octets()[0], 194);
    }

    #[test]
    fn fixed_after_free_is_not_a_prefix() {
        let p: ScanPattern = "x.194.x.x".parse().unwrap();
        assert_eq!(
            p.resolve(Ip::MIN, &mut SplitMix::new(0)),
            Err(ResolveError::NotAPrefix)
        );
    }

    #[test]
    fn reachable_counts() {
        assert_eq!(
            "192.s.s.s"
                .parse::<ScanPattern>()
                .unwrap()
                .reachable_addresses(),
            1 << 24
        );
        assert_eq!(
            "s.s".parse::<ScanPattern>().unwrap().reachable_addresses(),
            1 << 32
        );
        assert_eq!(
            "i.i.i.i"
                .parse::<ScanPattern>()
                .unwrap()
                .reachable_addresses(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn new_rejects_wrong_arity() {
        let _ = ScanPattern::new(vec![]);
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(octets in proptest::collection::vec(0u8..=4, 1..=4), lits in proptest::collection::vec(any::<u8>(), 4)) {
            let specs: Vec<OctetSpec> = octets.iter().enumerate().map(|(i, k)| match k {
                0 => OctetSpec::Literal(lits[i]),
                1 => OctetSpec::Local,
                2 => OctetSpec::Sticky,
                3 => OctetSpec::Random,
                _ => OctetSpec::Wildcard,
            }).collect();
            let p = ScanPattern::new(specs);
            let back: ScanPattern = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn resolved_prefix_contains_only_reachable(seed in any::<u64>()) {
            let p: ScanPattern = "192.s.x.x".parse().unwrap();
            let r = p.resolve(Ip::MIN, &mut SplitMix::new(seed)).unwrap();
            prop_assert_eq!(r.len(), 16);
            prop_assert_eq!(r.base().octets()[0], 192);
        }
    }
}
