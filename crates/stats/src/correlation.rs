//! Correlation between paired samples.

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` for fewer than 2 points, mismatched lengths, NaN
/// values, or zero variance on either side.
///
/// # Examples
///
/// ```
/// use hotspots_stats::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]).unwrap();
/// assert!((r + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y).any(|v| v.is_nan()) {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mean_x) * (b - mean_y);
        var_x += (a - mean_x) * (a - mean_x);
        var_y += (b - mean_y) * (b - mean_y);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Spearman rank correlation: Pearson over the rank-transformed samples
/// (average ranks for ties). Robust to monotone-but-nonlinear relations,
/// which is how "the prediction matches the measurement" claims should
/// be scored.
///
/// Returns `None` under the same conditions as [`pearson`].
///
/// # Examples
///
/// ```
/// use hotspots_stats::spearman;
///
/// // monotone but nonlinear: rank correlation is exactly 1
/// let r = spearman(&[1.0, 2.0, 3.0, 4.0], &[1.0, 10.0, 100.0, 1000.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x)?, &ranks(y)?)
}

fn ranks(v: &[f64]) -> Option<Vec<f64>> {
    if v.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        // tie group [i, j)
        let mut j = i + 1;
        while j < idx.len() && v[idx[j]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j - 1) as f64 / 2.0 + 1.0;
        for &k in &idx[i..j] {
            out[k] = avg_rank;
        }
        i = j;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[], &[]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none(), "zero variance");
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pearson_known_value() {
        // r for a noisy positive relation
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        let r = spearman(&x, &y).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[5.0, 1.0, 5.0]).unwrap();
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }

    proptest! {
        #[test]
        fn pearson_in_unit_interval(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..100)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r={r}");
            }
        }

        #[test]
        fn correlation_is_symmetric(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert_eq!(pearson(&x, &y).is_some(), pearson(&y, &x).is_some());
            if let (Some(a), Some(b)) = (pearson(&x, &y), pearson(&y, &x)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
