//! Time series for infection and alert curves.

use std::fmt;

/// A monotone-time series of `(time, value)` points, e.g.
/// "% of vulnerable hosts infected vs seconds" (Fig 5a) or
/// "% of sensors alerting vs seconds" (Fig 5b/5c).
///
/// # Examples
///
/// ```
/// use hotspots_stats::TimeSeries;
///
/// let mut ts = TimeSeries::new("infected");
/// ts.push(0.0, 0.0);
/// ts.push(10.0, 0.4);
/// ts.push(20.0, 0.9);
/// assert_eq!(ts.time_to_reach(0.5), Some(20.0));
/// assert_eq!(ts.value_at(15.0), 0.4); // step interpolation
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSeries {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name (used as the column header in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not ≥ the last time pushed (series are
    /// monotone in time) or if either coordinate is NaN.
    pub fn push(&mut self, time: f64, value: f64) {
        assert!(!time.is_nan() && !value.is_nan(), "NaN point");
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "time must be monotone: {time} < {last}");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The earliest time at which the series value is ≥ `threshold`, if
    /// ever.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.iter().find(|&(_, v)| v >= threshold).map(|(t, _)| t)
    }

    /// The last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Step-interpolated value at `time` (value of the latest point at or
    /// before `time`; 0.0 before the first point).
    pub fn value_at(&self, time: f64) -> f64 {
        match self.times.partition_point(|&t| t <= time) {
            0 => 0.0,
            i => self.values[i - 1],
        }
    }

    /// Resamples onto a uniform grid of `n` points from the first to last
    /// time (step interpolation). Returns an empty series if this one is.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` while the series is non-empty.
    pub fn resample(&self, n: usize) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        if self.is_empty() {
            return out;
        }
        assert!(n >= 2, "need at least 2 grid points");
        let t0 = self.times[0];
        let t1 = *self.times.last().expect("non-empty"); // hotspots-lint: allow(panic-path) reason="guarded by the is_empty check above"
        for i in 0..n {
            let t = t0 + (t1 - t0) * (i as f64) / ((n - 1) as f64);
            out.push(t, self.value_at(t));
        }
        out
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for (t, v) in self.iter() {
            writeln!(f, "{t:.3}\t{v:.6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> TimeSeries {
        let mut ts = TimeSeries::new("t");
        ts.push(0.0, 0.0);
        ts.push(5.0, 0.2);
        ts.push(10.0, 0.8);
        ts.push(20.0, 1.0);
        ts
    }

    #[test]
    fn push_and_len() {
        let ts = make();
        assert_eq!(ts.len(), 4);
        assert!(!ts.is_empty());
        assert_eq!(ts.last_value(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn push_rejects_time_regression() {
        let mut ts = make();
        ts.push(3.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_rejects_nan() {
        let mut ts = TimeSeries::new("t");
        ts.push(f64::NAN, 0.0);
    }

    #[test]
    fn time_to_reach_finds_crossing() {
        let ts = make();
        assert_eq!(ts.time_to_reach(0.0), Some(0.0));
        assert_eq!(ts.time_to_reach(0.5), Some(10.0));
        assert_eq!(ts.time_to_reach(1.0), Some(20.0));
        assert_eq!(ts.time_to_reach(1.5), None);
    }

    #[test]
    fn value_at_steps() {
        let ts = make();
        assert_eq!(ts.value_at(-1.0), 0.0);
        assert_eq!(ts.value_at(0.0), 0.0);
        assert_eq!(ts.value_at(7.5), 0.2);
        assert_eq!(ts.value_at(10.0), 0.8);
        assert_eq!(ts.value_at(100.0), 1.0);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let ts = make();
        let r = ts.resample(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.iter().next(), Some((0.0, 0.0)));
        assert_eq!(r.last_value(), Some(1.0));
    }

    #[test]
    fn resample_empty_is_empty() {
        let ts = TimeSeries::new("e");
        assert!(ts.resample(10).is_empty());
    }

    #[test]
    fn equal_times_allowed() {
        let mut ts = TimeSeries::new("t");
        ts.push(1.0, 0.1);
        ts.push(1.0, 0.2);
        assert_eq!(ts.value_at(1.0), 0.2);
    }
}
