//! Deviation-from-uniformity metrics.
//!
//! The paper defines hotspots as "deviations from uniform propagation".
//! These functions quantify that deviation for a vector of per-cell counts
//! (typically per-/24 unique-source counts across a sensor's address
//! range).
//!
//! * [`gini`] — 0 for perfectly even counts, → 1 as mass concentrates;
//! * [`normalized_entropy`] — 1 for uniform, → 0 as mass concentrates;
//! * [`chi_square_uniform`] — the classical χ² goodness-of-fit statistic
//!   against the uniform null, with an approximate p-value;
//! * [`kl_divergence_uniform`] — information gain over the uniform model;
//! * [`max_median_ratio`] — the "orders of magnitude between sensors"
//!   headline number from the darknet measurement papers.

/// The Gini coefficient of a count vector (0 = perfectly uniform,
/// approaching 1 = all mass in one cell).
///
/// Returns 0 for empty or all-zero inputs.
///
/// # Examples
///
/// ```
/// use hotspots_stats::uniformity::gini;
///
/// assert_eq!(gini(&[5, 5, 5, 5]), 0.0);
/// assert!(gini(&[0, 0, 0, 20]) > 0.7);
/// ```
pub fn gini(counts: &[u64]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    // G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n, with 1-based i
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let nf = n as f64;
    (2.0 * weighted) / (nf * total as f64) - (nf + 1.0) / nf
}

/// Shannon entropy (in bits) of the empirical distribution defined by
/// `counts`. Zero cells contribute nothing; returns 0 for empty/all-zero
/// input.
pub fn shannon_entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

/// Entropy normalized by `log2(n)`: 1.0 means perfectly uniform over the
/// `n` cells, lower values mean concentration. Returns 0 for fewer than
/// two cells.
///
/// # Examples
///
/// ```
/// use hotspots_stats::uniformity::normalized_entropy;
///
/// assert!((normalized_entropy(&[3, 3, 3, 3]) - 1.0).abs() < 1e-12);
/// assert!(normalized_entropy(&[100, 0, 0, 0]) < 0.01);
/// ```
pub fn normalized_entropy(counts: &[u64]) -> f64 {
    if counts.len() < 2 {
        return 0.0;
    }
    shannon_entropy(counts) / (counts.len() as f64).log2()
}

/// Result of a χ² goodness-of-fit test against the uniform distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChiSquare {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (`cells − 1`).
    pub degrees_of_freedom: u64,
    /// Approximate p-value under the null (uniform), via the
    /// Wilson–Hilferty cube-root normal approximation. Accurate to a few
    /// decimal places for df ≥ 3, which is ample for "reject/don't
    /// reject at 0.01" judgments.
    pub p_value: f64,
}

impl ChiSquare {
    /// Convenience: is the deviation significant at the given level?
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// χ² test of `counts` against the uniform null.
///
/// Returns `None` for fewer than 2 cells or zero total (no test possible).
///
/// # Examples
///
/// ```
/// use hotspots_stats::uniformity::chi_square_uniform;
///
/// let even = chi_square_uniform(&[10, 11, 9, 10]).unwrap();
/// assert!(!even.is_significant(0.01));
/// let spiked = chi_square_uniform(&[1, 1, 1, 97]).unwrap();
/// assert!(spiked.is_significant(0.001));
/// ```
pub fn chi_square_uniform(counts: &[u64]) -> Option<ChiSquare> {
    let k = counts.len();
    if k < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let expected = total as f64 / k as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = (k - 1) as u64;
    Some(ChiSquare {
        statistic,
        degrees_of_freedom: df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Kullback–Leibler divergence (bits) of the empirical distribution from
/// the uniform distribution over the same cells. 0 iff exactly uniform.
pub fn kl_divergence_uniform(counts: &[u64]) -> f64 {
    if counts.len() < 2 {
        return 0.0;
    }
    let n = counts.len() as f64;
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            p * (p * n).log2()
        })
        .sum()
}

/// Ratio of the maximum cell to the median cell (∞ if the median is 0 but
/// the max is not). The darknet measurement literature reports
/// "orders-of-magnitude" differences between sensors with this flavor of
/// statistic.
///
/// Returns 1.0 for empty input.
pub fn max_median_ratio(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let max = *sorted.last().expect("non-empty"); // hotspots-lint: allow(panic-path) reason="guarded by the is_empty check above"
    let median = sorted[sorted.len() / 2];
    if median == 0 {
        if max == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max as f64 / median as f64
    }
}

/// χ² test of `counts` against a null in which cell `i` expects mass
/// proportional to `weights[i]` — the right test when cells cover
/// different amounts of address space (e.g. a /16 row next to /24 rows).
///
/// Returns `None` when no test is possible (fewer than 2 cells, zero
/// total, or non-positive weights).
///
/// # Panics
///
/// Panics if `counts` and `weights` have different lengths.
///
/// # Examples
///
/// ```
/// use hotspots_stats::uniformity::chi_square_weighted;
///
/// // cell 0 is 4× the size of cell 1: 80/20 is perfectly proportional
/// let t = chi_square_weighted(&[80, 20], &[4.0, 1.0]).unwrap();
/// assert!(!t.is_significant(0.05));
/// let t = chi_square_weighted(&[20, 80], &[4.0, 1.0]).unwrap();
/// assert!(t.is_significant(0.001));
/// ```
pub fn chi_square_weighted(counts: &[u64], weights: &[f64]) -> Option<ChiSquare> {
    assert_eq!(
        counts.len(),
        weights.len(),
        "counts/weights length mismatch"
    );
    let k = counts.len();
    if k < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    let weight_sum: f64 = weights.iter().sum();
    if total == 0 || weight_sum <= 0.0 || weights.iter().any(|&w| w <= 0.0 || w.is_nan()) {
        return None;
    }
    let statistic: f64 = counts
        .iter()
        .zip(weights)
        .map(|(&c, &w)| {
            let expected = total as f64 * w / weight_sum;
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = (k - 1) as u64;
    Some(ChiSquare {
        statistic,
        degrees_of_freedom: df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Weighted Gini coefficient of per-cell `rates`, where cell `i` carries
/// population share `weights[i]` (address-space size). 0 means every
/// address sees the same rate; → 1 means the mass piles onto a sliver of
/// the space.
///
/// Returns 0 for degenerate input (empty, zero weights, zero rates).
///
/// # Panics
///
/// Panics if the slices have different lengths or contain NaN.
pub fn gini_weighted(rates: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(rates.len(), weights.len(), "rates/weights length mismatch");
    assert!(
        rates.iter().chain(weights).all(|v| !v.is_nan()),
        "NaN in gini input"
    );
    let total_w: f64 = weights.iter().sum();
    let mean: f64 = rates.iter().zip(weights).map(|(r, w)| r * w).sum::<f64>() / total_w;
    if total_w <= 0.0 || total_w.is_nan() || mean <= 0.0 || mean.is_nan() {
        return 0.0;
    }
    let mut cells: Vec<(f64, f64)> = rates.iter().copied().zip(weights.iter().copied()).collect();
    cells.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Lorenz-curve integration over the sorted cells.
    let mut cum_w = 0.0; // population fraction before this cell
    let mut cum_m = 0.0; // mass fraction before this cell
    let total_m: f64 = mean * total_w;
    let mut area = 0.0; // area under the Lorenz curve
    for (rate, w) in cells {
        let dw = w / total_w;
        let dm = rate * w / total_m;
        // trapezoid from (cum_w, cum_m) to (cum_w+dw, cum_m+dm)
        area += dw * (cum_m + dm / 2.0);
        cum_w += dw;
        cum_m += dm;
    }
    let _ = cum_w;
    (1.0 - 2.0 * area).clamp(0.0, 1.0)
}

/// Survival function (1 − CDF) of the χ² distribution with `df` degrees of
/// freedom, via the Wilson–Hilferty approximation.
fn chi_square_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    // (X/df)^(1/3) ~ Normal(1 - 2/(9df), 2/(9df))
    let t = (x / df).powf(1.0 / 3.0);
    let mu = 1.0 - 2.0 / (9.0 * df);
    let sigma = (2.0 / (9.0 * df)).sqrt();
    normal_sf((t - mu) / sigma)
}

/// Standard normal survival function via the Abramowitz–Stegun erf
/// approximation (max abs error ≈ 1.5e-7).
fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gini_uniform_is_zero() {
        assert_eq!(gini(&[7, 7, 7]), 0.0);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_concentration_extremes() {
        // all mass in 1 of n cells → G = (n-1)/n
        let mut v = vec![0u64; 100];
        v[31] = 1000;
        assert!((gini(&v) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[5]), 0.0);
        assert!((shannon_entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_entropy_degenerate_cases() {
        assert_eq!(normalized_entropy(&[]), 0.0);
        assert_eq!(normalized_entropy(&[9]), 0.0);
    }

    #[test]
    fn chi_square_no_test_cases() {
        assert!(chi_square_uniform(&[]).is_none());
        assert!(chi_square_uniform(&[5]).is_none());
        assert!(chi_square_uniform(&[0, 0, 0]).is_none());
    }

    #[test]
    fn chi_square_detects_blaster_style_spike() {
        // 256 cells, uniform background 10 each, one cell at 500
        let mut v = vec![10u64; 256];
        v[100] = 500;
        let t = chi_square_uniform(&v).unwrap();
        assert!(
            t.is_significant(1e-6),
            "p={} stat={}",
            t.p_value,
            t.statistic
        );
    }

    #[test]
    fn chi_square_accepts_binomial_noise() {
        // counts drawn uniformly: should usually NOT be significant
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = vec![0u64; 64];
        for _ in 0..6400 {
            v[rng.gen_range(0..64)] += 1;
        }
        let t = chi_square_uniform(&v).unwrap();
        assert!(!t.is_significant(0.001), "p={}", t.p_value);
    }

    #[test]
    fn chi_square_p_value_reference_points() {
        // χ²(df=10) upper tail: P(X > 18.307) = 0.05
        let sf = super::chi_square_sf(18.307, 10.0);
        assert!((sf - 0.05).abs() < 0.004, "sf={sf}");
        // χ²(df=1)... Wilson-Hilferty is weakest at df=1; allow slack
        let sf1 = super::chi_square_sf(3.841, 1.0);
        assert!((sf1 - 0.05).abs() < 0.02, "sf={sf1}");
    }

    #[test]
    fn kl_divergence_zero_iff_uniform() {
        assert!(kl_divergence_uniform(&[4, 4, 4, 4]).abs() < 1e-12);
        assert!(kl_divergence_uniform(&[8, 0, 0, 0]) > 1.9);
    }

    #[test]
    fn max_median_ratio_cases() {
        assert_eq!(max_median_ratio(&[]), 1.0);
        assert_eq!(max_median_ratio(&[3, 3, 3]), 1.0);
        assert_eq!(max_median_ratio(&[1, 2, 100]), 50.0);
        assert_eq!(max_median_ratio(&[0, 0, 9]), f64::INFINITY);
        assert_eq!(max_median_ratio(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn normal_sf_reference() {
        assert!((super::normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((super::normal_sf(1.6449) - 0.05).abs() < 1e-4);
        assert!((super::normal_sf(-1.6449) - 0.95).abs() < 1e-4);
    }

    #[test]
    fn weighted_chi_square_handles_proportional_mass() {
        // equal weights must agree with the unweighted test
        let counts = [5u64, 9, 7, 100];
        let uw = chi_square_uniform(&counts).unwrap();
        let w = chi_square_weighted(&counts, &[1.0; 4]).unwrap();
        assert!((uw.statistic - w.statistic).abs() < 1e-9);
        // non-positive weights are untestable
        assert!(chi_square_weighted(&counts, &[1.0, 1.0, 0.0, 1.0]).is_none());
    }

    #[test]
    fn weighted_gini_uniform_rates_zero() {
        assert_eq!(gini_weighted(&[3.0, 3.0, 3.0], &[1.0, 10.0, 256.0]), 0.0);
        assert_eq!(gini_weighted(&[], &[]), 0.0);
        assert_eq!(gini_weighted(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn weighted_gini_matches_unweighted_on_equal_weights() {
        let counts = [0u64, 0, 5, 10, 100];
        let rates: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let weights = vec![1.0; counts.len()];
        let unweighted = gini(&counts);
        let weighted = gini_weighted(&rates, &weights);
        assert!(
            (unweighted - weighted).abs() < 0.01,
            "unweighted {unweighted} vs weighted {weighted}"
        );
    }

    #[test]
    fn weighted_gini_splitting_a_cell_is_invariant() {
        // splitting one cell into two halves with the same rate must not
        // change the coefficient
        let a = gini_weighted(&[1.0, 5.0], &[2.0, 2.0]);
        let b = gini_weighted(&[1.0, 1.0, 5.0], &[1.0, 1.0, 2.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn weighted_gini_concentration_approaches_one() {
        // all mass on a sliver of the population
        let g = gini_weighted(&[0.0, 1000.0], &[999.0, 1.0]);
        assert!(g > 0.99, "g={g}");
    }

    proptest! {
        #[test]
        fn weighted_gini_in_unit_interval(
            rates in proptest::collection::vec(0.0f64..1e4, 1..100),
            seed in any::<u64>(),
        ) {
            // weights derived deterministically from the seed
            let mut w = seed;
            let weights: Vec<f64> = rates.iter().map(|_| {
                w = w.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((w >> 33) % 1000 + 1) as f64
            }).collect();
            let g = gini_weighted(&rates, &weights);
            prop_assert!((0.0..=1.0).contains(&g), "g={g}");
        }

        #[test]
        fn gini_in_unit_interval(v in proptest::collection::vec(0u64..10_000, 1..200)) {
            let g = gini(&v);
            prop_assert!((0.0..=1.0).contains(&g), "g={g}");
        }

        #[test]
        fn entropy_at_most_log_n(v in proptest::collection::vec(0u64..10_000, 1..200)) {
            let h = shannon_entropy(&v);
            prop_assert!(h <= (v.len() as f64).log2() + 1e-9);
            prop_assert!(h >= 0.0);
        }

        #[test]
        fn kl_nonnegative(v in proptest::collection::vec(0u64..10_000, 2..200)) {
            prop_assert!(kl_divergence_uniform(&v) >= -1e-9);
        }

        #[test]
        fn scaling_counts_preserves_gini(v in proptest::collection::vec(1u64..100, 2..50), k in 2u64..10) {
            let scaled: Vec<u64> = v.iter().map(|x| x * k).collect();
            prop_assert!((gini(&v) - gini(&scaled)).abs() < 1e-9);
        }

        #[test]
        fn p_value_in_unit_interval(v in proptest::collection::vec(0u64..1000, 2..100)) {
            if let Some(t) = chi_square_uniform(&v) {
                prop_assert!((0.0..=1.0).contains(&t.p_value));
            }
        }
    }
}
