//! Keyed counting histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A counting histogram over an ordered key type.
///
/// Keys are kept sorted (BTreeMap) so iterating a histogram over
/// [`Bucket24`](https://docs.rs/hotspots-ipspace) keys walks the address
/// space in order — exactly the x-axis of the paper's figures.
///
/// # Examples
///
/// ```
/// use hotspots_stats::CountHistogram;
///
/// let mut h = CountHistogram::new();
/// h.record(3u32);
/// h.record_n(5u32, 10);
/// assert_eq!(h.count(&5), 10);
/// assert_eq!(h.total(), 11);
/// assert_eq!(h.distinct(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountHistogram<K: Ord> {
    counts: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord> CountHistogram<K> {
    /// Creates an empty histogram.
    pub fn new() -> CountHistogram<K> {
        CountHistogram {
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Adds one observation of `key`.
    pub fn record(&mut self, key: K) {
        self.record_n(key, 1);
    }

    /// Adds `n` observations of `key`.
    pub fn record_n(&mut self, key: K, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// The count for `key` (0 if never recorded).
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total observations across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys observed at least once.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// The counts in key order (the vector the uniformity metrics eat).
    ///
    /// Note this only includes keys that were observed; when testing
    /// uniformity over a *known* support (e.g. all 256 /24s of a /16), use
    /// [`CountHistogram::counts_over`] so zero cells count against
    /// uniformity.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// The counts over an explicit key universe, including zeros.
    pub fn counts_over<'a, I>(&self, universe: I) -> Vec<u64>
    where
        I: IntoIterator<Item = &'a K>,
        K: 'a,
    {
        universe.into_iter().map(|k| self.count(k)).collect()
    }

    /// The key with the largest count, if any (ties broken by key order).
    pub fn mode(&self) -> Option<(&K, u64)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, &v)| (k, v))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: CountHistogram<K>) {
        for (k, v) in other.counts {
            self.record_n(k, v);
        }
    }
}

impl<K: Ord> Default for CountHistogram<K> {
    fn default() -> CountHistogram<K> {
        CountHistogram::new()
    }
}

impl<K: Ord> FromIterator<K> for CountHistogram<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> CountHistogram<K> {
        let mut h = CountHistogram::new();
        for k in iter {
            h.record(k);
        }
        h
    }
}

impl<K: Ord> Extend<K> for CountHistogram<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for k in iter {
            self.record(k);
        }
    }
}

impl<K: Ord + fmt::Display> fmt::Display for CountHistogram<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "histogram ({} keys, {} total)",
            self.distinct(),
            self.total
        )?;
        for (k, v) in self.iter() {
            writeln!(f, "  {k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_and_count() {
        let mut h = CountHistogram::new();
        assert!(h.is_empty());
        h.record("x");
        h.record("x");
        h.record("y");
        assert_eq!(h.count(&"x"), 2);
        assert_eq!(h.count(&"y"), 1);
        assert_eq!(h.count(&"z"), 0);
        assert_eq!(h.total(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = CountHistogram::new();
        h.record_n("x", 0);
        assert!(h.is_empty());
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    fn iter_is_key_ordered() {
        let h: CountHistogram<u32> = [5u32, 1, 3, 1].into_iter().collect();
        let keys: Vec<u32> = h.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, [1, 3, 5]);
    }

    #[test]
    fn counts_over_includes_zeros() {
        let h: CountHistogram<u32> = [2u32, 2].into_iter().collect();
        let universe = [1u32, 2, 3];
        assert_eq!(h.counts_over(universe.iter()), vec![0, 2, 0]);
    }

    #[test]
    fn mode_picks_largest() {
        let h: CountHistogram<&str> = ["a", "b", "b", "c"].into_iter().collect();
        assert_eq!(h.mode(), Some((&"b", 2)));
        let empty: CountHistogram<&str> = CountHistogram::new();
        assert_eq!(empty.mode(), None);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a: CountHistogram<u8> = [1u8, 2].into_iter().collect();
        let b: CountHistogram<u8> = [2u8, 3].into_iter().collect();
        a.merge(b);
        assert_eq!(a.count(&1), 1);
        assert_eq!(a.count(&2), 2);
        assert_eq!(a.count(&3), 1);
        assert_eq!(a.total(), 4);
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_counts(keys in proptest::collection::vec(0u8..16, 0..200)) {
            let h: CountHistogram<u8> = keys.iter().copied().collect();
            prop_assert_eq!(h.total(), h.counts().iter().sum::<u64>());
            prop_assert_eq!(h.total(), keys.len() as u64);
        }

        #[test]
        fn merge_conserves_mass(
            a in proptest::collection::vec(0u8..16, 0..100),
            b in proptest::collection::vec(0u8..16, 0..100),
        ) {
            let mut ha: CountHistogram<u8> = a.iter().copied().collect();
            let hb: CountHistogram<u8> = b.iter().copied().collect();
            let expected = ha.total() + hb.total();
            ha.merge(hb);
            prop_assert_eq!(ha.total(), expected);
        }
    }
}
