//! Descriptive statistics.

use std::fmt;

/// Descriptive statistics of a sample: moments, extremes, and quantiles.
///
/// # Examples
///
/// ```
/// use hotspots_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.quantile(0.5), 2.0); // nearest-rank median of even-length sample
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    n: usize,
    mean: f64,
    std: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes a summary of `values`. Returns `None` if `values` is empty
    /// or contains NaN.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            sorted,
        })
    }

    /// Computes a summary of integer counts.
    pub fn of_counts(counts: &[u64]) -> Option<Summary> {
        let as_f: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Summary::of(&as_f)
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction") // hotspots-lint: allow(panic-path) reason="constructor rejects empty samples"
    }

    /// Median (nearest-rank: the lower median for even n).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The `q`-quantile by the nearest-rank definition: the smallest
    /// sorted value whose rank is at least `ceil(n * q)` (rank 1 for
    /// `q = 0`).
    ///
    /// The naive `(n * q) as usize` truncates instead of taking the
    /// ceiling, which shifts every non-boundary quantile one rank high
    /// — e.g. it reported the *upper* median of an even-length sample.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        let rank = ((self.n as f64) * q).ceil() as usize;
        self.sorted[rank.max(1).min(self.n) - 1]
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} p90={:.3} max={:.3}",
            self.n,
            self.mean,
            self.std,
            self.min(),
            self.median(),
            self.quantile(0.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn of_counts_matches_of() {
        let a = Summary::of_counts(&[1, 2, 3]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn quantiles_monotone() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!(s.quantile(0.25) <= s.quantile(0.75));
    }

    #[test]
    fn quantile_hits_exact_nearest_ranks() {
        // n = 4: ceil(4q) ranks — q=0.5 is rank 2 (the LOWER median),
        // which the old truncating index got wrong (it returned 3.0)
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.quantile(0.25), 1.0);
        assert_eq!(s.quantile(0.75), 3.0);
        assert_eq!(s.quantile(0.76), 4.0);

        // n = 5: odd length, the median is unambiguous
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(s.median(), 30.0);
        assert_eq!(s.quantile(0.2), 10.0);
        assert_eq!(s.quantile(0.21), 20.0);
        assert_eq!(s.quantile(0.4), 20.0);
        assert_eq!(s.quantile(0.8), 40.0);
        assert_eq!(s.quantile(0.81), 50.0);

        // n = 1: every quantile is the single value
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.quantile(0.0), 7.0);
        assert_eq!(s.quantile(0.5), 7.0);
        assert_eq!(s.quantile(1.0), 7.0);
    }

    /// The textbook nearest-rank definition, written independently of
    /// the implementation: the smallest value with at least `n * q` of
    /// the sample at or below it.
    fn reference_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let target = (n as f64) * q;
        for (i, &v) in sorted.iter().enumerate() {
            if (i + 1) as f64 >= target {
                return v;
            }
        }
        sorted[n - 1]
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn quantile_rejects_out_of_range() {
        Summary::of(&[1.0]).unwrap().quantile(1.5);
    }

    proptest! {
        #[test]
        fn mean_between_min_and_max(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&v).unwrap();
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn std_nonnegative(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            prop_assert!(Summary::of(&v).unwrap().std() >= 0.0);
        }

        #[test]
        fn quantile_matches_reference_nearest_rank(
            v in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            let s = Summary::of(&v).unwrap();
            let mut sorted = v.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert_eq!(s.quantile(q), reference_nearest_rank(&sorted, q));
            // q = 1.0 sits outside the generated range; pin it here
            prop_assert_eq!(s.quantile(1.0), *sorted.last().unwrap());
        }
    }
}
