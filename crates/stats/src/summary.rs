//! Descriptive statistics.

use std::fmt;

/// Descriptive statistics of a sample: moments, extremes, and quantiles.
///
/// # Examples
///
/// ```
/// use hotspots_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.quantile(0.5), 3.0); // upper median of even-length sample
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    n: usize,
    mean: f64,
    std: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes a summary of `values`. Returns `None` if `values` is empty
    /// or contains NaN.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            sorted,
        })
    }

    /// Computes a summary of integer counts.
    pub fn of_counts(counts: &[u64]) -> Option<Summary> {
        let as_f: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Summary::of(&as_f)
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction") // hotspots-lint: allow(panic-path) reason="constructor rejects empty samples"
    }

    /// Median (upper median for even n).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The `q`-quantile (nearest-rank, `0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        let idx = ((self.n as f64) * q) as usize;
        self.sorted[idx.min(self.n - 1)]
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} p90={:.3} max={:.3}",
            self.n,
            self.mean,
            self.std,
            self.min(),
            self.median(),
            self.quantile(0.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn of_counts_matches_of() {
        let a = Summary::of_counts(&[1, 2, 3]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn quantiles_monotone() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!(s.quantile(0.25) <= s.quantile(0.75));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn quantile_rejects_out_of_range() {
        Summary::of(&[1.0]).unwrap().quantile(1.5);
    }

    proptest! {
        #[test]
        fn mean_between_min_and_max(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&v).unwrap();
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn std_nonnegative(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            prop_assert!(Summary::of(&v).unwrap().std() >= 0.0);
        }
    }
}
