//! Statistics substrate for the hotspots reproduction.
//!
//! "Hotspot" is a *statistical* claim: an observed traffic distribution
//! deviates from what uniform propagation would produce. This crate holds
//! the machinery for making that claim precise:
//!
//! * [`CountHistogram`] — counting observations per key (per /24 bucket,
//!   per sensor block, per organization…),
//! * [`uniformity`] — deviation-from-uniform metrics: Gini coefficient,
//!   normalized Shannon entropy, χ² uniformity test, KL divergence, and
//!   the max/median "orders of magnitude" ratio,
//! * [`Summary`] — basic descriptive statistics with quantiles,
//! * [`TimeSeries`] — infection/alert curves over simulated time.
//!
//! # Examples
//!
//! ```
//! use hotspots_stats::{uniformity, CountHistogram};
//!
//! let mut h = CountHistogram::new();
//! for k in ["a", "a", "a", "b"] {
//!     h.record(k);
//! }
//! let counts = h.counts();
//! assert!(uniformity::gini(&counts) > 0.0); // not uniform
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod correlation;
mod histogram;
mod streaming;
mod summary;
mod timeseries;
pub mod uniformity;

pub use correlation::{pearson, spearman};
pub use histogram::CountHistogram;
pub use streaming::{Ecdf, Welford};
pub use summary::Summary;
pub use timeseries::TimeSeries;
