//! Streaming statistics: single-pass accumulators for per-probe data.
//!
//! The engine produces billions of probe events; these accumulators keep
//! O(1) state per metric so observers can compute statistics without
//! buffering the stream.

use std::fmt;

/// Welford's online algorithm for count/mean/variance/extremes.
///
/// Numerically stable in one pass; merging two accumulators is exact
/// (parallel-friendly).
///
/// # Examples
///
/// ```
/// use hotspots_stats::Welford;
///
/// let mut w = Welford::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(v);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_std(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 before two observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Minimum (`None` before any observation).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` before any observation).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (exact).
    pub fn merge(&mut self, other: Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Welford {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={} max={}",
            self.count,
            self.mean,
            self.population_std(),
            self.min().map_or_else(|| "-".into(), |v| format!("{v:.4}")),
            self.max().map_or_else(|| "-".into(), |v| format!("{v:.4}")),
        )
    }
}

/// An empirical CDF over a collected sample.
///
/// # Examples
///
/// ```
/// use hotspots_stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]).unwrap();
/// assert_eq!(e.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF; `None` for empty or NaN-containing samples.
    pub fn new(mut sample: Vec<f64>) -> Option<Ecdf> {
        if sample.is_empty() || sample.iter().any(|v| v.is_nan()) {
            return None;
        }
        sample.sort_by(f64::total_cmp);
        Some(Ecdf { sorted: sample })
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// ECDFs are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)`: fraction of the sample ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        let idx = ((self.sorted.len() as f64) * q).ceil() as usize;
        self.sorted[idx.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// The two-sample Kolmogorov–Smirnov statistic
    /// `sup |F_a − F_b|` — a distribution-shape distance used by the
    /// ablation comparisons.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut points: Vec<f64> = self
            .sorted
            .iter()
            .chain(other.sorted.iter())
            .copied()
            .collect();
        points.sort_by(f64::total_cmp);
        points
            .into_iter()
            .map(|x| (self.fraction_at_or_below(x) - other.fraction_at_or_below(x)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_batch_summary() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for v in data {
            w.push(v);
        }
        let batch = crate::Summary::of(&data).unwrap();
        assert!((w.mean() - batch.mean()).abs() < 1e-12);
        assert!((w.population_std() - batch.std()).abs() < 1e-12);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.min(), None);
        let mut one = Welford::new();
        one.push(5.0);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(one.population_variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn welford_rejects_nan() {
        Welford::new().push(f64::NAN);
    }

    #[test]
    fn ecdf_basics() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(e.fraction_at_or_below(0.0), 0.0);
        assert_eq!(e.fraction_at_or_below(3.0), 2.0 / 3.0);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 5.0);
    }

    #[test]
    fn ks_statistic_extremes() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        let same = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_statistic(&same), 0.0);
        let far = Ecdf::new(vec![100.0, 200.0]).unwrap();
        assert_eq!(a.ks_statistic(&far), 1.0);
    }

    proptest! {
        #[test]
        fn welford_merge_equals_sequential(
            a in proptest::collection::vec(-1e6f64..1e6, 0..50),
            b in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut merged = Welford::new();
            let mut left = Welford::new();
            let mut right = Welford::new();
            for &v in &a { merged.push(v); left.push(v); }
            for &v in &b { merged.push(v); right.push(v); }
            left.merge(right);
            prop_assert_eq!(left.count(), merged.count());
            let mean_scale = merged.mean().abs().max(1.0);
            prop_assert!((left.mean() - merged.mean()).abs() / mean_scale < 1e-9);
            let var_scale = merged.population_variance().abs().max(1.0);
            prop_assert!(
                (left.population_variance() - merged.population_variance()).abs() / var_scale
                    < 1e-9
            );
        }

        #[test]
        fn ecdf_is_monotone(sample in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let e = Ecdf::new(sample).unwrap();
            let mut prev = 0.0;
            for i in -10..=10 {
                let x = f64::from(i) * 100.0;
                let f = e.fraction_at_or_below(x);
                prop_assert!(f >= prev);
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }
    }
}
