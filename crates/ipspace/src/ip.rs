//! The [`Ip`] address type.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::bucket::{Bucket16, Bucket24, Bucket8};
use crate::error::ParseIpError;

/// An IPv4 address, stored as its 32-bit numeric value
/// (`a.b.c.d == a<<24 | b<<16 | c<<8 | d`).
///
/// `Ip` is `Copy`, ordered, and hashable, so it can be used directly as a
/// key in the dense per-address data structures the simulator relies on.
/// Unlike [`std::net::Ipv4Addr`] it exposes its numeric value, which the
/// worm targeting algorithms manipulate arithmetically.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
///
/// let ip = Ip::from_octets(10, 0, 0, 1);
/// assert_eq!(ip.value(), 0x0a00_0001);
/// assert_eq!(ip.to_string(), "10.0.0.1");
/// assert_eq!(ip.octets(), [10, 0, 0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Ip(u32);

impl Ip {
    /// The lowest address, `0.0.0.0`.
    pub const MIN: Ip = Ip(0);
    /// The highest address, `255.255.255.255`.
    pub const MAX: Ip = Ip(u32::MAX);

    /// Creates an address from its 32-bit numeric value.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// assert_eq!(Ip::new(0xc0a80001).to_string(), "192.168.0.1");
    /// ```
    #[inline]
    pub const fn new(value: u32) -> Ip {
        Ip(value)
    }

    /// Creates an address from four dotted-quad octets.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// assert_eq!(Ip::from_octets(192, 168, 0, 1).value(), 0xc0a8_0001);
    /// ```
    #[inline]
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Creates an address from a 32-bit value laid out in x86 little-endian
    /// memory order, i.e. the *low* byte of `state` becomes the *first*
    /// octet of the address.
    ///
    /// This is how the Slammer worm turns its raw LCG state into an
    /// `in_addr`: the 32-bit register is stored to memory little-endian and
    /// the four bytes are then read in network order. The distinction
    /// matters enormously for hotspot structure — it means a sensor block
    /// that fixes the *leading* octets of the address fixes the *low* bits
    /// of the PRNG state. See `hotspots-prng`'s cycle analysis.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// // state 0x0102_0304 in memory is [04, 03, 02, 01] → 4.3.2.1
    /// assert_eq!(Ip::from_le_state(0x0102_0304).to_string(), "4.3.2.1");
    /// ```
    #[inline]
    pub const fn from_le_state(state: u32) -> Ip {
        Ip(state.swap_bytes())
    }

    /// The inverse of [`Ip::from_le_state`]: recovers the 32-bit
    /// little-endian machine word whose in-memory bytes spell this address.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// let ip = Ip::from_octets(4, 3, 2, 1);
    /// assert_eq!(ip.to_le_state(), 0x0102_0304);
    /// ```
    #[inline]
    pub const fn to_le_state(self) -> u32 {
        self.0.swap_bytes()
    }

    /// Returns the 32-bit numeric value (`a.b.c.d == a<<24|b<<16|c<<8|d`).
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the four dotted-quad octets, most significant first.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// assert_eq!(Ip::from_octets(1, 2, 3, 4).octets(), [1, 2, 3, 4]);
    /// ```
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns the address `count` positions above `self`, wrapping around
    /// the top of the address space (as sequential scanners like Blaster
    /// effectively do).
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Ip;
    /// assert_eq!(Ip::MAX.wrapping_add(1), Ip::MIN);
    /// ```
    #[inline]
    pub const fn wrapping_add(self, count: u32) -> Ip {
        Ip(self.0.wrapping_add(count))
    }

    /// Returns the /24 histogram bucket containing this address.
    #[inline]
    pub const fn bucket24(self) -> Bucket24 {
        Bucket24::of_value(self.0)
    }

    /// Returns the /16 histogram bucket containing this address.
    #[inline]
    pub const fn bucket16(self) -> Bucket16 {
        Bucket16::of_value(self.0)
    }

    /// Returns the /8 histogram bucket containing this address.
    #[inline]
    pub const fn bucket8(self) -> Bucket8 {
        Bucket8::of_value(self.0)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<u32> for Ip {
    fn from(value: u32) -> Ip {
        Ip(value)
    }
}

impl From<Ip> for u32 {
    fn from(ip: Ip) -> u32 {
        ip.0
    }
}

impl From<Ipv4Addr> for Ip {
    fn from(addr: Ipv4Addr) -> Ip {
        Ip(u32::from(addr))
    }
}

impl From<Ip> for Ipv4Addr {
    fn from(ip: Ip) -> Ipv4Addr {
        Ipv4Addr::from(ip.0)
    }
}

impl From<[u8; 4]> for Ip {
    fn from(o: [u8; 4]) -> Ip {
        Ip::from_octets(o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ip {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Ip, ParseIpError> {
        let err = || ParseIpError {
            input: s.to_owned(),
        };
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            // Reject empty parts, leading '+', and anything non-decimal.
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            *slot = part.parse::<u8>().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Ip::from(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn octet_round_trip() {
        let ip = Ip::from_octets(192, 168, 7, 9);
        assert_eq!(ip.octets(), [192, 168, 7, 9]);
        assert_eq!(ip.value(), 0xc0a8_0709);
    }

    #[test]
    fn display_formats_dotted_quad() {
        assert_eq!(Ip::new(0).to_string(), "0.0.0.0");
        assert_eq!(Ip::MAX.to_string(), "255.255.255.255");
        assert_eq!(Ip::from_octets(10, 20, 30, 40).to_string(), "10.20.30.40");
    }

    #[test]
    fn parse_valid_addresses() {
        assert_eq!("0.0.0.0".parse::<Ip>().unwrap(), Ip::MIN);
        assert_eq!("255.255.255.255".parse::<Ip>().unwrap(), Ip::MAX);
        assert_eq!(
            "172.16.254.1".parse::<Ip>().unwrap(),
            Ip::from_octets(172, 16, 254, 1)
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "1",
            "1.2",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "-1.0.0.0",
            "a.b.c.d",
            "1..2.3",
            "1.2.3.4 ",
            " 1.2.3.4",
            "01234.1.1.1",
            "+1.2.3.4",
        ] {
            assert!(bad.parse::<Ip>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_leading_zero_octets() {
        // "010" is three ASCII digits parsing to 10; we accept it as decimal.
        assert_eq!(
            "010.0.0.1".parse::<Ip>().unwrap(),
            Ip::from_octets(10, 0, 0, 1)
        );
    }

    #[test]
    fn le_state_round_trip_known_value() {
        let ip = Ip::from_le_state(0xdead_beef);
        // memory bytes of 0xdeadbeef (LE): ef be ad de → 239.190.173.222
        assert_eq!(ip.to_string(), "239.190.173.222");
        assert_eq!(ip.to_le_state(), 0xdead_beef);
    }

    #[test]
    fn std_net_conversions() {
        let std_ip: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let ours = Ip::from(std_ip);
        assert_eq!(ours.to_string(), "198.51.100.7");
        assert_eq!(Ipv4Addr::from(ours), std_ip);
    }

    #[test]
    fn wrapping_add_wraps() {
        assert_eq!(Ip::MAX.wrapping_add(2), Ip::new(1));
        assert_eq!(Ip::new(5).wrapping_add(0), Ip::new(5));
    }

    #[test]
    fn ordering_matches_numeric_order() {
        assert!(Ip::from_octets(9, 255, 255, 255) < Ip::from_octets(10, 0, 0, 0));
    }

    #[test]
    fn buckets_truncate_correctly() {
        let ip = Ip::from_octets(1, 2, 3, 4);
        assert_eq!(ip.bucket24().to_string(), "1.2.3.0/24");
        assert_eq!(ip.bucket16().to_string(), "1.2.0.0/16");
        assert_eq!(ip.bucket8().to_string(), "1.0.0.0/8");
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(v in any::<u32>()) {
            let ip = Ip::new(v);
            let back: Ip = ip.to_string().parse().unwrap();
            prop_assert_eq!(ip, back);
        }

        #[test]
        fn le_state_round_trip(v in any::<u32>()) {
            prop_assert_eq!(Ip::from_le_state(v).to_le_state(), v);
            prop_assert_eq!(Ip::from_le_state(v).value(), v.swap_bytes());
        }

        #[test]
        fn octets_round_trip(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>()) {
            let ip = Ip::from_octets(a, b, c, d);
            prop_assert_eq!(ip.octets(), [a, b, c, d]);
            prop_assert_eq!(Ip::from(ip.octets()), ip);
        }
    }
}
