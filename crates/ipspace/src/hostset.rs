//! Compressed, rank-indexed sets of host addresses.
//!
//! A [`HostSet`] stores a sorted set of public IPv4 addresses in a
//! three-level /8 → /16 → /24 occupancy hierarchy instead of a flat
//! `Vec<Ip>` plus hash index. Membership tests walk the hierarchy
//! (bitmap probe, then two small binary searches); every member has a
//! *rank* — its position in sorted address order — and ranks are the
//! host ids the compressed population store hands to the simulation
//! engine. The structure costs roughly one byte per host plus a few
//! bytes per occupied /16 and /24, so a million-host Internet-scale
//! population fits in ~1.2 MB where the dense per-host representation
//! needs tens of megabytes.
//!
//! Layout (all arrays immutable after construction):
//!
//! * `slash8_bits` / `slash16_bits` — occupancy bitmaps over the 256
//!   /8s and 65,536 /16s. A random probe into unoccupied space is
//!   rejected by one or two bit tests, exactly like the flat /16
//!   pre-filter this hierarchy extends.
//! * `slash16_rank` — cumulative popcounts over `slash16_bits`, so an
//!   occupied /16 maps to its dense index in O(1).
//! * per-/16 arrays (`slash16_prefix`, `hosts_before_16`,
//!   `slash24_before_16`) and per-/24 arrays (`slash24_octet`,
//!   `hosts_before_24`) — cumulative counts that turn a hierarchy walk
//!   into a rank and back.
//! * `last_octets` — the final address octet of every host, grouped by
//!   /24 and sorted within each group: the only per-host storage.
//!
//! # Examples
//!
//! ```
//! use hotspots_ipspace::{HostSet, Ip};
//!
//! let addrs = [
//!     Ip::from_octets(11, 0, 0, 7),
//!     Ip::from_octets(11, 0, 0, 9),
//!     Ip::from_octets(130, 4, 20, 1),
//! ];
//! let set = HostSet::from_sorted_unique(&addrs).unwrap();
//! assert_eq!(set.len(), 3);
//! assert_eq!(set.find(Ip::from_octets(11, 0, 0, 9)), Some(1));
//! assert_eq!(set.select(2), Some(Ip::from_octets(130, 4, 20, 1)));
//! assert_eq!(set.find(Ip::from_octets(11, 0, 0, 8)), None);
//! ```

use std::error::Error;
use std::fmt;

use crate::ip::Ip;

/// Error returned when constructing a [`HostSet`] from an address list
/// that is not strictly ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostSetError {
    /// Two equal addresses appeared in the input.
    Duplicate {
        /// Index of the second copy in the input slice.
        index: usize,
        /// The duplicated address.
        ip: Ip,
    },
    /// An address was smaller than its predecessor.
    Unsorted {
        /// Index of the out-of-order address in the input slice.
        index: usize,
        /// The out-of-order address.
        ip: Ip,
    },
}

impl fmt::Display for HostSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostSetError::Duplicate { index, ip } => {
                write!(f, "duplicate host address {ip} at index {index}")
            }
            HostSetError::Unsorted { index, ip } => {
                write!(f, "host address {ip} at index {index} is out of order")
            }
        }
    }
}

impl Error for HostSetError {}

/// A compressed set of sorted host addresses with rank lookup in both
/// directions: [`HostSet::find`] maps an address to its rank and
/// [`HostSet::select`] maps a rank back to its address. See the
/// [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSet {
    len: u32,
    /// Occupancy bitmap over the 256 /8s.
    slash8_bits: [u64; 4],
    /// Occupancy bitmap over the 65,536 /16s.
    slash16_bits: Box<[u64; 1024]>,
    /// Occupied-/16 count in all bitmap words before word `w`.
    slash16_rank: Box<[u32; 1024]>,
    /// The occupied /16s, ascending (each entry is the top 16 address
    /// bits).
    slash16_prefix: Vec<u16>,
    /// Host count before each occupied /16; one trailing entry equal to
    /// `len`.
    hosts_before_16: Vec<u32>,
    /// Occupied-/24 count before each occupied /16; one trailing entry.
    slash24_before_16: Vec<u32>,
    /// Third address octet of each occupied /24, grouped by /16.
    slash24_octet: Vec<u8>,
    /// Host count before each occupied /24; one trailing entry equal to
    /// `len`.
    hosts_before_24: Vec<u32>,
    /// Final address octet of every host, grouped by /24, ascending
    /// within each group.
    last_octets: Vec<u8>,
}

impl HostSet {
    /// Builds a set from strictly ascending addresses.
    ///
    /// # Errors
    ///
    /// Returns [`HostSetError`] naming the first duplicate or
    /// out-of-order entry.
    pub fn from_sorted_unique(addrs: &[Ip]) -> Result<HostSet, HostSetError> {
        let mut set = HostSet {
            len: 0,
            slash8_bits: [0; 4],
            slash16_bits: Box::new([0; 1024]),
            slash16_rank: Box::new([0; 1024]),
            slash16_prefix: Vec::new(),
            hosts_before_16: Vec::new(),
            slash24_before_16: Vec::new(),
            slash24_octet: Vec::new(),
            hosts_before_24: Vec::new(),
            last_octets: Vec::with_capacity(addrs.len()),
        };
        for (index, &ip) in addrs.iter().enumerate() {
            if index > 0 {
                let prev = addrs[index - 1];
                if ip == prev {
                    return Err(HostSetError::Duplicate { index, ip });
                }
                if ip < prev {
                    return Err(HostSetError::Unsorted { index, ip });
                }
            }
            let v = ip.value();
            let s16 = (v >> 16) as usize;
            let s24_octet = (v >> 8) as u8;
            if set.slash16_prefix.last() != Some(&(s16 as u16)) {
                set.slash8_bits[s16 >> 14] |= 1 << ((s16 >> 8) & 63);
                set.slash16_bits[s16 >> 6] |= 1 << (s16 & 63);
                set.slash16_prefix.push(s16 as u16);
                set.hosts_before_16.push(set.len);
                set.slash24_before_16.push(set.slash24_octet.len() as u32);
                set.slash24_octet.push(s24_octet);
                set.hosts_before_24.push(set.len);
            } else if set.slash24_octet.last() != Some(&s24_octet) {
                set.slash24_octet.push(s24_octet);
                set.hosts_before_24.push(set.len);
            }
            set.last_octets.push(v as u8);
            set.len += 1;
        }
        // The per-group cumulative arrays hold the count *before* each
        // group; close them with the totals.
        set.hosts_before_16.push(set.len);
        set.slash24_before_16.push(set.slash24_octet.len() as u32);
        set.hosts_before_24.push(set.len);
        let mut running = 0u32;
        for w in 0..1024 {
            set.slash16_rank[w] = running;
            running += set.slash16_bits[w].count_ones();
        }
        Ok(set)
    }

    /// Number of hosts in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the set contains `ip`.
    #[inline]
    pub fn contains(&self, ip: Ip) -> bool {
        self.find(ip).is_some()
    }

    /// Rank of `ip` in sorted order, or `None` when absent.
    ///
    /// The walk is one /8 bit test, one /16 bit test + popcount rank,
    /// then binary searches over the /16's occupied-/24 octets and the
    /// /24's host octets — no hashing, no per-host structs.
    #[inline]
    pub fn find(&self, ip: Ip) -> Option<u32> {
        let v = ip.value();
        let s8 = (v >> 24) as usize;
        if self.slash8_bits[s8 >> 6] & (1u64 << (s8 & 63)) == 0 {
            return None;
        }
        let s16 = (v >> 16) as usize;
        let word = self.slash16_bits[s16 >> 6];
        let bit = 1u64 << (s16 & 63);
        if word & bit == 0 {
            return None;
        }
        let r16 = (self.slash16_rank[s16 >> 6] + (word & (bit - 1)).count_ones()) as usize;
        let lo24 = self.slash24_before_16[r16] as usize;
        let hi24 = self.slash24_before_16[r16 + 1] as usize;
        let r24 = match self.slash24_octet[lo24..hi24].binary_search(&((v >> 8) as u8)) {
            Ok(pos) => lo24 + pos,
            Err(_) => return None,
        };
        let lo = self.hosts_before_24[r24] as usize;
        let hi = self.hosts_before_24[r24 + 1] as usize;
        match self.last_octets[lo..hi].binary_search(&(v as u8)) {
            Ok(pos) => Some((lo + pos) as u32),
            Err(_) => None,
        }
    }

    /// Address of the host with rank `rank`, or `None` when out of
    /// range. Inverse of [`HostSet::find`].
    #[inline]
    pub fn select(&self, rank: u32) -> Option<Ip> {
        if rank >= self.len {
            return None;
        }
        // Last /24 whose cumulative start is <= rank.
        let r24 = self.hosts_before_24.partition_point(|&h| h <= rank) - 1;
        let r16 = self
            .slash24_before_16
            .partition_point(|&c| c as usize <= r24)
            - 1;
        let prefix = (self.slash16_prefix[r16] as u32) << 16;
        let octet3 = (self.slash24_octet[r24] as u32) << 8;
        let octet4 = self.last_octets[rank as usize] as u32;
        Some(Ip::new(prefix | octet3 | octet4))
    }

    /// Iterates the addresses in ascending (= rank) order without
    /// materialising a `Vec`.
    pub fn iter(&self) -> HostSetIter<'_> {
        HostSetIter {
            set: self,
            rank: 0,
            r16: 0,
            r24: 0,
        }
    }

    /// Number of occupied /8 blocks.
    pub fn occupied_slash8s(&self) -> usize {
        self.slash8_bits
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of occupied /16 blocks.
    pub fn occupied_slash16s(&self) -> usize {
        self.slash16_prefix.len()
    }

    /// Number of occupied /24 blocks.
    pub fn occupied_slash24s(&self) -> usize {
        self.slash24_octet.len()
    }

    /// The /16 occupancy bitmap (bit `s` set when /16 `s` holds at
    /// least one host) — the same shape as the flat pre-filter the
    /// dense store keeps, shareable with probe fast paths.
    pub fn slash16_bitmap(&self) -> &[u64; 1024] {
        &self.slash16_bits
    }

    /// Heap bytes held by the structure (bitmaps, cumulative arrays,
    /// and the one-byte-per-host octet column). Deterministic — used
    /// for the memory accounting in `BENCH_engine.json`.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<[u64; 1024]>()
            + size_of::<[u32; 1024]>()
            + self.slash16_prefix.capacity() * size_of::<u16>()
            + self.hosts_before_16.capacity() * size_of::<u32>()
            + self.slash24_before_16.capacity() * size_of::<u32>()
            + self.slash24_octet.capacity()
            + self.hosts_before_24.capacity() * size_of::<u32>()
            + self.last_octets.capacity()
    }
}

impl<'a> IntoIterator for &'a HostSet {
    type Item = Ip;
    type IntoIter = HostSetIter<'a>;

    fn into_iter(self) -> HostSetIter<'a> {
        self.iter()
    }
}

/// Ascending-order iterator over a [`HostSet`], created by
/// [`HostSet::iter`]. Walks the cumulative arrays incrementally, so
/// the whole traversal is O(n).
#[derive(Debug, Clone)]
pub struct HostSetIter<'a> {
    set: &'a HostSet,
    rank: u32,
    r16: usize,
    r24: usize,
}

impl Iterator for HostSetIter<'_> {
    type Item = Ip;

    #[inline]
    fn next(&mut self) -> Option<Ip> {
        let set = self.set;
        if self.rank >= set.len {
            return None;
        }
        while set.hosts_before_24[self.r24 + 1] <= self.rank {
            self.r24 += 1;
        }
        while set.slash24_before_16[self.r16 + 1] as usize <= self.r24 {
            self.r16 += 1;
        }
        let prefix = (set.slash16_prefix[self.r16] as u32) << 16;
        let octet3 = (set.slash24_octet[self.r24] as u32) << 8;
        let octet4 = set.last_octets[self.rank as usize] as u32;
        self.rank += 1;
        Some(Ip::new(prefix | octet3 | octet4))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.set.len - self.rank) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for HostSetIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vec<Ip> {
        vec![
            Ip::from_octets(11, 0, 0, 1),
            Ip::from_octets(11, 0, 0, 200),
            Ip::from_octets(11, 0, 3, 4),
            Ip::from_octets(11, 9, 0, 0),
            Ip::from_octets(130, 4, 20, 1),
            Ip::from_octets(130, 4, 20, 255),
            Ip::from_octets(211, 255, 255, 255),
        ]
    }

    #[test]
    fn find_and_select_are_inverse_on_sample() {
        let addrs = sample();
        let set = HostSet::from_sorted_unique(&addrs).unwrap();
        assert_eq!(set.len(), addrs.len() as u32);
        for (rank, &ip) in addrs.iter().enumerate() {
            assert_eq!(set.find(ip), Some(rank as u32), "find {ip}");
            assert_eq!(set.select(rank as u32), Some(ip), "select {rank}");
        }
        assert_eq!(set.select(addrs.len() as u32), None);
    }

    #[test]
    fn misses_at_every_level() {
        let set = HostSet::from_sorted_unique(&sample()).unwrap();
        // /8 empty, /16 empty, /24 empty, last octet absent.
        assert_eq!(set.find(Ip::from_octets(12, 0, 0, 1)), None);
        assert_eq!(set.find(Ip::from_octets(11, 1, 0, 1)), None);
        assert_eq!(set.find(Ip::from_octets(11, 0, 9, 1)), None);
        assert_eq!(set.find(Ip::from_octets(11, 0, 0, 2)), None);
    }

    #[test]
    fn occupancy_counts() {
        let set = HostSet::from_sorted_unique(&sample()).unwrap();
        assert_eq!(set.occupied_slash8s(), 3);
        assert_eq!(set.occupied_slash16s(), 4);
        assert_eq!(set.occupied_slash24s(), 5);
        let bitmap = set.slash16_bitmap();
        let s16 = 0x0b00usize;
        assert_ne!(bitmap[s16 >> 6] & (1 << (s16 & 63)), 0);
    }

    #[test]
    fn iter_matches_input_and_is_exact_size() {
        let addrs = sample();
        let set = HostSet::from_sorted_unique(&addrs).unwrap();
        assert_eq!(set.iter().len(), addrs.len());
        let collected: Vec<Ip> = set.iter().collect();
        assert_eq!(collected, addrs);
    }

    #[test]
    fn empty_set() {
        let set = HostSet::from_sorted_unique(&[]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.find(Ip::from_octets(11, 0, 0, 1)), None);
        assert_eq!(set.select(0), None);
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn duplicate_and_unsorted_inputs_are_typed_errors() {
        let dup = [Ip::new(5), Ip::new(5)];
        assert_eq!(
            HostSet::from_sorted_unique(&dup),
            Err(HostSetError::Duplicate {
                index: 1,
                ip: Ip::new(5)
            })
        );
        let unsorted = [Ip::new(9), Ip::new(3)];
        assert_eq!(
            HostSet::from_sorted_unique(&unsorted),
            Err(HostSetError::Unsorted {
                index: 1,
                ip: Ip::new(3)
            })
        );
        let err = HostSet::from_sorted_unique(&dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn heap_bytes_is_near_one_byte_per_host_at_scale() {
        // A dense /16: 65,536 hosts in 256 /24s.
        let addrs: Vec<Ip> = (0..65_536u32).map(|i| Ip::new(0x0b0b_0000 + i)).collect();
        let set = HostSet::from_sorted_unique(&addrs).unwrap();
        assert_eq!(set.len(), 65_536);
        // Fixed overhead (bitmaps + ranks) is ~12.3 KB; per-host cost
        // should stay under 2 bytes here.
        assert!(
            set.heap_bytes() < 13_000 + 2 * 65_536,
            "{}",
            set.heap_bytes()
        );
    }

    proptest! {
        #[test]
        fn find_select_round_trip(
            raw in proptest::collection::vec(any::<u32>(), 0..400)
        ) {
            let values: std::collections::BTreeSet<u32> = raw.into_iter().collect();
            let addrs: Vec<Ip> = values.iter().map(|&v| Ip::new(v)).collect();
            let set = HostSet::from_sorted_unique(&addrs).unwrap();
            prop_assert_eq!(set.len() as usize, addrs.len());
            for (rank, &ip) in addrs.iter().enumerate() {
                prop_assert_eq!(set.find(ip), Some(rank as u32));
                prop_assert_eq!(set.select(rank as u32), Some(ip));
            }
            let collected: Vec<Ip> = set.iter().collect();
            prop_assert_eq!(collected, addrs);
            // Probe near-misses: neighbours of members that are not
            // themselves members must be absent.
            for &v in values.iter().take(64) {
                let probe = v.wrapping_add(1);
                if !values.contains(&probe) {
                    prop_assert_eq!(set.find(Ip::new(probe)), None);
                }
            }
        }
    }
}
