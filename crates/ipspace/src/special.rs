//! Special-purpose address ranges.
//!
//! Two of the paper's root causes live here:
//!
//! * **RFC 1918 private space** — the CodeRedII/NAT case study hinges on the
//!   fact that `192.168.0.0/16` is the *only* private /16 inside `192.0.0.0/8`,
//!   so a NATed CodeRedII host preferring its local /8 leaks probes into the
//!   public parts of `192/8`.
//! * **Worm avoid-lists** — CodeRedII explicitly skips `127/8` (loopback) and
//!   `224/8` (multicast) when generating targets.

use crate::ip::Ip;
use crate::prefix::Prefix;

/// `10.0.0.0/8` (RFC 1918).
pub const PRIVATE_10: Prefix = match Prefix::new(Ip::from_octets(10, 0, 0, 0), 8) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `172.16.0.0/12` (RFC 1918).
pub const PRIVATE_172: Prefix = match Prefix::new(Ip::from_octets(172, 16, 0, 0), 12) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `192.168.0.0/16` (RFC 1918) — the star of the CodeRedII case study.
pub const PRIVATE_192: Prefix = match Prefix::new(Ip::from_octets(192, 168, 0, 0), 16) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `127.0.0.0/8` loopback.
pub const LOOPBACK: Prefix = match Prefix::new(Ip::from_octets(127, 0, 0, 0), 8) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `224.0.0.0/4` multicast (class D).
pub const MULTICAST: Prefix = match Prefix::new(Ip::from_octets(224, 0, 0, 0), 4) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `240.0.0.0/4` reserved (class E).
pub const RESERVED_E: Prefix = match Prefix::new(Ip::from_octets(240, 0, 0, 0), 4) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// `0.0.0.0/8` "this network".
pub const THIS_NET: Prefix = match Prefix::new(Ip::MIN, 8) {
    Ok(p) => p,
    Err(_) => unreachable!(),
};

/// The three RFC 1918 private ranges, in address order.
pub const PRIVATE_RANGES: [Prefix; 3] = [PRIVATE_10, PRIVATE_172, PRIVATE_192];

/// Returns `true` if `ip` lies in any RFC 1918 private range.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{special, Ip};
///
/// assert!(special::is_private(Ip::from_octets(10, 1, 2, 3)));
/// assert!(special::is_private(Ip::from_octets(172, 31, 0, 1)));
/// assert!(special::is_private(Ip::from_octets(192, 168, 0, 1)));
/// assert!(!special::is_private(Ip::from_octets(192, 169, 0, 1)));
/// assert!(!special::is_private(Ip::from_octets(172, 32, 0, 1)));
/// ```
#[inline]
pub fn is_private(ip: Ip) -> bool {
    PRIVATE_RANGES.iter().any(|p| p.contains(ip))
}

/// Returns `true` if `ip` is loopback (`127/8`).
#[inline]
pub fn is_loopback(ip: Ip) -> bool {
    LOOPBACK.contains(ip)
}

/// Returns `true` if `ip` is multicast (`224/4`).
#[inline]
pub fn is_multicast(ip: Ip) -> bool {
    MULTICAST.contains(ip)
}

/// Returns `true` if `ip` is in class-E reserved space (`240/4`).
#[inline]
pub fn is_reserved(ip: Ip) -> bool {
    RESERVED_E.contains(ip)
}

/// Returns `true` for addresses that can appear as a *globally routed*
/// source or destination: not private, loopback, multicast, class-E, or
/// `0/8`.
///
/// This is the routability predicate the environment model uses when
/// deciding whether a probe can traverse the public Internet at all.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{special, Ip};
///
/// assert!(special::is_globally_routable(Ip::from_octets(198, 51, 100, 1)));
/// assert!(!special::is_globally_routable(Ip::from_octets(192, 168, 1, 1)));
/// assert!(!special::is_globally_routable(Ip::from_octets(127, 0, 0, 1)));
/// assert!(!special::is_globally_routable(Ip::from_octets(0, 1, 2, 3)));
/// ```
#[inline]
pub fn is_globally_routable(ip: Ip) -> bool {
    !(is_private(ip)
        || is_loopback(ip)
        || is_multicast(ip)
        || is_reserved(ip)
        || THIS_NET.contains(ip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn private_range_boundaries() {
        assert!(is_private(Ip::from_octets(10, 0, 0, 0)));
        assert!(is_private(Ip::from_octets(10, 255, 255, 255)));
        assert!(!is_private(Ip::from_octets(9, 255, 255, 255)));
        assert!(!is_private(Ip::from_octets(11, 0, 0, 0)));
        assert!(is_private(Ip::from_octets(172, 16, 0, 0)));
        assert!(is_private(Ip::from_octets(172, 31, 255, 255)));
        assert!(!is_private(Ip::from_octets(172, 15, 255, 255)));
        assert!(!is_private(Ip::from_octets(172, 32, 0, 0)));
        assert!(is_private(Ip::from_octets(192, 168, 0, 0)));
        assert!(is_private(Ip::from_octets(192, 168, 255, 255)));
        assert!(!is_private(Ip::from_octets(192, 167, 255, 255)));
        assert!(!is_private(Ip::from_octets(192, 169, 0, 0)));
    }

    #[test]
    fn private_192_is_only_private_16_inside_192_slash_8() {
        // The pivotal topological fact behind the CodeRedII hotspot.
        let slash8 = Prefix::containing(Ip::from_octets(192, 0, 0, 0), 8);
        let private_16s: Vec<Prefix> = slash8
            .subnets(16)
            .filter(|s| is_private(s.base()))
            .collect();
        assert_eq!(private_16s, vec![PRIVATE_192]);
    }

    #[test]
    fn multicast_and_reserved_split_top_of_space() {
        assert!(is_multicast(Ip::from_octets(224, 0, 0, 1)));
        assert!(is_multicast(Ip::from_octets(239, 255, 255, 255)));
        assert!(!is_multicast(Ip::from_octets(240, 0, 0, 0)));
        assert!(is_reserved(Ip::from_octets(255, 255, 255, 255)));
    }

    proptest! {
        #[test]
        fn routable_excludes_all_special(v in any::<u32>()) {
            let ip = Ip::new(v);
            if is_globally_routable(ip) {
                prop_assert!(!is_private(ip));
                prop_assert!(!is_loopback(ip));
                prop_assert!(!is_multicast(ip));
                prop_assert!(!is_reserved(ip));
            }
        }

        #[test]
        fn private_ranges_are_disjoint(v in any::<u32>()) {
            let ip = Ip::new(v);
            let hits = PRIVATE_RANGES.iter().filter(|p| p.contains(ip)).count();
            prop_assert!(hits <= 1);
        }
    }
}
